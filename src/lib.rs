//! Facade crate for the coupled-system job-coscheduling reproduction.
//!
//! Re-exports the workspace's public API under one roof so that examples,
//! integration tests, and downstream users can depend on a single crate:
//!
//! * [`sim`] — deterministic discrete-event engine,
//! * [`workload`] — job model, traces, synthetic generators, pairing,
//! * [`sched`] — single-domain resource manager (allocators, WFP/FCFS,
//!   EASY backfilling),
//! * [`proto`] — the lightweight cross-domain coordination protocol,
//! * [`cosched`] — the paper's contribution: the `Run_Job` coscheduling
//!   algorithm, hold/yield schemes, deadlock breaker, the coupled
//!   simulation driver, live wall-clock domains, and the §VI extensions
//!   (N-way coscheduling, inter-job temporal constraints),
//! * [`resv`] — the advance co-reservation baseline of the §III comparison,
//! * [`metrics`] — evaluation metrics (wait, slowdown, sync time,
//!   service-unit loss),
//! * [`obs`] — the observability layer: structured sim-time trace events,
//!   sinks (JSONL, ring buffer), a metrics registry, and wall-clock phase
//!   profiling, all guaranteed not to perturb simulation outcomes,
//! * [`trace`] — trace analysis: job-lifecycle reconstruction from JSONL
//!   event streams, wait-time attribution (local queueing vs.
//!   coscheduling), trace diffing, Prometheus text exposition, and ASCII
//!   timeline rendering,
//! * [`telemetry`] — the live telemetry plane: an embedded HTTP server for
//!   `/metrics`, `/healthz`, and `/state` over a streaming monitor, a tiny
//!   polling client, and the `cosched watch` terminal dashboard renderer.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system map.

pub use cosched_core as cosched;
pub use cosched_metrics as metrics;
pub use cosched_obs as obs;
pub use cosched_proto as proto;
pub use cosched_resv as resv;
pub use cosched_sched as sched;
pub use cosched_sim as sim;
pub use cosched_telemetry as telemetry;
pub use cosched_trace as trace;
pub use cosched_workload as workload;

/// Commonly used items, importable as `use coupled_cosched::prelude::*`.
pub mod prelude {
    pub use cosched_core::config::{CoschedConfig, CoupledConfig, Scheme, SchemeCombo};
    pub use cosched_core::driver::{CoupledSimulation, RunArtifacts, RunStats, SimulationReport};
    pub use cosched_metrics::summary::MachineSummary;
    pub use cosched_obs::{
        default_rules, AlertRule, JsonlSink, NoopObserver, Observer, RingSink, Sink, SinkObserver,
        StreamingMonitor, TeeObserver, TelemetrySnapshot, TraceEvent, TraceRecord, VecSink,
    };
    pub use cosched_sched::machine::MachineConfig;
    pub use cosched_sched::policy::PolicyKind;
    pub use cosched_sim::{SimDuration, SimTime};
    pub use cosched_telemetry::{MonitorProvider, TelemetryServer};
    pub use cosched_trace::{
        AttributionReport, CriticalPathReport, DiffReport, LifecycleSet, SpanTree,
    };
    pub use cosched_workload::job::{Job, JobId, MachineId};
    pub use cosched_workload::trace::Trace;
}
