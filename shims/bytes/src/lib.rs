//! Minimal offline stand-in for the `bytes` crate.
//!
//! `Bytes`/`BytesMut` are plain `Vec<u8>` wrappers (no refcounted slab —
//! the workspace only frames small control-plane messages), exposing the
//! subset of the upstream API the proto crate uses.

/// Read cursor over a buffer (subset of `bytes::Buf`).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, cnt: usize);
}

/// Write cursor over a growable buffer (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_u32(&mut self, value: u32);
    fn put_slice(&mut self, src: &[u8]);
}

/// Immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    pub fn new() -> Self {
        Bytes(Vec::new())
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(data.to_vec())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }

    /// Split off the first `at` bytes, leaving the remainder in `self`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.0.len(), "split_to out of bounds");
        let rest = self.0.split_off(at);
        BytesMut(std::mem::replace(&mut self.0, rest))
    }

    /// Freeze into an immutable buffer.
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.0.len(), "advance out of bounds");
        self.0.drain(..cnt);
    }
}

impl BufMut for BytesMut {
    fn put_u32(&mut self, value: u32) {
        self.0.extend_from_slice(&value.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.0.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.0.len(), "advance out of bounds");
        self.0.drain(..cnt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_ops() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_slice(b"payload");
        assert_eq!(buf.len(), 11);
        assert_eq!(&buf[..4], &0xDEAD_BEEFu32.to_be_bytes());
        let head = buf.split_to(4);
        assert_eq!(head.len(), 4);
        assert_eq!(&buf[..], b"payload");
        buf.advance(3);
        assert_eq!(&buf[..], b"load");
        let frozen = buf.freeze();
        assert_eq!(frozen.iter().count(), 4);
    }
}
