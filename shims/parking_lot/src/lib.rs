//! Minimal offline stand-in for `parking_lot`: `std::sync` primitives with
//! parking_lot's panic-free, guard-returning API (poisoning is swallowed —
//! the protected data is still returned, matching parking_lot semantics).

/// Mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// RwLock whose `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_guards_data() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
