//! Minimal offline stand-in for `crossbeam`: the `channel` module, backed
//! by `std::sync::mpsc` channels, and the `thread` module's scoped-thread
//! surface, backed by `std::thread::scope`. Covers the send / recv /
//! recv_timeout surface the proto crate's in-process transport uses, plus
//! the shared-receiver (MPMC) and scoped-spawn surface the bench crate's
//! campaign worker pool uses.

pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    /// Bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender(SenderInner::Bounded(tx)),
            Receiver::new(RxKind::Bounded(rx)),
        )
    }

    /// Unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender(SenderInner::Unbounded(tx)),
            Receiver::new(RxKind::Unbounded(rx)),
        )
    }

    #[derive(Debug)]
    enum SenderInner<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    #[derive(Debug)]
    pub struct Sender<T>(SenderInner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
                SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
            })
        }
    }

    #[derive(Debug)]
    enum RxKind<T> {
        Bounded(mpsc::Receiver<T>),
        Unbounded(mpsc::Receiver<T>),
    }

    impl<T> RxKind<T> {
        fn as_ref(&self) -> &mpsc::Receiver<T> {
            match self {
                RxKind::Bounded(rx) | RxKind::Unbounded(rx) => rx,
            }
        }
    }

    /// Receiver handle. Cloneable (crossbeam channels are MPMC): clones
    /// share one underlying queue behind a mutex, so each message is
    /// delivered to exactly one receiver. A blocking [`Receiver::recv`]
    /// holds the shared lock while it waits; multi-consumer users should
    /// either pre-fill the queue and drop the senders (the campaign pool's
    /// pattern — `recv` then never blocks) or use [`Receiver::try_recv`].
    #[derive(Debug)]
    pub struct Receiver<T>(Arc<Mutex<RxKind<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        fn new(rx: RxKind<T>) -> Self {
            Receiver(Arc::new(Mutex::new(rx)))
        }
    }

    /// Send failed because the receiver disconnected; returns the message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive failed because all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Timed receive outcome.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Bounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
                SenderInner::Unbounded(tx) => {
                    tx.send(value).map_err(|mpsc::SendError(v)| SendError(v))
                }
            }
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let guard = self.0.lock().expect("receiver lock poisoned");
            guard.as_ref().recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let guard = self.0.lock().expect("receiver lock poisoned");
            guard.as_ref().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            let guard = self.0.lock().expect("receiver lock poisoned");
            guard.as_ref().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(4);
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn timeout_when_empty() {
            let (tx, rx) = bounded::<u32>(1);
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Disconnected);
        }

        #[test]
        fn unbounded_accepts_without_blocking() {
            let (tx, rx) = unbounded();
            for i in 0..10_000u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut n = 0;
            while let Ok(v) = rx.recv() {
                assert_eq!(v, n);
                n += 1;
            }
            assert_eq!(n, 10_000);
        }

        #[test]
        fn cloned_receivers_share_one_queue() {
            let (tx, rx) = unbounded();
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let mut seen = Vec::new();
            while let Ok(v) = rx.try_recv() {
                seen.push(v);
                match rx2.try_recv() {
                    Ok(v) => seen.push(v),
                    Err(_) => break,
                }
            }
            // Every message delivered exactly once, in order.
            assert_eq!(seen, (0..100).collect::<Vec<_>>());
        }
    }
}

pub mod thread {
    //! Scoped threads: `crossbeam::thread::scope(|s| { s.spawn(…); })`,
    //! backed by `std::thread::scope`. Child panics surface as the `Err`
    //! variant of the returned [`std::thread::Result`], as upstream does.
    //!
    //! Divergence from upstream: spawn closures take no argument (std
    //! style) instead of re-receiving the scope — the borrow rules of
    //! `std::thread::Scope` cannot express upstream's re-entrant handle
    //! without `unsafe`, and nothing in this workspace nests spawns.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; spawned threads may borrow from the enclosing stack
    /// frame and are all joined before [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` carries its panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Run `f` with a scope in which threads borrowing the environment can
    /// be spawned; joins them all before returning. Returns `Err` with the
    /// first panic payload if any unjoined child panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::sync::atomic::{AtomicU64, Ordering};

        #[test]
        fn scoped_threads_borrow_stack_data() {
            let counter = AtomicU64::new(0);
            let counter = &counter;
            let total = scope(|s| {
                let handles: Vec<_> = (0..4)
                    .map(|i| {
                        s.spawn(move || {
                            counter.fetch_add(i, Ordering::SeqCst);
                            i
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 6);
            assert_eq!(counter.load(Ordering::SeqCst), 6);
        }

        #[test]
        fn child_panic_surfaces_as_err() {
            let result = scope(|s| {
                s.spawn(|| panic!("boom"));
            });
            assert!(result.is_err());
        }
    }
}
