//! Minimal offline stand-in for `crossbeam`: the `channel` module, backed
//! by `std::sync::mpsc` bounded (sync) channels. Covers the send / recv /
//! recv_timeout surface the proto crate's in-process transport uses.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    /// Bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Send failed because the receiver disconnected; returns the message.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Receive failed because all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Timed receive outcome.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is disconnected"),
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .send(value)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn try_recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = bounded(4);
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn timeout_when_empty() {
            let (tx, rx) = bounded::<u32>(1);
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Disconnected);
        }
    }
}
