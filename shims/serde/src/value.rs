//! The self-describing data model shared by the serde/serde_json shims.

use crate::DeError;

/// A JSON-like value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs, not a map) so that
/// serialized output follows struct declaration order like upstream
/// serde_json with default (non-`preserve_order`-sorted) struct emission.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving full `u64`/`i64` precision for integers.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::PosInt(a), Number::NegInt(b)) | (Number::NegInt(b), Number::PosInt(a)) => {
                *b >= 0 && *a == *b as u64
            }
            (Number::PosInt(a), Number::Float(b)) | (Number::Float(b), Number::PosInt(a)) => {
                *b == *a as f64
            }
            (Number::NegInt(a), Number::Float(b)) | (Number::Float(b), Number::NegInt(a)) => {
                *b == *a as f64
            }
        }
    }
}

impl Value {
    /// Build an object from `(name, value)` pairs in declaration order.
    pub fn object_from_fields(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Build a single-entry object `{tag: inner}` (externally tagged enums).
    pub fn object1(tag: &str, inner: Value) -> Value {
        Value::Object(vec![(tag.to_string(), inner)])
    }

    /// Look up a field of an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, as an error otherwise.
    pub fn field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key)
            .ok_or_else(|| DeError::msg(format!("missing field `{key}`")))
    }

    /// The single `(tag, inner)` entry of an externally tagged enum object.
    pub fn single_entry(&self) -> Result<(&str, &Value), DeError> {
        match self {
            Value::Object(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
            other => Err(DeError::msg(format!(
                "expected single-entry variant object, got {other:?}"
            ))),
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Array of exactly `n` elements (tuples, tuple structs/variants).
    pub fn as_array_n(&self, n: usize) -> Result<&[Value], DeError> {
        let items = self
            .as_array()
            .ok_or_else(|| DeError::msg(format!("expected array, got {self:?}")))?;
        if items.len() != n {
            return Err(DeError::msg(format!(
                "expected array of length {n}, got {}",
                items.len()
            )));
        }
        Ok(items)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::PosInt(n)) => Some(*n),
            Value::Number(Number::NegInt(n)) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::PosInt(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::NegInt(n)) => Some(*n),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::Float(f)) => Some(*f),
            Value::Number(Number::PosInt(n)) => Some(*n as f64),
            Value::Number(Number::NegInt(n)) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// `value["key"]` indexing; missing keys yield `Value::Null` like serde_json.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

/// `value[i]` indexing; out-of-range yields `Value::Null` like serde_json.
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(items) => items.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write_json(self, &mut out, None, 0);
        f.write_str(&out)
    }
}

/// Serialize a value tree to JSON text.
///
/// `indent = Some(width)` selects pretty output (serde_json-style, two-space
/// default); `None` selects compact output.
pub fn write_json(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_json(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) => {
            if v.is_finite() {
                let text = format!("{v}");
                out.push_str(&text);
                // Keep floats round-trippable as floats: `1.0` must not
                // collapse to the integer token `1`.
                if !text.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a value tree.
pub fn parse_json(input: &str) -> Result<Value, DeError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(DeError::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), DeError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::msg(format!(
                "expected {:?} at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, DeError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(DeError::msg(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, DeError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(DeError::msg(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self) -> Result<Value, DeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected , or ] at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, DeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(DeError::msg(format!(
                        "expected , or }} at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, DeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(DeError::msg("unterminated string".to_string()));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(DeError::msg("unterminated escape".to_string()));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low.wrapping_sub(0xDC00) & 0x3FF);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| DeError::msg("bad surrogate".to_string()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| DeError::msg("bad codepoint".to_string()))?,
                                );
                            }
                        }
                        other => {
                            return Err(DeError::msg(format!("bad escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-scan the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| DeError::msg("invalid utf-8".to_string()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, DeError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(DeError::msg("truncated \\u escape".to_string()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| DeError::msg("bad \\u escape".to_string()))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| DeError::msg("bad \\u escape".to_string()))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::msg("invalid number".to_string()))?;
        let number = if float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| DeError::msg(format!("invalid number {text:?}")))?,
            )
        } else if let Some(digits) = text.strip_prefix('-') {
            let _ = digits;
            match text.parse::<i64>() {
                Ok(v) => Number::NegInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| DeError::msg(format!("invalid number {text:?}")))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| DeError::msg(format!("invalid number {text:?}")))?,
                ),
            }
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut s = String::new();
        write_json(v, &mut s, None, 0);
        parse_json(&s).unwrap()
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Number(Number::PosInt(u64::MAX)),
            Value::Number(Number::NegInt(-42)),
            Value::Number(Number::Float(1.5)),
            Value::Number(Number::Float(1.0)),
            Value::String("hi \"there\"\n\u{1f600}".to_string()),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let v = Value::Number(Number::Float(3.0));
        let mut s = String::new();
        write_json(&v, &mut s, None, 0);
        assert_eq!(s, "3.0");
        assert!(matches!(roundtrip(&v), Value::Number(Number::Float(_))));
    }

    #[test]
    fn nested_roundtrip_preserves_order() {
        let v = Value::Object(vec![
            (
                "zeta".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(false)]),
            ),
            ("alpha".to_string(), Value::Number(Number::PosInt(3))),
        ]);
        let got = roundtrip(&v);
        assert_eq!(got, v);
        if let Value::Object(fields) = &got {
            assert_eq!(fields[0].0, "zeta");
        }
    }

    #[test]
    fn pretty_output_parses() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::Number(Number::PosInt(1))]),
        )]);
        let mut s = String::new();
        write_json(&v, &mut s, Some(2), 0);
        assert!(s.contains('\n'));
        assert_eq!(parse_json(&s).unwrap(), v);
    }

    #[test]
    fn index_missing_returns_null() {
        let v = Value::Object(vec![("a".to_string(), Value::Bool(true))]);
        assert!(v["missing"].is_null());
        assert_eq!(v["a"], true);
    }
}
