//! Minimal offline stand-in for `serde`.
//!
//! Instead of serde's visitor-based zero-copy model, this shim uses a
//! simple self-describing data model: [`Serialize`] lowers a value to a
//! JSON-like [`Value`] tree and [`Deserialize`] raises it back. The
//! companion `serde_derive` shim generates both impls for plain structs
//! and enums (externally tagged, matching upstream serde's default
//! representation), and the `serde_json` shim handles JSON text.
//!
//! The `'de` lifetime parameter on [`Deserialize`] is vestigial — the shim
//! never borrows from the input — but is kept so that downstream bounds
//! like `for<'d> Deserialize<'d>` written against real serde still compile.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{Number, Value};

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Lower `self` into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Raise a value back from a [`Value`] tree.
pub trait Deserialize<'de>: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::DeError;

    /// Marker for types deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_u64().ok_or_else(|| {
                    DeError::msg(format!("expected unsigned integer, got {value:?}"))
                })?;
                <$ty>::try_from(n)
                    .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value.as_i64().ok_or_else(|| {
                    DeError::msg(format!("expected integer, got {value:?}"))
                })?;
                <$ty>::try_from(n)
                    .map_err(|_| DeError::msg(format!("integer {n} out of range for {}", stringify!($ty))))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::Float(*self))
        } else {
            // Upstream serde_json writes non-finite floats as null.
            Value::Null
        }
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(f64::NAN),
            _ => value
                .as_f64()
                .ok_or_else(|| DeError::msg(format!("expected float, got {value:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = value
            .as_str()
            .ok_or_else(|| DeError::msg(format!("expected char, got {value:?}")))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::msg(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::msg(format!("expected string, got {value:?}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::msg(format!("expected array, got {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value.as_array_n(N)?;
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) => $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value.as_array_n($len)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) => 1;
    (A: 0, B: 1) => 2;
    (A: 0, B: 1, C: 2) => 3;
    (A: 0, B: 1, C: 2, D: 3) => 4;
    (A: 0, B: 1, C: 2, D: 3, E: 4) => 5;
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for a deterministic representation, like a BTreeMap.
        let mut entries: Vec<_> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, got {other:?}"))),
        }
    }
}
