//! Minimal offline stand-in for `serde_json`, built on the serde shim's
//! [`Value`] tree: serialize = lower to `Value` + write JSON text;
//! deserialize = parse JSON text + raise from `Value`.

pub use serde::value::{Number, Value};

use serde::de::DeserializeOwned;
use serde::value::{parse_json, write_json};
use serde::Serialize;

/// JSON error (message-only).
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn from_de(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_json(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Serialize to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserialize from JSON text.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T, Error> {
    let value = parse_json(input).map_err(Error::from_de)?;
    T::from_value(&value).map_err(Error::from_de)
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(input: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(input).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Convert a [`Value`] tree into a concrete type.
pub fn from_value<T: DeserializeOwned>(value: Value) -> Result<T, Error> {
    T::from_value(&value).map_err(Error::from_de)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_value_trees() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5, "x", null, true]}"#).unwrap();
        let text = to_string(&v).unwrap();
        let again: Value = from_str(&text).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn option_roundtrip() {
        let some = to_string(&Some(5u64)).unwrap();
        assert_eq!(some, "5");
        let none = to_string(&Option::<u64>::None).unwrap();
        assert_eq!(none, "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("5").unwrap(), Some(5));
    }

    #[test]
    fn vec_of_tuples_roundtrip() {
        let pairs: Vec<(u64, u64)> = vec![(1, 2), (3, 4)];
        let text = to_string(&pairs).unwrap();
        assert_eq!(text, "[[1,2],[3,4]]");
        let again: Vec<(u64, u64)> = from_str(&text).unwrap();
        assert_eq!(pairs, again);
    }
}
