//! Minimal offline stand-in for `criterion`.
//!
//! Implements the `Criterion` / `BenchmarkGroup` / `Bencher` API surface
//! the workspace's benches use, backed by a simple wall-clock runner: each
//! benchmark warms up once, runs a fixed iteration budget, and prints the
//! mean time per iteration. No statistics, plots, or baselines — the goal
//! is that `cargo bench` compiles and produces useful ballpark numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const DEFAULT_MEASURE_ITERS: u64 = 15;

/// Batch sizing hint for `iter_batched` (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark identifier: function name plus an optional parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing harness passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warmup round, untimed.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_bench(label: &str, iters: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos() / u128::from(iters.max(1));
    println!("bench: {label:<50} {per_iter:>12} ns/iter ({iters} iters)");
}

/// Top-level benchmark context.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_MEASURE_ITERS,
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let iters = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            iters,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Criterion uses this as a statistical sample count; the shim maps it
    /// onto the per-benchmark iteration budget.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.into_label()),
            self.iters,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.iters,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Anything usable as a benchmark label (`&str` or `BenchmarkId`).
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sq", 7), &7u64, |b, &n| b.iter(|| n * n));
        group.bench_function(BenchmarkId::from_parameter(9), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn api_surface_runs() {
        let mut criterion = Criterion::default();
        sample_bench(&mut criterion);
    }
}
