//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls against the serde shim's
//! Value-tree model without pulling in `syn`/`quote`: the item is parsed
//! directly from the `proc_macro::TokenStream`, extracting only item kind,
//! name, field names, and field counts (field *types* are never parsed —
//! generated code lets inference pick the right `from_value` impl).
//!
//! Supported shapes (everything this workspace derives):
//! * named-field structs,
//! * tuple structs (1-field newtypes serialize transparently, n-field as
//!   arrays — matching upstream serde),
//! * enums with unit / newtype / tuple / struct variants, externally
//!   tagged (`"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}`).
//!
//! Unsupported: generics, `#[serde(...)]` attributes (none are used here).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate(&item, mode)
            .parse()
            .expect("generated code must parse"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes, visibility, and misc qualifiers until struct/enum.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("derive input has no struct/enum keyword".to_string()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let text = id.to_string();
                if text == "struct" || text == "enum" {
                    i += 1;
                    break text;
                }
                i += 1; // pub, crate, etc.
            }
            Some(_) => i += 1, // e.g. the group of pub(crate)
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "derive shim does not support generic type `{name}`"
        ));
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected item body for `{name}`, found {other:?}")),
    };

    if kind == "enum" {
        let variants = parse_variants(body.stream())?;
        return Ok(Item::Enum { name, variants });
    }

    match body.delimiter() {
        Delimiter::Brace => {
            let fields = parse_named_fields(body.stream())?;
            Ok(Item::NamedStruct { name, fields })
        }
        Delimiter::Parenthesis => {
            let arity = split_top_level_commas(body.stream()).len();
            Ok(Item::TupleStruct { name, arity })
        }
        other => Err(format!("unexpected struct body delimiter {other:?}")),
    }
}

/// Split a token stream on commas at angle-bracket depth zero. `<`/`>`
/// appear as `Punct`s (bracket/paren groups are atomic `Group` tokens), so a
/// simple depth counter suffices for types like `BTreeMap<String, u64>`.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    continue;
                }
                // `->` in fn-pointer types would confuse the counter; no
                // derived type here uses one.
                _ => {}
            }
        }
        current.push(token);
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Extract field names from a named-field body: per chunk, skip attributes
/// and visibility, then take the ident preceding `:`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            first_bare_ident(&chunk).ok_or_else(|| "could not find field name".to_string())
        })
        .collect()
}

/// First ident in the chunk after skipping `#[...]` attributes and
/// visibility qualifiers.
fn first_bare_ident(chunk: &[TokenTree]) -> Option<String> {
    let mut i = 0;
    loop {
        match chunk.get(i)? {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let text = id.to_string();
                if text == "pub" {
                    i += 1;
                    // skip pub(...) restriction group
                    if matches!(chunk.get(i), Some(TokenTree::Group(_))) {
                        i += 1;
                    }
                } else {
                    return Some(text);
                }
            }
            _ => i += 1,
        }
    }
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let name = first_bare_ident(&chunk)
                .ok_or_else(|| "could not find variant name".to_string())?;
            // Locate a payload group following the name, if any.
            let shape = chunk
                .iter()
                .rev()
                .find_map(|t| match t {
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => Some(
                        VariantShape::Tuple(split_top_level_commas(g.stream()).len()),
                    ),
                    TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Some(
                        VariantShape::Named(parse_named_fields(g.stream()).unwrap_or_default()),
                    ),
                    _ => None,
                })
                .unwrap_or(VariantShape::Unit);
            Ok(Variant { name, shape })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate(item: &Item, mode: Mode) -> String {
    match mode {
        Mode::Serialize => generate_serialize(item),
        Mode::Deserialize => generate_deserialize(item),
    }
}

fn generate_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            (
                name,
                format!(
                    "::serde::Value::object_from_fields(::std::vec![{}])",
                    pairs.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| serialize_variant_arm(name, v))
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => format!(
            "{enum_name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?})),"
        ),
        VariantShape::Tuple(1) => format!(
            "{enum_name}::{vname}(f0) => \
             ::serde::Value::object1({vname:?}, ::serde::Serialize::to_value(f0)),"
        ),
        VariantShape::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                .collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::object1({vname:?}, \
                 ::serde::Value::Array(::std::vec![{}])),",
                binds.join(", "),
                items.join(", ")
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields.join(", ");
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("({f:?}, ::serde::Serialize::to_value({f}))"))
                .collect();
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Value::object1({vname:?}, \
                 ::serde::Value::object_from_fields(::std::vec![{}])),",
                pairs.join(", ")
            )
        }
    }
}

fn generate_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::Deserialize::from_value(__v.field({f:?})?)?"))
                .collect();
            (
                name,
                format!(
                    "::std::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "let __items = __v.as_array_n({arity}usize)?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            (name, body)
        }
        Item::Enum { name, variants } => (name, deserialize_enum_body(name, variants)),
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n\
         }}\n\
         }}"
    )
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            format!(
                "{:?} => ::std::result::Result::Ok({name}::{}),",
                v.name, v.name
            )
        })
        .collect();
    let payload_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Tuple(1) => Some(format!(
                    "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__inner)?)),"
                )),
                VariantShape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                        .collect();
                    Some(format!(
                        "{vname:?} => {{ let __items = __inner.as_array_n({n}usize)?; \
                         ::std::result::Result::Ok({name}::{vname}({})) }},",
                        items.join(", ")
                    ))
                }
                VariantShape::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(__inner.field({f:?})?)?")
                        })
                        .collect();
                    Some(format!(
                        "{vname:?} => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                        inits.join(", ")
                    ))
                }
            }
        })
        .collect();

    format!(
        "if let ::serde::Value::String(__s) = __v {{\n\
         return match __s.as_str() {{\n\
         {}\n\
         __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
         \"unknown variant `{{__other}}` for {name}\"))),\n\
         }};\n\
         }}\n\
         let (__tag, __inner) = __v.single_entry()?;\n\
         match __tag {{\n\
         {}\n\
         __other => ::std::result::Result::Err(::serde::DeError::msg(::std::format!(\n\
         \"unknown variant `{{__other}}` for {name}\"))),\n\
         }}",
        unit_arms.join("\n"),
        payload_arms.join("\n")
    )
}
