//! Collection strategies (`prop::collection::vec`).

use crate::{Strategy, TestRng};

/// Size bound for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

/// Strategy yielding `Vec`s of `element` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
