//! Sampling strategies (`prop::sample::select`).

use crate::{Strategy, TestRng};

/// Uniform choice from a fixed list.
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.choices.len() as u64) as usize;
        self.choices[idx].clone()
    }
}

/// `prop::sample::select(choices)`.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select needs at least one choice");
    Select { choices }
}
