//! Minimal offline stand-in for `proptest`.
//!
//! Provides deterministic random testing with the subset of the upstream
//! API this workspace uses: `proptest!` blocks (with optional
//! `#![proptest_config(...)]`), `Strategy` with `prop_map`, integer-range
//! and tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `any::<T>()`, `prop_oneof!`, and the `prop_assert*` macros.
//!
//! No shrinking: a failing case panics with the case index so it can be
//! re-run (generation is seeded from the test name, so failures reproduce
//! exactly).

pub mod collection;
pub mod sample;

/// Deterministic generator for test input (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, folded into a splitmix stream.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> BoxedStrategy<T> {
    pub fn new<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        BoxedStrategy {
            gen_fn: Box::new(move |rng| strategy.generate(rng)),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Mapped strategy (`Strategy::prop_map`).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// One boxed alternative of a [`Union`].
type UnionArm<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice among boxed alternatives (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    pub fn from_strategy<S: Strategy<Value = T> + 'static>(strategy: S) -> Self {
        Union {
            arms: vec![Box::new(move |rng| strategy.generate(rng))],
        }
    }

    /// Add an alternative (used by `prop_oneof!` to unify arm types).
    #[must_use]
    pub fn or<S: Strategy<Value = T> + 'static>(mut self, strategy: S) -> Self {
        self.arms.push(Box::new(move |rng| strategy.generate(rng)));
        self
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        (self.arms[idx])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for std::ops::RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A failed property-test case (from `prop_assert*`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// `prop::...` namespace (mirrors upstream's prelude re-export).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strategy:expr ),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut __rng); )*
                    // The immediately-invoked closure gives `$body` a scope
                    // where `?` and `prop_assert!` early-returns work.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(err) = __outcome {
                        ::std::panic!("proptest case {} of {} failed: {}", __case + 1, stringify!($name), err);
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(, $rest:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut __union = $crate::Union::from_strategy($first);
        $( __union = __union.or($rest); )*
        __union
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 5u64..10, y in 0u32..=3, z in 1usize..100) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((1..100).contains(&z));
        }

        #[test]
        fn map_and_oneof_compose(v in prop_oneof![(1u64..4).prop_map(|x| x * 10), 100u64..=100]) {
            prop_assert!(v == 100 || (10..40).contains(&v));
        }

        #[test]
        fn collections_respect_size(items in prop::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&items.len()));
        }

        #[test]
        fn tuples_and_select(pair in (1u64..5, 0i64..3), pick in prop::sample::select(vec![7u8, 9])) {
            prop_assert!(pair.0 >= 1 && pair.1 < 3);
            prop_assert!(pick == 7 || pick == 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(_x in 0u64..10) {
            // Just exercising the config path.
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
