//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this shim provides
//! exactly the surface the workspace uses: `rngs::StdRng` (seeded via
//! `SeedableRng::seed_from_u64`), the `RngCore` and `Rng` traits with
//! `gen::<f64>()` and `gen_range` over integer ranges, and `rand::Error`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — statistically
//! solid for simulation workloads and fully deterministic. Streams differ
//! from upstream `rand`, which is fine: the workspace only relies on
//! determinism for a fixed seed, never on upstream-exact sequences.

pub mod rngs;

pub use rngs::StdRng;

/// Error type mirroring `rand::Error`; the shim's generators never fail.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core RNG interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Seeding interface (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Seed from a single `u64` (splitmix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Sampling of a "standard" value from raw bits, backing [`Rng::gen`].
pub trait StandardSample: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// A range that can produce a uniform sample, backing [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $ty
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + uniform_u64(rng, span + 1) as $ty
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $ty)
            }
        }
        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $ty)
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, span)` via widening multiply (Lemire's method,
/// without the rejection step: bias is at most 2^-64, immaterial here).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
