//! Queue-ordering policies.
//!
//! The production machines in the paper run **WFP** plus backfilling; the
//! paper also names **FCFS** as the common alternative whose
//! priority-increases-with-time property guarantees yield-yield liveness
//! (§IV-D2). SJF is included for ablation studies.
//!
//! A policy maps a queued job's observable state to a score; the scheduler
//! considers jobs in descending score order. Ties break by submission order
//! (then id), keeping iterations deterministic.

use cosched_sim::{SimDuration, SimTime};
use cosched_workload::Job;
use serde::{Deserialize, Serialize};

/// Selectable queue policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First-come first-served: score is time in queue.
    Fcfs,
    /// The WFP utility used on Intrepid: `(wait / walltime)³ × size`.
    /// Favours jobs that have waited long relative to their requested
    /// walltime, weighted toward bigger jobs.
    Wfp,
    /// Shortest job first (by requested walltime); ablation baseline.
    Sjf,
}

/// Observable state the policy scores.
#[derive(Debug, Clone, Copy)]
pub struct QueuedView<'a> {
    /// The job being scored.
    pub job: &'a Job,
    /// Current time.
    pub now: SimTime,
    /// Additive priority boost (the per-yield boost enhancement of §IV-E2;
    /// zero when the enhancement is off).
    pub boost: f64,
}

impl PolicyKind {
    /// Score a queued job; higher runs earlier.
    pub fn score(self, view: QueuedView<'_>) -> f64 {
        let wait = (view.now - view.job.submit).as_secs() as f64;
        let base = match self {
            PolicyKind::Fcfs => wait,
            PolicyKind::Wfp => {
                let walltime = view.job.walltime.as_secs().max(1) as f64;
                let r = wait / walltime;
                r * r * r * view.job.size as f64
            }
            PolicyKind::Sjf => {
                // Shorter walltime → larger score.
                1.0 / view.job.walltime.as_secs().max(1) as f64
            }
        };
        base + view.boost
    }

    /// Whether the policy's score is strictly increasing in waiting time for
    /// every job. Policies with this property guarantee that yield-yield
    /// coscheduling cannot starve (§IV-D2: jobs "will eventually get the
    /// highest priority on their respective machine if job priority
    /// increases by time").
    pub fn priority_grows_with_wait(self) -> bool {
        match self {
            PolicyKind::Fcfs | PolicyKind::Wfp => true,
            PolicyKind::Sjf => false,
        }
    }
}

/// Sort `jobs` (with their boosts) into scheduling order under `policy`:
/// descending score, ties by `(submit, id)`. `demoted` ids sort after
/// everything else (the deadlock-breaker demotion of §IV-E1).
pub fn order_queue(
    policy: PolicyKind,
    now: SimTime,
    jobs: &[(&Job, f64)],
    demoted: &dyn Fn(&Job) -> bool,
) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..jobs.len()).collect();
    let scores: Vec<f64> = jobs
        .iter()
        .map(|&(job, boost)| policy.score(QueuedView { job, now, boost }))
        .collect();
    idx.sort_by(|&a, &b| {
        let (ja, jb) = (jobs[a].0, jobs[b].0);
        demoted(ja)
            .cmp(&demoted(jb))
            .then_with(|| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .expect("scores are finite")
            })
            .then_with(|| ja.submit.cmp(&jb.submit))
            .then_with(|| ja.id.cmp(&jb.id))
    });
    idx
}

/// Convenience: a policy-scored wait of `wait` seconds for a job of
/// `walltime` and `size` under WFP, used in tests and docs.
pub fn wfp_score(wait: SimDuration, walltime: SimDuration, size: u64) -> f64 {
    let r = wait.as_secs() as f64 / walltime.as_secs().max(1) as f64;
    r * r * r * size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::{JobId, MachineId};

    fn job(id: u64, submit: u64, size: u64, walltime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(0),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(walltime.max(1)),
            SimDuration::from_secs(walltime.max(1)),
        )
    }

    #[test]
    fn fcfs_orders_by_submission() {
        let a = job(1, 100, 1, 600);
        let b = job(2, 50, 1, 600);
        let now = SimTime::from_secs(1_000);
        let jobs = [(&a, 0.0), (&b, 0.0)];
        let order = order_queue(PolicyKind::Fcfs, now, &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]); // b submitted earlier → first
    }

    #[test]
    fn wfp_favours_large_jobs_at_equal_relative_wait() {
        let small = job(1, 0, 512, 3_600);
        let large = job(2, 0, 8_192, 3_600);
        let now = SimTime::from_secs(1_800);
        let jobs = [(&small, 0.0), (&large, 0.0)];
        let order = order_queue(PolicyKind::Wfp, now, &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn wfp_favours_relative_wait_over_absolute() {
        // Short-walltime job waiting as long as a long-walltime job has a
        // much larger (wait/walltime)³.
        let short = job(1, 0, 512, 600);
        let long = job(2, 0, 512, 36_000);
        let now = SimTime::from_secs(600);
        let jobs = [(&long, 0.0), (&short, 0.0)];
        let order = order_queue(PolicyKind::Wfp, now, &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn wfp_score_matches_formula() {
        let s = wfp_score(
            SimDuration::from_secs(1_800),
            SimDuration::from_secs(3_600),
            1_024,
        );
        assert!((s - 0.125 * 1_024.0).abs() < 1e-9);
    }

    #[test]
    fn sjf_prefers_short_walltime() {
        let short = job(1, 0, 1, 60);
        let long = job(2, 0, 1, 6_000);
        let jobs = [(&long, 0.0), (&short, 0.0)];
        let order = order_queue(PolicyKind::Sjf, SimTime::from_secs(10), &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn boost_lifts_priority() {
        let a = job(1, 0, 1, 600);
        let b = job(2, 0, 1, 600);
        let now = SimTime::from_secs(300);
        // Without boost, tie breaks to lower id (a). With boost on b, b wins.
        let order = order_queue(PolicyKind::Fcfs, now, &[(&a, 0.0), (&b, 0.0)], &|_| false);
        assert_eq!(order, vec![0, 1]);
        let order = order_queue(PolicyKind::Fcfs, now, &[(&a, 0.0), (&b, 1e6)], &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn demoted_jobs_sort_last_regardless_of_score() {
        let old = job(1, 0, 1, 600); // huge wait → top score
        let new = job(2, 990, 1, 600);
        let now = SimTime::from_secs(1_000);
        let jobs = [(&old, 0.0), (&new, 0.0)];
        let order = order_queue(PolicyKind::Fcfs, now, &jobs, &|j| j.id == JobId(1));
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn zero_wait_scores_are_stable() {
        let a = job(1, 500, 4, 600);
        let b = job(2, 500, 4, 600);
        let now = SimTime::from_secs(500);
        let order = order_queue(PolicyKind::Wfp, now, &[(&b, 0.0), (&a, 0.0)], &|_| false);
        // Equal scores: ties by (submit, id) → a (id 1) first.
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn growth_property_flags() {
        assert!(PolicyKind::Fcfs.priority_grows_with_wait());
        assert!(PolicyKind::Wfp.priority_grows_with_wait());
        assert!(!PolicyKind::Sjf.priority_grows_with_wait());
    }
}
