//! Queue-ordering policies.
//!
//! The production machines in the paper run **WFP** plus backfilling; the
//! paper also names **FCFS** as the common alternative whose
//! priority-increases-with-time property guarantees yield-yield liveness
//! (§IV-D2). SJF is included for ablation studies.
//!
//! A policy maps a queued job's observable state to a score; the scheduler
//! considers jobs in descending score order. Ties break by submission order
//! (then id), keeping iterations deterministic.

use cosched_sim::{SimDuration, SimTime};
use cosched_workload::{Job, JobId};
use serde::{Deserialize, Serialize};

/// Selectable queue policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// First-come first-served: score is time in queue.
    Fcfs,
    /// The WFP utility used on Intrepid: `(wait / walltime)³ × size`.
    /// Favours jobs that have waited long relative to their requested
    /// walltime, weighted toward bigger jobs.
    Wfp,
    /// Shortest job first (by requested walltime); ablation baseline.
    Sjf,
}

/// Observable state the policy scores.
#[derive(Debug, Clone, Copy)]
pub struct QueuedView<'a> {
    /// The job being scored.
    pub job: &'a Job,
    /// Current time.
    pub now: SimTime,
    /// Additive priority boost (the per-yield boost enhancement of §IV-E2;
    /// zero when the enhancement is off).
    pub boost: f64,
}

impl PolicyKind {
    /// Score a queued job; higher runs earlier.
    pub fn score(self, view: QueuedView<'_>) -> f64 {
        let wait = (view.now - view.job.submit).as_secs() as f64;
        let base = match self {
            PolicyKind::Fcfs => wait,
            PolicyKind::Wfp => {
                let walltime = view.job.walltime.as_secs().max(1) as f64;
                let r = wait / walltime;
                r * r * r * view.job.size as f64
            }
            PolicyKind::Sjf => {
                // Shorter walltime → larger score.
                1.0 / view.job.walltime.as_secs().max(1) as f64
            }
        };
        base + view.boost
    }

    /// Whether the policy's score is strictly increasing in waiting time for
    /// every job. Policies with this property guarantee that yield-yield
    /// coscheduling cannot starve (§IV-D2: jobs "will eventually get the
    /// highest priority on their respective machine if job priority
    /// increases by time").
    pub fn priority_grows_with_wait(self) -> bool {
        match self {
            PolicyKind::Fcfs | PolicyKind::Wfp => true,
            PolicyKind::Sjf => false,
        }
    }
}

/// Reusable buffers for [`order_queue_into`]. A scheduler that keeps one
/// of these across iterations performs no per-iteration allocation once the
/// buffers have grown to the queue's steady-state depth.
#[derive(Debug, Default)]
pub struct OrderScratch {
    /// Output permutation (indices into the jobs slice).
    idx: Vec<usize>,
    /// Cached per-job scores — each job is scored exactly once per sort, not
    /// once per comparison.
    scores: Vec<f64>,
    /// Cached per-job demotion flags — the `demoted` predicate is evaluated
    /// once per job, not `O(n log n)` times inside the comparator.
    demoted: Vec<bool>,
    /// Cached `(submit, id)` tiebreak keys. With every comparator input in
    /// scratch, [`order_jobs_into`] can take its jobs from an iterator —
    /// callers need not materialise a slice of views.
    keys: Vec<(SimTime, JobId)>,
}

impl OrderScratch {
    /// Fresh, empty scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indices of the jobs slice in scheduling order, as computed by the
    /// last [`order_queue_into`] call on this scratch.
    pub fn order(&self) -> &[usize] {
        &self.idx
    }
}

/// Sort `jobs` (with their boosts) into scheduling order under `policy`:
/// descending score, ties by `(submit, id)`. `demoted` ids sort after
/// everything else (the deadlock-breaker demotion of §IV-E1).
///
/// Convenience wrapper over [`order_queue_into`] that allocates fresh
/// scratch; hot paths should hold an [`OrderScratch`] and call
/// [`order_queue_into`] directly.
pub fn order_queue(
    policy: PolicyKind,
    now: SimTime,
    jobs: &[(&Job, f64)],
    demoted: &dyn Fn(&Job) -> bool,
) -> Vec<usize> {
    let mut scratch = OrderScratch::new();
    order_queue_into(policy, now, jobs, demoted, &mut scratch);
    std::mem::take(&mut scratch.idx)
}

/// Allocation-free variant of [`order_queue`]: the permutation is left in
/// `scratch.idx` (valid until the next call). Scores and demotion flags are
/// computed once per job into reused buffers, and the sort is unstable —
/// safe because the comparator is a total order (the final `(submit, id)`
/// tiebreak never compares equal for distinct jobs, pinned by
/// `total_order_makes_unstable_sort_safe` below).
pub fn order_queue_into(
    policy: PolicyKind,
    now: SimTime,
    jobs: &[(&Job, f64)],
    demoted: &dyn Fn(&Job) -> bool,
    scratch: &mut OrderScratch,
) {
    order_jobs_into(
        policy,
        now,
        jobs.iter().map(|&(job, boost)| (job, boost, demoted(job))),
        scratch,
    );
}

/// Iterator-input variant of [`order_queue_into`]: each item is
/// `(job, boost, demoted)`. The scheduler's hot path feeds its queue
/// straight from its own state maps through this, so ordering a queue of
/// steady-state depth allocates nothing at all.
pub fn order_jobs_into<'a>(
    policy: PolicyKind,
    now: SimTime,
    jobs: impl IntoIterator<Item = (&'a Job, f64, bool)>,
    scratch: &mut OrderScratch,
) {
    scratch.idx.clear();
    scratch.scores.clear();
    scratch.demoted.clear();
    scratch.keys.clear();
    for (i, (job, boost, demoted)) in jobs.into_iter().enumerate() {
        scratch.idx.push(i);
        scratch
            .scores
            .push(policy.score(QueuedView { job, now, boost }));
        scratch.demoted.push(demoted);
        scratch.keys.push((job.submit, job.id));
    }
    let OrderScratch {
        idx,
        scores,
        demoted,
        keys,
    } = scratch;
    idx.sort_unstable_by(|&a, &b| {
        demoted[a]
            .cmp(&demoted[b])
            .then_with(|| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .expect("scores are finite")
            })
            .then_with(|| keys[a].cmp(&keys[b]))
    });
}

/// Convenience: a policy-scored wait of `wait` seconds for a job of
/// `walltime` and `size` under WFP, used in tests and docs.
pub fn wfp_score(wait: SimDuration, walltime: SimDuration, size: u64) -> f64 {
    let r = wait.as_secs() as f64 / walltime.as_secs().max(1) as f64;
    r * r * r * size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::{JobId, MachineId};

    fn job(id: u64, submit: u64, size: u64, walltime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(0),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(walltime.max(1)),
            SimDuration::from_secs(walltime.max(1)),
        )
    }

    #[test]
    fn fcfs_orders_by_submission() {
        let a = job(1, 100, 1, 600);
        let b = job(2, 50, 1, 600);
        let now = SimTime::from_secs(1_000);
        let jobs = [(&a, 0.0), (&b, 0.0)];
        let order = order_queue(PolicyKind::Fcfs, now, &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]); // b submitted earlier → first
    }

    #[test]
    fn wfp_favours_large_jobs_at_equal_relative_wait() {
        let small = job(1, 0, 512, 3_600);
        let large = job(2, 0, 8_192, 3_600);
        let now = SimTime::from_secs(1_800);
        let jobs = [(&small, 0.0), (&large, 0.0)];
        let order = order_queue(PolicyKind::Wfp, now, &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn wfp_favours_relative_wait_over_absolute() {
        // Short-walltime job waiting as long as a long-walltime job has a
        // much larger (wait/walltime)³.
        let short = job(1, 0, 512, 600);
        let long = job(2, 0, 512, 36_000);
        let now = SimTime::from_secs(600);
        let jobs = [(&long, 0.0), (&short, 0.0)];
        let order = order_queue(PolicyKind::Wfp, now, &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn wfp_score_matches_formula() {
        let s = wfp_score(
            SimDuration::from_secs(1_800),
            SimDuration::from_secs(3_600),
            1_024,
        );
        assert!((s - 0.125 * 1_024.0).abs() < 1e-9);
    }

    #[test]
    fn sjf_prefers_short_walltime() {
        let short = job(1, 0, 1, 60);
        let long = job(2, 0, 1, 6_000);
        let jobs = [(&long, 0.0), (&short, 0.0)];
        let order = order_queue(PolicyKind::Sjf, SimTime::from_secs(10), &jobs, &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn boost_lifts_priority() {
        let a = job(1, 0, 1, 600);
        let b = job(2, 0, 1, 600);
        let now = SimTime::from_secs(300);
        // Without boost, tie breaks to lower id (a). With boost on b, b wins.
        let order = order_queue(PolicyKind::Fcfs, now, &[(&a, 0.0), (&b, 0.0)], &|_| false);
        assert_eq!(order, vec![0, 1]);
        let order = order_queue(PolicyKind::Fcfs, now, &[(&a, 0.0), (&b, 1e6)], &|_| false);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn demoted_jobs_sort_last_regardless_of_score() {
        let old = job(1, 0, 1, 600); // huge wait → top score
        let new = job(2, 990, 1, 600);
        let now = SimTime::from_secs(1_000);
        let jobs = [(&old, 0.0), (&new, 0.0)];
        let order = order_queue(PolicyKind::Fcfs, now, &jobs, &|j| j.id == JobId(1));
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn zero_wait_scores_are_stable() {
        let a = job(1, 500, 4, 600);
        let b = job(2, 500, 4, 600);
        let now = SimTime::from_secs(500);
        let order = order_queue(PolicyKind::Wfp, now, &[(&b, 0.0), (&a, 0.0)], &|_| false);
        // Equal scores: ties by (submit, id) → a (id 1) first.
        assert_eq!(order, vec![1, 0]);
    }

    /// Pins the property that makes `sort_unstable_by` a safe swap for the
    /// stable sort: the comparator is a *total* order. Distinct jobs never
    /// compare `Equal` (the `(submit, id)` tiebreak resolves every tie,
    /// ids being unique), so no permutation of equal elements exists for
    /// instability to expose.
    #[test]
    fn comparator_is_a_total_order() {
        // A pile of deliberately colliding jobs: equal scores (same submit,
        // size, walltime), equal submits with different ids, demotions.
        let jobs_owned: Vec<Job> = (0..16u64)
            .map(|i| job(i, (i / 4) * 100, 4 + (i % 2) * 4, 600))
            .collect();
        let views: Vec<(&Job, f64)> = jobs_owned.iter().map(|j| (j, 0.0)).collect();
        let now = SimTime::from_secs(2_000);
        let demoted = |j: &Job| j.id.0.is_multiple_of(5);
        for policy in [PolicyKind::Fcfs, PolicyKind::Wfp, PolicyKind::Sjf] {
            let order = order_queue(policy, now, &views, &demoted);
            // Total order ⇒ the permutation is unique ⇒ stable and unstable
            // sorts agree. Verify antisymmetry + totality pairwise against
            // the sorted order: every adjacent pair must be strictly less.
            let mut scratch = OrderScratch::new();
            order_queue_into(policy, now, &views, &demoted, &mut scratch);
            assert_eq!(order, scratch.order(), "wrapper and _into agree");
            for w in order.windows(2) {
                let (a, b) = (views[w[0]].0, views[w[1]].0);
                assert_ne!(
                    (a.submit, a.id),
                    (b.submit, b.id),
                    "tiebreak key must be unique per job"
                );
            }
            // Distinct jobs with identical scores resolve by (submit, id):
            // re-running on a reversed slice yields the same job sequence.
            let rev_views: Vec<(&Job, f64)> = views.iter().rev().copied().collect();
            let rev_order = order_queue(policy, now, &rev_views, &demoted);
            let seq: Vec<_> = order.iter().map(|&i| views[i].0.id).collect();
            let rev_seq: Vec<_> = rev_order.iter().map(|&i| rev_views[i].0.id).collect();
            assert_eq!(
                seq, rev_seq,
                "{policy:?}: order independent of input layout"
            );
        }
    }

    #[test]
    fn scratch_reuse_reproduces_and_does_not_grow() {
        let a = job(1, 0, 512, 3_600);
        let b = job(2, 50, 128, 600);
        let views = [(&a, 0.0), (&b, 0.0)];
        let now = SimTime::from_secs(5_000);
        let mut scratch = OrderScratch::new();
        order_queue_into(PolicyKind::Wfp, now, &views, &|_| false, &mut scratch);
        let first: Vec<usize> = scratch.order().to_vec();
        let caps = (
            scratch.idx.capacity(),
            scratch.scores.capacity(),
            scratch.demoted.capacity(),
            scratch.keys.capacity(),
        );
        for _ in 0..10 {
            order_queue_into(PolicyKind::Wfp, now, &views, &|_| false, &mut scratch);
            assert_eq!(scratch.order(), first.as_slice());
        }
        assert_eq!(
            caps,
            (
                scratch.idx.capacity(),
                scratch.scores.capacity(),
                scratch.demoted.capacity(),
                scratch.keys.capacity()
            ),
            "steady-state reuse must not grow the buffers"
        );
    }

    #[test]
    fn growth_property_flags() {
        assert!(PolicyKind::Fcfs.priority_grows_with_wait());
        assert!(PolicyKind::Wfp.priority_grows_with_wait());
        assert!(!PolicyKind::Sjf.priority_grows_with_wait());
    }
}
