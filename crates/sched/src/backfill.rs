//! EASY backfilling: the head-job reservation computation.
//!
//! When the highest-priority queued job does not fit, EASY backfilling gives
//! it a *reservation* at the earliest instant enough nodes will be free
//! (the *shadow time*, projected from running jobs' walltime estimates), and
//! lets lower-priority jobs start now only if they cannot delay that
//! reservation: either they finish (by their own walltime) before the shadow
//! time, or they fit inside the *spare* nodes not needed by the reservation.
//!
//! Held jobs (coscheduling's hold scheme) have no completion estimate, so
//! they are excluded from the projection; if the head job can never fit
//! while holds persist, the shadow time is unreachable ([`SimTime::MAX`])
//! and fitting jobs may backfill freely — the hold-release timer, not the
//! reservation, is what eventually unblocks the head job.

use cosched_sim::SimTime;

/// A projected future release of nodes: `(estimated end, nodes freed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectedRelease {
    /// When the running job's walltime expires.
    pub end: SimTime,
    /// Nodes it will return.
    pub nodes: u64,
}

/// The head job's reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shadow {
    /// Earliest instant the head job's request is projected to fit.
    /// [`SimTime::MAX`] if it never fits under current holds.
    pub time: SimTime,
    /// Nodes free at the shadow time beyond what the head job needs; a
    /// backfill candidate no larger than this can never delay the head job.
    pub spare: u64,
}

/// Compute the head-job reservation.
///
/// * `head_size` — nodes the head job needs;
/// * `free_now` — nodes currently free;
/// * `releases` — projected completions of running jobs (any order).
///
/// The projection assumes (as EASY does) that no new work arrives and each
/// running job ends exactly at its walltime. Conservative with respect to
/// partition fragmentation: a fit is declared when the *count* suffices,
/// which is how Qsim models it too; the allocator re-checks at start time.
pub fn compute_shadow(head_size: u64, free_now: u64, releases: &[ProjectedRelease]) -> Shadow {
    if head_size <= free_now {
        // Head fits now; callers normally won't ask, but answer coherently:
        // reservation is immediate and everything beyond it is spare.
        return Shadow {
            time: SimTime::ZERO,
            spare: free_now - head_size,
        };
    }
    let mut sorted: Vec<ProjectedRelease> = releases.to_vec();
    sorted.sort_by_key(|r| (r.end, r.nodes));
    let mut free = free_now;
    for r in &sorted {
        free += r.nodes;
        if free >= head_size {
            return Shadow {
                time: r.end,
                spare: free - head_size,
            };
        }
    }
    // Never fits (held nodes block it): no reservation constrains backfill.
    Shadow {
        time: SimTime::MAX,
        spare: u64::MAX,
    }
}

impl Shadow {
    /// Whether a backfill candidate of `size` nodes and `walltime_end`
    /// (now + its requested walltime) can start without delaying the
    /// reservation.
    pub fn admits(&self, size: u64, walltime_end: SimTime) -> bool {
        walltime_end <= self.time || size <= self.spare
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn rel(end: u64, nodes: u64) -> ProjectedRelease {
        ProjectedRelease { end: t(end), nodes }
    }

    #[test]
    fn shadow_at_first_sufficient_release() {
        // free 10, head needs 50; releases of 20@t100, 30@t200, 40@t300.
        let s = compute_shadow(50, 10, &[rel(300, 40), rel(100, 20), rel(200, 30)]);
        assert_eq!(s.time, t(200)); // 10+20+30 = 60 ≥ 50
        assert_eq!(s.spare, 10);
    }

    #[test]
    fn shadow_unreachable_under_holds() {
        let s = compute_shadow(100, 10, &[rel(50, 20)]);
        assert_eq!(s.time, SimTime::MAX);
        assert_eq!(s.spare, u64::MAX);
        // Unconstrained backfill.
        assert!(s.admits(1_000, SimTime::MAX));
    }

    #[test]
    fn head_already_fitting_is_immediate() {
        let s = compute_shadow(5, 10, &[rel(100, 20)]);
        assert_eq!(s.time, SimTime::ZERO);
        assert_eq!(s.spare, 5);
    }

    #[test]
    fn admits_by_finishing_before_shadow() {
        let s = compute_shadow(50, 10, &[rel(100, 60)]);
        assert_eq!(s.time, t(100));
        assert_eq!(s.spare, 20);
        assert!(s.admits(45, t(100))); // ends exactly at shadow: ok
        assert!(!s.admits(45, t(101))); // too long and too big
        assert!(s.admits(20, t(500))); // fits in spare regardless of length
        assert!(!s.admits(21, t(101)));
    }

    #[test]
    fn simultaneous_releases_accumulate() {
        let s = compute_shadow(50, 0, &[rel(100, 25), rel(100, 25)]);
        assert_eq!(s.time, t(100));
        assert_eq!(s.spare, 0);
    }

    #[test]
    fn release_order_does_not_matter() {
        let a = compute_shadow(40, 0, &[rel(10, 10), rel(20, 10), rel(30, 30)]);
        let b = compute_shadow(40, 0, &[rel(30, 30), rel(10, 10), rel(20, 10)]);
        assert_eq!(a, b);
        assert_eq!(a.time, t(30));
        assert_eq!(a.spare, 10);
    }
}
