//! EASY backfilling: the head-job reservation computation.
//!
//! When the highest-priority queued job does not fit, EASY backfilling gives
//! it a *reservation* at the earliest instant enough nodes will be free
//! (the *shadow time*, projected from running jobs' walltime estimates), and
//! lets lower-priority jobs start now only if they cannot delay that
//! reservation: either they finish (by their own walltime) before the shadow
//! time, or they fit inside the *spare* nodes not needed by the reservation.
//!
//! Held jobs (coscheduling's hold scheme) have no completion estimate, so
//! they are excluded from the projection; if the head job can never fit
//! while holds persist, the shadow time is unreachable ([`SimTime::MAX`])
//! and fitting jobs may backfill freely — the hold-release timer, not the
//! reservation, is what eventually unblocks the head job.

use cosched_sim::SimTime;

/// A projected future release of nodes: `(estimated end, nodes freed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectedRelease {
    /// When the running job's walltime expires.
    pub end: SimTime,
    /// Nodes it will return.
    pub nodes: u64,
}

/// The head job's reservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shadow {
    /// Earliest instant the head job's request is projected to fit.
    /// [`SimTime::MAX`] if it never fits under current holds.
    pub time: SimTime,
    /// Nodes free at the shadow time beyond what the head job needs; a
    /// backfill candidate no larger than this can never delay the head job.
    pub spare: u64,
}

/// Compute the head-job reservation.
///
/// * `head_size` — nodes the head job needs;
/// * `free_now` — nodes currently free;
/// * `releases` — projected completions of running jobs (any order).
///
/// The projection assumes (as EASY does) that no new work arrives and each
/// running job ends exactly at its walltime. Conservative with respect to
/// partition fragmentation: a fit is declared when the *count* suffices,
/// which is how Qsim models it too; the allocator re-checks at start time.
///
/// Sorts a copy of `releases` per call; the scheduler's steady-state path
/// keeps its release list incrementally sorted and calls
/// [`compute_shadow_sorted`] instead, which allocates nothing.
#[inline]
pub fn compute_shadow(head_size: u64, free_now: u64, releases: &[ProjectedRelease]) -> Shadow {
    // Fast paths that skip building the sorted copy entirely: the head fits
    // now (immediate reservation), or nothing will ever be released (held
    // nodes block the head indefinitely; backfill is unconstrained).
    if head_size <= free_now {
        return Shadow {
            time: SimTime::ZERO,
            spare: free_now - head_size,
        };
    }
    if releases.is_empty() {
        return Shadow {
            time: SimTime::MAX,
            spare: u64::MAX,
        };
    }
    let mut sorted: Vec<ProjectedRelease> = releases.to_vec();
    sorted.sort_by_key(|r| (r.end, r.nodes));
    compute_shadow_sorted(head_size, free_now, sorted.iter().copied())
}

/// [`compute_shadow`] over releases already sorted by `(end, nodes)`
/// ascending. Allocation-free: the caller supplies the sorted sequence
/// (typically an incrementally maintained list) and this walks it once.
#[inline]
pub fn compute_shadow_sorted(
    head_size: u64,
    free_now: u64,
    releases: impl Iterator<Item = ProjectedRelease>,
) -> Shadow {
    if head_size <= free_now {
        return Shadow {
            time: SimTime::ZERO,
            spare: free_now - head_size,
        };
    }
    let mut free = free_now;
    for r in releases {
        free += r.nodes;
        if free >= head_size {
            return Shadow {
                time: r.end,
                spare: free - head_size,
            };
        }
    }
    // Never fits (held nodes block it): no reservation constrains backfill.
    Shadow {
        time: SimTime::MAX,
        spare: u64::MAX,
    }
}

impl Shadow {
    /// Whether a backfill candidate of `size` nodes and `walltime_end`
    /// (now + its requested walltime) can start without delaying the
    /// reservation.
    pub fn admits(&self, size: u64, walltime_end: SimTime) -> bool {
        walltime_end <= self.time || size <= self.spare
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn rel(end: u64, nodes: u64) -> ProjectedRelease {
        ProjectedRelease { end: t(end), nodes }
    }

    #[test]
    fn shadow_at_first_sufficient_release() {
        // free 10, head needs 50; releases of 20@t100, 30@t200, 40@t300.
        let s = compute_shadow(50, 10, &[rel(300, 40), rel(100, 20), rel(200, 30)]);
        assert_eq!(s.time, t(200)); // 10+20+30 = 60 ≥ 50
        assert_eq!(s.spare, 10);
    }

    #[test]
    fn shadow_unreachable_under_holds() {
        let s = compute_shadow(100, 10, &[rel(50, 20)]);
        assert_eq!(s.time, SimTime::MAX);
        assert_eq!(s.spare, u64::MAX);
        // Unconstrained backfill.
        assert!(s.admits(1_000, SimTime::MAX));
    }

    #[test]
    fn head_already_fitting_is_immediate() {
        let s = compute_shadow(5, 10, &[rel(100, 20)]);
        assert_eq!(s.time, SimTime::ZERO);
        assert_eq!(s.spare, 5);
    }

    #[test]
    fn admits_by_finishing_before_shadow() {
        let s = compute_shadow(50, 10, &[rel(100, 60)]);
        assert_eq!(s.time, t(100));
        assert_eq!(s.spare, 20);
        assert!(s.admits(45, t(100))); // ends exactly at shadow: ok
        assert!(!s.admits(45, t(101))); // too long and too big
        assert!(s.admits(20, t(500))); // fits in spare regardless of length
        assert!(!s.admits(21, t(101)));
    }

    #[test]
    fn simultaneous_releases_accumulate() {
        let s = compute_shadow(50, 0, &[rel(100, 25), rel(100, 25)]);
        assert_eq!(s.time, t(100));
        assert_eq!(s.spare, 0);
    }

    #[test]
    fn sorted_variant_agrees_with_sorting_variant() {
        let releases = [rel(300, 40), rel(100, 20), rel(200, 30), rel(100, 5)];
        let mut sorted = releases.to_vec();
        sorted.sort_by_key(|r| (r.end, r.nodes));
        for head in [1u64, 30, 50, 80, 200] {
            for free in [0u64, 10, 60] {
                assert_eq!(
                    compute_shadow(head, free, &releases),
                    compute_shadow_sorted(head, free, sorted.iter().copied()),
                    "head {head} free {free}"
                );
            }
        }
        // Empty-release fast path: unreachable shadow without allocation.
        let s = compute_shadow(10, 0, &[]);
        assert_eq!(s.time, SimTime::MAX);
        assert_eq!(s.spare, u64::MAX);
        assert_eq!(s, compute_shadow_sorted(10, 0, std::iter::empty()));
    }

    #[test]
    fn release_order_does_not_matter() {
        let a = compute_shadow(40, 0, &[rel(10, 10), rel(20, 10), rel(30, 30)]);
        let b = compute_shadow(40, 0, &[rel(30, 30), rel(10, 10), rel(20, 10)]);
        assert_eq!(a, b);
        assert_eq!(a.time, t(30));
        assert_eq!(a.spare, 10);
    }
}
