//! Node allocators.
//!
//! Two allocation disciplines cover the coupled systems the paper evaluates:
//!
//! * [`FlatAllocator`] — nodes are interchangeable; a request for *n* nodes
//!   succeeds whenever *n* nodes are free. Models Eureka and ordinary
//!   clusters.
//! * [`BuddyAllocator`] — Blue Gene/P partition allocation. Intrepid
//!   allocates jobs onto power-of-two blocks of *midplanes* (512 nodes
//!   each); a 2,048-node job needs an *aligned* free block of 4 midplanes,
//!   not just any 4 free midplanes. The buddy discipline reproduces the
//!   external fragmentation that makes held partitions disproportionately
//!   harmful on the big machine (visible in the Fig. 6 service-unit losses).
//!
//! Allocators hand out opaque [`AllocHandle`]s; the machine stores the
//! handle with the job and returns it on release. Handles are unforgeable
//! within a run (monotonic ids), and releasing a stale handle panics — an
//! allocation bug should stop the simulation, not corrupt utilization
//! accounting.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Opaque token representing one live allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocHandle(u64);

/// Which allocator a machine uses (serializable configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocatorKind {
    /// Interchangeable nodes.
    Flat,
    /// Buddy partition allocation in units of `unit` nodes (512 = a Blue
    /// Gene/P midplane).
    Buddy {
        /// Nodes per allocatable unit (partition granularity).
        unit: u64,
    },
}

impl AllocatorKind {
    /// Instantiate an allocator of this kind over `capacity` nodes.
    pub fn build(self, capacity: u64) -> Box<dyn NodeAllocator> {
        match self {
            AllocatorKind::Flat => Box::new(FlatAllocator::new(capacity)),
            AllocatorKind::Buddy { unit } => Box::new(BuddyAllocator::new(capacity, unit)),
        }
    }
}

/// Abstract node allocator. All sizes are in nodes.
pub trait NodeAllocator: Send {
    /// Total schedulable nodes.
    fn capacity(&self) -> u64;

    /// Nodes not currently allocated. For partitioned allocators this counts
    /// raw free nodes, some of which may be unusable for a given request due
    /// to fragmentation — use [`NodeAllocator::can_fit`] for admission.
    fn free_nodes(&self) -> u64;

    /// Whether a request for `size` nodes could be satisfied right now.
    fn can_fit(&self, size: u64) -> bool;

    /// Allocate `size` nodes. Returns `None` if the request cannot be
    /// satisfied (insufficient or too fragmented).
    fn alloc(&mut self, size: u64) -> Option<AllocHandle>;

    /// Release a prior allocation.
    ///
    /// # Panics
    /// Panics on a handle that is not live (double release or foreign
    /// handle).
    fn release(&mut self, handle: AllocHandle);

    /// Nodes consumed by a hypothetical allocation of `size` (≥ `size` for
    /// partitioned allocators that round up).
    fn charged_nodes(&self, size: u64) -> u64;
}

/// Interchangeable-node allocator.
#[derive(Debug)]
pub struct FlatAllocator {
    capacity: u64,
    free: u64,
    live: HashMap<u64, u64>, // handle id → size
    next_id: u64,
}

impl FlatAllocator {
    /// A flat pool of `capacity` nodes.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        FlatAllocator {
            capacity,
            free: capacity,
            live: HashMap::new(),
            next_id: 0,
        }
    }
}

impl NodeAllocator for FlatAllocator {
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn free_nodes(&self) -> u64 {
        self.free
    }
    fn can_fit(&self, size: u64) -> bool {
        size > 0 && size <= self.free
    }
    fn alloc(&mut self, size: u64) -> Option<AllocHandle> {
        if !self.can_fit(size) {
            return None;
        }
        self.free -= size;
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, size);
        Some(AllocHandle(id))
    }
    fn release(&mut self, handle: AllocHandle) {
        let size = self
            .live
            .remove(&handle.0)
            .unwrap_or_else(|| panic!("release of non-live handle {handle:?}"));
        self.free += size;
        debug_assert!(self.free <= self.capacity);
    }
    fn charged_nodes(&self, size: u64) -> u64 {
        size
    }
}

/// Buddy partition allocator.
///
/// The machine is modelled as `ceil(capacity/unit)` allocatable units
/// arranged as the leaves of a binary buddy tree (padded up to the next
/// power of two; pad units are permanently reserved). A request for `s`
/// nodes is rounded up to `2^k` units and served by splitting the smallest
/// free block of order ≥ k. Freed blocks coalesce with their buddies.
#[derive(Debug)]
pub struct BuddyAllocator {
    capacity: u64,
    unit: u64,
    /// log2 of the padded leaf count.
    max_order: u32,
    /// `free_blocks[k]` = sorted list of free block indices of order `k`
    /// (block index is in units of `2^k` leaves). Sorted so allocation is
    /// deterministic (lowest address first).
    free_blocks: Vec<Vec<u64>>,
    /// handle id → (order, block index)
    live: HashMap<u64, (u32, u64)>,
    next_id: u64,
    free_units: u64,
    /// Bit `k` set ⇔ `free_blocks[k]` is non-empty. Lets [`Self::can_fit`]
    /// and the carve search answer "any free block of order ≥ k?" in O(1)
    /// instead of scanning the per-order lists. Maintained exclusively by
    /// [`Self::list_insert`] / [`Self::list_remove_at`].
    order_mask: u64,
}

impl BuddyAllocator {
    /// Build over `capacity` nodes with `unit` nodes per allocatable unit.
    ///
    /// # Panics
    /// Panics if `unit` is zero or exceeds `capacity`.
    pub fn new(capacity: u64, unit: u64) -> Self {
        assert!(
            unit > 0 && unit <= capacity,
            "bad unit {unit} for capacity {capacity}"
        );
        let total_units = capacity.div_ceil(unit);
        let padded = total_units.next_power_of_two();
        let max_order = padded.trailing_zeros();
        let mut alloc = BuddyAllocator {
            capacity,
            unit,
            max_order,
            free_blocks: vec![Vec::new(); (max_order + 1) as usize],
            live: HashMap::new(),
            next_id: 0,
            free_units: padded,
            order_mask: 0,
        };
        alloc.list_insert(max_order, 0);
        // Permanently reserve the padding units (one unit at a time keeps
        // the real units maximally coalescible).
        for _ in total_units..padded {
            let h = alloc
                .alloc_units_highest(1)
                .expect("padding reservation must succeed");
            // Padding is never released; drop the handle.
            let _ = h;
        }
        alloc.free_units = total_units.min(alloc.free_units);
        alloc
    }

    fn order_for_units(&self, units: u64) -> Option<u32> {
        if units == 0 {
            return None;
        }
        let order = units.next_power_of_two().trailing_zeros();
        (order <= self.max_order).then_some(order)
    }

    fn units_for_size(&self, size: u64) -> u64 {
        size.div_ceil(self.unit)
    }

    /// File `block` in the order-`k` free list at its sorted position,
    /// keeping the non-empty bitmask in step.
    fn list_insert(&mut self, order: u32, block: u64) {
        let list = &mut self.free_blocks[order as usize];
        let pos = list.partition_point(|&b| b < block);
        list.insert(pos, block);
        self.order_mask |= 1 << order;
    }

    /// Take the block at `pos` out of the order-`k` free list, clearing the
    /// bitmask bit if the list drains.
    fn list_remove_at(&mut self, order: u32, pos: usize) -> u64 {
        let list = &mut self.free_blocks[order as usize];
        let block = list.remove(pos);
        if list.is_empty() {
            self.order_mask &= !(1 << order);
        }
        block
    }

    /// Smallest order ≥ `order` with a free block, from the bitmask (O(1)).
    fn first_free_order(&self, order: u32) -> Option<u32> {
        let above = self.order_mask >> order;
        (above != 0).then(|| order + above.trailing_zeros())
    }

    /// Split down from the smallest free block ≥ `order`, taking the
    /// lowest-addressed candidate (deterministic).
    fn carve(&mut self, order: u32) -> Option<u64> {
        let mut k = self.first_free_order(order)?;
        // Lowest-address block of order k (lists kept sorted).
        let mut block = self.list_remove_at(k, 0);
        while k > order {
            k -= 1;
            // Split: keep the low half, free the high half at order k.
            block *= 2;
            self.list_insert(k, block + 1);
        }
        Some(block)
    }

    fn alloc_units(&mut self, units: u64) -> Option<AllocHandle> {
        let order = self.order_for_units(units)?;
        let block = self.carve(order)?;
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (order, block));
        self.free_units -= 1u64 << order;
        Some(AllocHandle(id))
    }

    /// Like `alloc_units` but preferring the highest-addressed block, used
    /// only to pin the padding at the top of the address space.
    fn alloc_units_highest(&mut self, units: u64) -> Option<AllocHandle> {
        let order = self.order_for_units(units)?;
        let mut k = self.first_free_order(order)?;
        let last = self.free_blocks[k as usize].len() - 1;
        let mut block = self.list_remove_at(k, last);
        while k > order {
            k -= 1;
            // Keep the HIGH half, free the low half.
            block = block * 2 + 1;
            self.list_insert(k, block - 1);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.live.insert(id, (order, block));
        self.free_units -= 1u64 << order;
        Some(AllocHandle(id))
    }

    fn coalesce(&mut self, mut order: u32, mut block: u64) {
        loop {
            if order == self.max_order {
                break;
            }
            let buddy = block ^ 1;
            match self.free_blocks[order as usize].binary_search(&buddy) {
                Ok(pos) => {
                    self.list_remove_at(order, pos);
                    block /= 2;
                    order += 1;
                }
                Err(_) => break,
            }
        }
        self.list_insert(order, block);
    }

    /// Largest request (in nodes) that could currently be satisfied.
    pub fn largest_fit(&self) -> u64 {
        if self.order_mask == 0 {
            return 0;
        }
        let k = 63 - self.order_mask.leading_zeros();
        (1u64 << k) * self.unit
    }
}

impl NodeAllocator for BuddyAllocator {
    fn capacity(&self) -> u64 {
        self.capacity
    }
    fn free_nodes(&self) -> u64 {
        self.free_units * self.unit
    }
    fn can_fit(&self, size: u64) -> bool {
        if size == 0 || size > self.capacity {
            return false;
        }
        let units = self.units_for_size(size);
        match self.order_for_units(units) {
            // O(1) fit check: a block of `order` takes 2^order units, so the
            // raw free count rejects most misses immediately; otherwise the
            // non-empty bitmask answers whether an aligned block of order
            // ≥ `order` exists, with no per-order list scan.
            Some(order) => (1u64 << order) <= self.free_units && (self.order_mask >> order) != 0,
            None => false,
        }
    }
    fn alloc(&mut self, size: u64) -> Option<AllocHandle> {
        if size == 0 || size > self.capacity {
            return None;
        }
        let units = self.units_for_size(size);
        self.alloc_units(units)
    }
    fn release(&mut self, handle: AllocHandle) {
        let (order, block) = self
            .live
            .remove(&handle.0)
            .unwrap_or_else(|| panic!("release of non-live handle {handle:?}"));
        self.free_units += 1u64 << order;
        self.coalesce(order, block);
    }
    fn charged_nodes(&self, size: u64) -> u64 {
        let units = self.units_for_size(size);
        units.next_power_of_two() * self.unit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_alloc_release_cycle() {
        let mut a = FlatAllocator::new(100);
        assert_eq!(a.capacity(), 100);
        assert_eq!(a.free_nodes(), 100);
        let h1 = a.alloc(60).unwrap();
        assert_eq!(a.free_nodes(), 40);
        assert!(a.can_fit(40));
        assert!(!a.can_fit(41));
        assert!(a.alloc(41).is_none());
        a.release(h1);
        assert_eq!(a.free_nodes(), 100);
    }

    #[test]
    fn flat_rejects_zero_request() {
        let mut a = FlatAllocator::new(10);
        assert!(!a.can_fit(0));
        assert!(a.alloc(0).is_none());
    }

    #[test]
    #[should_panic(expected = "non-live handle")]
    fn flat_double_release_panics() {
        let mut a = FlatAllocator::new(10);
        let h = a.alloc(5).unwrap();
        a.release(h);
        a.release(h);
    }

    #[test]
    fn flat_charges_exact() {
        let a = FlatAllocator::new(10);
        assert_eq!(a.charged_nodes(7), 7);
    }

    #[test]
    fn buddy_full_machine_allocation() {
        // 8 units of 512 = 4096 nodes, power of two: no padding.
        let mut b = BuddyAllocator::new(4096, 512);
        assert_eq!(b.free_nodes(), 4096);
        let h = b.alloc(4096).unwrap();
        assert_eq!(b.free_nodes(), 0);
        assert!(!b.can_fit(512));
        b.release(h);
        assert_eq!(b.free_nodes(), 4096);
        assert!(b.can_fit(4096)); // coalesced back to one block
    }

    #[test]
    fn buddy_rounds_requests_up() {
        let mut b = BuddyAllocator::new(4096, 512);
        // 600 nodes → 2 units (1024 nodes charged).
        assert_eq!(b.charged_nodes(600), 1024);
        let _h = b.alloc(600).unwrap();
        assert_eq!(b.free_nodes(), 4096 - 1024);
    }

    #[test]
    fn buddy_alignment_fragmentation() {
        // 4 units. Allocate two 1-unit blocks, release the first: free units
        // = 3 but no aligned 2-unit block spanning units 1-2 exists... buddy
        // layout: after carving, unit 0 and unit 1 are allocated; release
        // unit 0 → free = {0}, {2,3} as a 2-block. A 2-unit request must use
        // the {2,3} block, leaving unit 0 unusable for it.
        let mut b = BuddyAllocator::new(2048, 512);
        let h0 = b.alloc(512).unwrap();
        let _h1 = b.alloc(512).unwrap();
        let h2 = b.alloc(1024).unwrap(); // takes units 2-3
        b.release(h0);
        assert_eq!(b.free_nodes(), 512);
        assert!(b.can_fit(512));
        assert!(!b.can_fit(1024), "fragmented: no aligned pair free");
        b.release(h2);
        assert!(b.can_fit(1024));
    }

    #[test]
    fn buddy_coalescing_restores_largest_block() {
        let mut b = BuddyAllocator::new(4096, 512);
        let hs: Vec<_> = (0..8).map(|_| b.alloc(512).unwrap()).collect();
        assert_eq!(b.free_nodes(), 0);
        for h in hs {
            b.release(h);
        }
        assert_eq!(b.largest_fit(), 4096);
    }

    #[test]
    fn buddy_non_power_of_two_capacity_pads() {
        // Intrepid: 40,960 nodes = 80 midplanes; padded tree has 128 leaves,
        // 48 permanently reserved.
        let b = BuddyAllocator::new(40_960, 512);
        assert_eq!(b.capacity(), 40_960);
        assert_eq!(b.free_nodes(), 40_960);
        assert!(b.can_fit(32_768)); // 64 aligned units exist below the pad
        assert!(!b.can_fit(40_960)); // 80 units is not a power-of-two block
    }

    #[test]
    fn buddy_intrepid_job_mix() {
        let mut b = BuddyAllocator::new(40_960, 512);
        let sizes = [512u64, 1024, 2048, 4096, 8192, 16384];
        let mut handles = Vec::new();
        for &s in &sizes {
            handles.push(b.alloc(s).expect("fits"));
        }
        let used: u64 = sizes.iter().sum();
        assert_eq!(b.free_nodes(), 40_960 - used);
        // 32768-job cannot fit alongside 32256 used nodes...
        assert!(!b.can_fit(32_768));
        for h in handles {
            b.release(h);
        }
        assert!(b.can_fit(32_768));
        assert_eq!(b.free_nodes(), 40_960);
    }

    #[test]
    fn buddy_determinism_lowest_address_first() {
        let mut a = BuddyAllocator::new(4096, 512);
        let mut b = BuddyAllocator::new(4096, 512);
        // Same operation sequence → same internal free lists.
        let ha: Vec<_> = (0..4).map(|_| a.alloc(1024).unwrap()).collect();
        let hb: Vec<_> = (0..4).map(|_| b.alloc(1024).unwrap()).collect();
        a.release(ha[1]);
        b.release(hb[1]);
        assert_eq!(a.free_blocks, b.free_blocks);
    }

    #[test]
    fn buddy_rejects_oversize_and_zero() {
        let mut b = BuddyAllocator::new(2048, 512);
        assert!(!b.can_fit(0));
        assert!(b.alloc(0).is_none());
        assert!(!b.can_fit(4096));
        assert!(b.alloc(4096).is_none());
    }

    #[test]
    #[should_panic(expected = "non-live handle")]
    fn buddy_double_release_panics() {
        let mut b = BuddyAllocator::new(2048, 512);
        let h = b.alloc(512).unwrap();
        b.release(h);
        b.release(h);
    }

    #[test]
    fn kind_builds_matching_allocator() {
        let f = AllocatorKind::Flat.build(100);
        assert_eq!(f.capacity(), 100);
        assert_eq!(f.charged_nodes(33), 33);
        let b = AllocatorKind::Buddy { unit: 512 }.build(40_960);
        assert_eq!(b.capacity(), 40_960);
        assert_eq!(b.charged_nodes(33), 512);
    }

    #[test]
    fn buddy_order_mask_tracks_free_lists() {
        // The O(1) fit check is only sound if the bitmask mirrors the
        // per-order lists through every split/coalesce path; drive a mixed
        // workload and cross-check after each operation.
        let check = |b: &BuddyAllocator| {
            for k in 0..=b.max_order {
                assert_eq!(
                    b.order_mask >> k & 1 == 1,
                    !b.free_blocks[k as usize].is_empty(),
                    "mask bit {k} disagrees with list"
                );
            }
            for size in [1u64, 512, 513, 1024, 4096, 8192] {
                let scan = size <= b.capacity
                    && b.order_for_units(b.units_for_size(size)).is_some_and(|o| {
                        (o..=b.max_order).any(|k| !b.free_blocks[k as usize].is_empty())
                    });
                assert_eq!(b.can_fit(size), scan, "can_fit({size}) diverges from scan");
            }
        };
        let mut b = BuddyAllocator::new(8192, 512);
        check(&b);
        let mut handles = Vec::new();
        for i in 0..100u64 {
            if i % 3 != 0 || handles.is_empty() {
                if let Some(h) = b.alloc(512 << (i % 4)) {
                    handles.push(h);
                }
            } else {
                let h = handles.remove((i as usize * 5) % handles.len());
                b.release(h);
            }
            check(&b);
        }
        for h in handles.drain(..) {
            b.release(h);
            check(&b);
        }
        assert_eq!(b.largest_fit(), 8192);
    }

    #[test]
    fn buddy_free_accounting_stays_consistent() {
        let mut b = BuddyAllocator::new(8192, 512);
        let mut handles = Vec::new();
        // Pseudo-random alloc/release pattern with a fixed sequence.
        for i in 0..200u64 {
            if i % 3 != 0 || handles.is_empty() {
                let size = 512 << (i % 4);
                if let Some(h) = b.alloc(size) {
                    handles.push(h);
                }
            } else {
                let h = handles.remove((i as usize * 7) % handles.len());
                b.release(h);
            }
            assert!(b.free_nodes() <= 8192);
        }
        for h in handles.drain(..) {
            b.release(h);
        }
        assert_eq!(b.free_nodes(), 8192);
        assert_eq!(b.largest_fit(), 8192);
    }
}
