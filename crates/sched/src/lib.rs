//! Single-domain resource manager: the scheduling substrate each coupled
//! machine runs independently.
//!
//! In the paper, each machine (Intrepid runs Cobalt on a Blue Gene/P,
//! Eureka a conventional cluster) is managed by its own resource manager
//! with its own policy. This crate reproduces that substrate:
//!
//! * [`alloc`] — node allocators: a [`alloc::FlatAllocator`] for ordinary
//!   clusters and a [`alloc::BuddyAllocator`] modelling Blue Gene/P
//!   partition allocation (power-of-two midplane blocks, with the
//!   fragmentation behaviour that makes holding nodes expensive);
//! * [`policy`] — queue-ordering policies: FCFS, WFP (the utility function
//!   used on Intrepid: `(wait/walltime)³ × size`), and SJF for ablations;
//! * [`backfill`] — EASY backfilling: shadow-time/spare-node computation for
//!   the head-job reservation;
//! * [`machine`] — the resource manager itself: queueing, scheduling
//!   iterations producing *ready* candidates, job lifecycle, and the
//!   hold/yield bookkeeping the coscheduling layer drives.
//!
//! The split from `cosched-core` mirrors the paper's architecture: this
//! crate knows nothing about mates or remote domains; coscheduling is layered
//! on top through the [`machine::Machine`] hold/yield/start API, exactly as
//! Algorithm 1 extends the pre-existing `Run_Job` function.

pub mod alloc;
pub mod backfill;
pub mod machine;
pub mod policy;
pub mod predict;

pub use alloc::{AllocHandle, AllocatorKind, NodeAllocator};
pub use machine::{Candidate, JobStatus, Machine, MachineConfig, SchedStats};
pub use policy::PolicyKind;
pub use predict::{PredictorKind, WalltimePredictor};
