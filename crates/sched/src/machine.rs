//! The single-domain resource manager.
//!
//! A [`Machine`] owns a node allocator, a job queue, and the lifecycle state
//! of every job submitted to it. Scheduling proceeds in *iterations*: the
//! driver calls [`Machine::begin_iteration`] and then repeatedly
//! [`Machine::pick_next`], which returns the next *ready* job — selected by
//! policy order with EASY backfilling — with nodes tentatively allocated.
//! The caller (the coscheduling layer's `Run_Job`, Algorithm 1 in the paper)
//! then commits one of three outcomes:
//!
//! * [`Machine::start`] — the job begins execution now;
//! * [`Machine::hold`] — the job keeps its nodes but does not run (hold
//!   scheme): the nodes are busy to everyone else;
//! * [`Machine::yield_job`] — the job gives its nodes back and is skipped
//!   for the rest of this iteration (yield scheme), letting the scheduler
//!   try other jobs.
//!
//! Held jobs can later be started in place ([`Machine::start_held`], when
//! the mate becomes ready) or forced back to the queue
//! ([`Machine::release_held`], the deadlock breaker), in the latter case
//! demoted to the lowest priority for the scheduling instant, per §IV-E1.
//!
//! Without coscheduling the driver simply starts every candidate, which
//! makes `Machine` a complete stand-alone WFP/FCFS + EASY-backfilling
//! simulator — the no-coscheduling baselines of Figs. 3–10 run exactly
//! that code path.

use crate::alloc::{AllocHandle, AllocatorKind, NodeAllocator};
use crate::backfill::{compute_shadow_sorted, ProjectedRelease, Shadow};
use crate::policy::{order_jobs_into, OrderScratch, PolicyKind, QueuedView};
use crate::predict::{PredictorKind, WalltimePredictor};
use cosched_metrics::JobRecord;
use cosched_obs::trace::{AllocFailReason, TraceEvent};
use cosched_sim::{SimDuration, SimTime};
use cosched_workload::{Job, JobId, MachineId};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Static machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable name.
    pub name: String,
    /// Domain id within the coupled system.
    pub machine: MachineId,
    /// Schedulable nodes.
    pub capacity: u64,
    /// Allocation discipline.
    pub allocator: AllocatorKind,
    /// Queue policy.
    pub policy: PolicyKind,
    /// EASY backfilling on/off.
    pub backfill: bool,
    /// Additive priority per yield (the §IV-E2 boost enhancement; 0 = off).
    pub yield_priority_boost: f64,
    /// Walltime predictor used for backfill planning (the paper's
    /// reference 31, Tsafrir et al.).
    pub predictor: PredictorKind,
}

impl MachineConfig {
    /// Intrepid: 40,960-node Blue Gene/P, buddy partitions of 512-node
    /// midplanes, WFP + backfilling (the paper's §V-A configuration).
    pub fn intrepid(machine: MachineId) -> Self {
        MachineConfig {
            name: "Intrepid".to_string(),
            machine,
            capacity: 40_960,
            allocator: AllocatorKind::Buddy { unit: 512 },
            policy: PolicyKind::Wfp,
            backfill: true,
            yield_priority_boost: 0.0,
            predictor: PredictorKind::UserEstimate,
        }
    }

    /// Eureka: 100-node analysis cluster, flat allocation, WFP +
    /// backfilling.
    pub fn eureka(machine: MachineId) -> Self {
        MachineConfig {
            name: "Eureka".to_string(),
            machine,
            capacity: 100,
            allocator: AllocatorKind::Flat,
            policy: PolicyKind::Wfp,
            backfill: true,
            yield_priority_boost: 0.0,
            predictor: PredictorKind::UserEstimate,
        }
    }

    /// A generic flat cluster, for tests and examples.
    pub fn flat(name: impl Into<String>, machine: MachineId, capacity: u64) -> Self {
        MachineConfig {
            name: name.into(),
            machine,
            capacity,
            allocator: AllocatorKind::Flat,
            policy: PolicyKind::Fcfs,
            backfill: true,
            yield_priority_boost: 0.0,
            predictor: PredictorKind::UserEstimate,
        }
    }
}

/// Lifecycle stage of a job, as visible to the coordination protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Never submitted here (or unknown id).
    Unsubmitted,
    /// Waiting in the queue.
    Queued,
    /// Ready with nodes allocated, waiting for its mate (hold scheme).
    Held,
    /// Executing.
    Running,
    /// Completed.
    Finished,
}

/// A ready job handed to the coscheduling layer: nodes are tentatively
/// allocated; exactly one of `start` / `hold` / `yield_job` must follow.
#[derive(Debug)]
#[must_use = "a candidate's allocation is committed by start/hold/yield_job"]
pub struct Candidate {
    /// The ready job.
    pub job_id: JobId,
    /// Nodes requested.
    pub size: u64,
    /// Nodes actually charged by the allocator (≥ size under partitioning).
    pub charged: u64,
    /// Whether the pick came through the backfill window (a head-job
    /// reservation was active when this job was admitted).
    pub via_backfill: bool,
    /// Whether the job has a mate on the other machine. Lets the coupled
    /// driver scope iteration spans to iterations that touch mated jobs
    /// without re-fetching the job record.
    pub paired: bool,
}

/// Plain counters describing scheduler activity, always collected (no
/// observer needed) and folded into the run's metrics snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Scheduling iterations begun.
    pub iterations: u64,
    /// Candidates handed out by [`Machine::pick_next`].
    pub picks: u64,
    /// Picks admitted through the backfill window.
    pub backfill_hits: u64,
    /// Iterations that engaged draining (head blocked by fragmentation).
    pub drains_engaged: u64,
    /// Allocation attempts rejected for lack of free nodes.
    pub alloc_fail_capacity: u64,
    /// Allocation attempts rejected by partition fragmentation.
    pub alloc_fail_fragmentation: u64,
}

#[derive(Debug)]
struct JobState {
    job: Job,
    first_ready: Option<SimTime>,
    yields: u32,
    holds: u32,
    start: Option<SimTime>,
    alloc: Option<AllocHandle>,
    charged: u64,
    hold_since: Option<SimTime>,
    demoted_at: Option<SimTime>,
    /// Projected release instant (`start + planned runtime`) while the job
    /// is running — the key under which it is filed in the machine's sorted
    /// release list, kept so removal at finish needs no recomputation.
    projected_end: Option<SimTime>,
    status: JobStatus,
}

/// One entry of the incrementally sorted projected-release list: a running
/// job's estimated completion and the nodes it will return. Kept sorted by
/// `(end, nodes)` so shadow computation walks it without cloning or
/// sorting (the former per-call `to_vec` + sort dominated iteration cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ReleaseEntry {
    end: SimTime,
    nodes: u64,
    job: JobId,
}

/// The resource manager for one scheduling domain.
pub struct Machine {
    config: MachineConfig,
    allocator: Box<dyn NodeAllocator>,
    states: HashMap<JobId, JobState>,
    queued: Vec<JobId>,
    held: Vec<JobId>,
    running: Vec<JobId>,
    finished: Vec<JobRecord>,
    skip: HashSet<JobId>,
    pending: Option<JobId>,
    held_ledger: u64,
    predictor: Box<dyn WalltimePredictor>,
    predictions: HashMap<JobId, SimDuration>,
    /// Projected releases of running jobs, kept sorted by `(end, nodes)`:
    /// inserted when a job starts, removed when it finishes, walked in
    /// place by [`Machine::shadow_for`] instead of rebuilding and sorting
    /// a projection vector on every blocked-head pick.
    releases: Vec<ReleaseEntry>,
    /// Scratch for the (rare) shadow query that must re-rank overdue
    /// releases; reused so the steady-state path allocates nothing.
    shadow_scratch: Vec<ProjectedRelease>,
    /// Reused buffers for policy ordering (scores, flags, permutation).
    order_scratch: OrderScratch,
    /// Policy order computed lazily once per iteration (scores are fixed
    /// within an iteration because `now` is fixed); the buffer is reused
    /// across iterations, `iter_order_valid` gates staleness.
    iter_order: Vec<JobId>,
    iter_order_valid: bool,
    /// Walk position in `iter_order`. A cursor is semantically equivalent
    /// to rescanning from the top: a yield returns exactly the nodes it
    /// took for this pick, so a job that was blocked earlier in the walk
    /// can never newly fit later in the same iteration — and it turns the
    /// iteration from O(picks × q log q) into O(q log q).
    iter_cursor: usize,
    /// Head-job reservation discovered during this iteration's walk.
    iter_shadow: Option<Shadow>,
    /// Lifetime activity counters (cheap, unconditional).
    stats: SchedStats,
    /// When true, decision-level trace events are appended to `trace_log`
    /// for the driver to drain and time-stamp. Off by default so untraced
    /// runs allocate nothing.
    tracing: bool,
    trace_log: Vec<TraceEvent>,
}

impl Machine {
    /// Instantiate from a config.
    pub fn new(config: MachineConfig) -> Self {
        let allocator = config.allocator.build(config.capacity);
        let predictor = config.predictor.build();
        Machine {
            config,
            allocator,
            states: HashMap::new(),
            queued: Vec::new(),
            held: Vec::new(),
            running: Vec::new(),
            finished: Vec::new(),
            skip: HashSet::new(),
            pending: None,
            held_ledger: 0,
            predictor,
            predictions: HashMap::new(),
            releases: Vec::new(),
            shadow_scratch: Vec::new(),
            order_scratch: OrderScratch::new(),
            iter_order: Vec::new(),
            iter_order_valid: false,
            iter_cursor: 0,
            iter_shadow: None,
            stats: SchedStats::default(),
            tracing: false,
            trace_log: Vec::new(),
        }
    }

    /// Lifetime scheduler activity counters.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// Enable or disable decision-level trace logging (see
    /// [`Machine::take_trace`]).
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Drain trace events logged since the last call. Events carry no
    /// timestamp; the caller (the driver) stamps them with sim time.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace_log)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Enqueue a job at `now`.
    ///
    /// # Panics
    /// Panics on duplicate submission or a job addressed to another machine.
    pub fn submit(&mut self, job: Job, now: SimTime) {
        assert_eq!(
            job.machine, self.config.machine,
            "job {} submitted to wrong machine",
            job.id
        );
        assert!(
            job.submit <= now,
            "job {} submitted before its submit time",
            job.id
        );
        let id = job.id;
        let predicted = self.predictor.predict(&job);
        self.predictions.insert(id, predicted);
        let prev = self.states.insert(
            id,
            JobState {
                job,
                first_ready: None,
                yields: 0,
                holds: 0,
                start: None,
                alloc: None,
                charged: 0,
                hold_since: None,
                demoted_at: None,
                projected_end: None,
                status: JobStatus::Queued,
            },
        );
        assert!(prev.is_none(), "duplicate submission of job {id}");
        self.queued.push(id);
    }

    /// Begin a scheduling iteration: clears the per-iteration yield skip
    /// set.
    pub fn begin_iteration(&mut self) {
        assert!(
            self.pending.is_none(),
            "iteration started with a candidate outstanding"
        );
        self.stats.iterations += 1;
        self.skip.clear();
        self.iter_order_valid = false;
        self.iter_cursor = 0;
        self.iter_shadow = None;
    }

    /// Select the next ready job under the policy, with EASY backfilling.
    /// Allocates its nodes tentatively; the caller must commit via
    /// [`Machine::start`], [`Machine::hold`], or [`Machine::yield_job`]
    /// before picking again.
    pub fn pick_next(&mut self, now: SimTime) -> Option<Candidate> {
        assert!(self.pending.is_none(), "previous candidate not committed");
        if !self.iter_order_valid {
            let mut scratch = std::mem::take(&mut self.order_scratch);
            let boost = self.config.yield_priority_boost;
            order_jobs_into(
                self.config.policy,
                now,
                self.queued.iter().map(|id| {
                    let st = &self.states[id];
                    (
                        &st.job,
                        st.yields as f64 * boost,
                        st.demoted_at == Some(now),
                    )
                }),
                &mut scratch,
            );
            self.iter_order.clear();
            self.iter_order
                .extend(scratch.order().iter().map(|&idx| self.queued[idx]));
            self.order_scratch = scratch;
            self.iter_order_valid = true;
            self.iter_cursor = 0;
            self.iter_shadow = None;
        }
        while self.iter_cursor < self.iter_order.len() {
            let id = self.iter_order[self.iter_cursor];
            self.iter_cursor += 1;
            if self.skip.contains(&id)
                || self.states.get(&id).map(|st| st.status) != Some(JobStatus::Queued)
            {
                continue;
            }
            let size = self.states[&id].job.size;
            let planned = self.planned_runtime(id);
            let fits = self.allocator.can_fit(size);
            let admitted = match self.iter_shadow {
                None => fits,
                Some(s) => {
                    fits && self.config.backfill
                        && s.admits(self.allocator.charged_nodes(size), now + planned)
                }
            };
            if admitted {
                let via_backfill = self.iter_shadow.is_some();
                let handle = self
                    .allocator
                    .alloc(size)
                    .expect("can_fit implies alloc succeeds");
                let charged = self.allocator.charged_nodes(size);
                let st = self.states.get_mut(&id).expect("queued job has state");
                st.alloc = Some(handle);
                st.charged = charged;
                st.first_ready.get_or_insert(now);
                let pos = self.queued.iter().position(|&q| q == id).expect("queued");
                self.queued.remove(pos);
                self.pending = Some(id);
                self.stats.picks += 1;
                if via_backfill {
                    self.stats.backfill_hits += 1;
                    if self.tracing {
                        self.trace_log
                            .push(TraceEvent::SchedBackfillHit { job: id.0, size });
                    }
                }
                return Some(Candidate {
                    job_id: id,
                    size,
                    charged,
                    via_backfill,
                    paired: self.states[&id].job.mate.is_some(),
                });
            }
            if !fits {
                let reason = if self.allocator.charged_nodes(size) <= self.allocator.free_nodes() {
                    self.stats.alloc_fail_fragmentation += 1;
                    AllocFailReason::Fragmentation
                } else {
                    self.stats.alloc_fail_capacity += 1;
                    AllocFailReason::Capacity
                };
                if self.tracing {
                    self.trace_log.push(TraceEvent::SchedAllocFail {
                        job: id.0,
                        size,
                        reason,
                    });
                }
            }
            if self.iter_shadow.is_none() {
                // Head job that does not fit: reserve and (maybe) backfill.
                if !self.config.backfill {
                    self.iter_cursor = usize::MAX;
                    return None;
                }
                self.iter_shadow = Some(self.shadow_for(id, size, now));
            }
        }
        None
    }

    /// Planning-time runtime estimate for queued job `id`: the predictor's
    /// output, capped below by nothing (a job always runs its true runtime;
    /// planning optimism is acceptable, as in real predictive backfilling).
    fn planned_runtime(&self, id: JobId) -> SimDuration {
        self.predictions
            .get(&id)
            .copied()
            .unwrap_or_else(|| self.states[&id].job.walltime)
    }

    /// The queued job a scheduling iteration at `now` would consider first
    /// — the unique minimum under the policy comparator (demotion, then
    /// descending score, then `(submit, id)`). One O(n) scan; equivalent to
    /// sorting and taking the front, without materialising the order.
    fn policy_head(&self, now: SimTime) -> Option<JobId> {
        let boost = self.config.yield_priority_boost;
        let mut best: Option<(bool, f64, SimTime, JobId)> = None;
        for id in &self.queued {
            let st = &self.states[id];
            let key = (
                st.demoted_at == Some(now),
                self.config.policy.score(QueuedView {
                    job: &st.job,
                    now,
                    boost: st.yields as f64 * boost,
                }),
                st.job.submit,
                st.job.id,
            );
            let better = match &best {
                None => true,
                Some(b) => {
                    key.0
                        .cmp(&b.0)
                        .then_with(|| b.1.partial_cmp(&key.1).expect("scores are finite"))
                        .then_with(|| key.2.cmp(&b.2))
                        .then_with(|| key.3.cmp(&b.3))
                        == std::cmp::Ordering::Less
                }
            };
            if better {
                best = Some(key);
            }
        }
        best.map(|b| b.3)
    }

    fn shadow_for(&mut self, head_id: JobId, head_size: u64, now: SimTime) -> Shadow {
        let charged = self.allocator.charged_nodes(head_size);
        let free = self.allocator.free_nodes();
        // Plan against the predicted runtimes in `self.releases`, never
        // shorter than what a job has already consumed plus a beat.
        let clamp = now + cosched_sim::SECOND;
        if charged <= free {
            // The head job fits by count but not by partition alignment
            // (fragmentation). A count-based reservation is meaningless
            // here — backfill streaming past it would starve large
            // partition jobs forever. Drain instead: admit only jobs that
            // finish before the next completion, the earliest instant
            // coalescing can give the head its aligned block (what BG/P
            // operators call draining for a big partition).
            //
            // Exception: while coscheduling holds block nodes, the machine
            // layout is about to be rearranged by the release sweep anyway;
            // draining behind a hold-induced blockage would idle the
            // machine for no benefit (the head gets its block when the
            // sweep demotes the holders, not when running jobs coalesce).
            if self.held_nodes() > 0 {
                return Shadow {
                    time: SimTime::MAX,
                    spare: u64::MAX,
                };
            }
            self.stats.drains_engaged += 1;
            if self.tracing {
                self.trace_log.push(TraceEvent::SchedDrainEngaged {
                    blocked_job: head_id.0,
                    needed: charged,
                    free_nodes: free,
                });
            }
            let next_end = self
                .releases
                .first()
                .map_or(SimTime::MAX, |r| r.end.max(clamp));
            return Shadow {
                time: next_end,
                spare: 0,
            };
        }
        // Head blocked by node count: walk the incrementally sorted release
        // list. Overdue entries (projected end at or before `clamp` — a job
        // outliving its estimate) clamp to `clamp` and must be re-ranked by
        // nodes so the walk visits releases in exactly the `(end, nodes)`
        // order the sort-per-call path used to produce.
        let split = self.releases.partition_point(|r| r.end <= clamp);
        if split == 0 {
            compute_shadow_sorted(
                charged,
                free,
                self.releases.iter().map(|r| ProjectedRelease {
                    end: r.end,
                    nodes: r.nodes,
                }),
            )
        } else {
            self.shadow_scratch.clear();
            self.shadow_scratch
                .extend(self.releases[..split].iter().map(|r| ProjectedRelease {
                    end: clamp,
                    nodes: r.nodes,
                }));
            self.shadow_scratch.sort_unstable_by_key(|r| r.nodes);
            compute_shadow_sorted(
                charged,
                free,
                self.shadow_scratch
                    .iter()
                    .copied()
                    .chain(self.releases[split..].iter().map(|r| ProjectedRelease {
                        end: r.end,
                        nodes: r.nodes,
                    })),
            )
        }
    }

    /// File a release projection for a job that just started: estimated end
    /// (start + planned runtime) and the nodes it will return, inserted at
    /// its `(end, nodes)` rank so the list stays sorted.
    fn insert_release(&mut self, job: JobId, end: SimTime, nodes: u64) {
        let pos = self
            .releases
            .partition_point(|r| (r.end, r.nodes) <= (end, nodes));
        self.releases.insert(pos, ReleaseEntry { end, nodes, job });
    }

    /// Drop the release projection of a finishing job. Binary-searches to
    /// the entry's `(end, nodes)` rank, then scans the (few) equal-key
    /// entries for the matching id.
    fn remove_release(&mut self, job: JobId, end: SimTime, nodes: u64) {
        let from = self
            .releases
            .partition_point(|r| (r.end, r.nodes) < (end, nodes));
        let off = self.releases[from..]
            .iter()
            .position(|r| r.job == job)
            .expect("running job has a release entry");
        self.releases.remove(from + off);
    }

    fn commit_check(&mut self, cand: &Candidate) {
        assert_eq!(
            self.pending,
            Some(cand.job_id),
            "commit of a stale candidate {:?}",
            cand.job_id
        );
        self.pending = None;
    }

    /// Start a ready candidate now. Returns the completion instant for the
    /// caller to schedule the end event.
    pub fn start(&mut self, cand: Candidate, now: SimTime) -> SimTime {
        self.commit_check(&cand);
        let projected = now + self.planned_runtime(cand.job_id);
        let st = self
            .states
            .get_mut(&cand.job_id)
            .expect("candidate has state");
        st.start = Some(now);
        st.status = JobStatus::Running;
        st.projected_end = Some(projected);
        let nodes = st.charged;
        let end = now + st.job.runtime;
        self.running.push(cand.job_id);
        self.insert_release(cand.job_id, projected, nodes);
        end
    }

    /// Put a ready candidate into hold: it keeps its allocation, blocking
    /// those nodes, until [`Machine::start_held`] or
    /// [`Machine::release_held`].
    pub fn hold(&mut self, cand: Candidate, now: SimTime) {
        self.commit_check(&cand);
        let st = self
            .states
            .get_mut(&cand.job_id)
            .expect("candidate has state");
        st.holds += 1;
        st.hold_since = Some(now);
        st.status = JobStatus::Held;
        self.held.push(cand.job_id);
    }

    /// Yield a ready candidate: release its nodes, requeue it, and skip it
    /// for the remainder of this iteration so other jobs get a chance.
    pub fn yield_job(&mut self, cand: Candidate, _now: SimTime) {
        self.commit_check(&cand);
        let st = self
            .states
            .get_mut(&cand.job_id)
            .expect("candidate has state");
        let handle = st.alloc.take().expect("candidate holds an allocation");
        st.charged = 0;
        st.yields += 1;
        st.status = JobStatus::Queued;
        self.allocator.release(handle);
        self.skip.insert(cand.job_id);
        self.queued.push(cand.job_id);
    }

    /// Start a held job in place (its mate became ready). Returns the
    /// completion instant, or `None` if the job is not held.
    pub fn start_held(&mut self, id: JobId, now: SimTime) -> Option<SimTime> {
        let pos = self.held.iter().position(|&h| h == id)?;
        self.held.remove(pos);
        let projected = now + self.planned_runtime(id);
        let st = self.states.get_mut(&id).expect("held job has state");
        let since = st.hold_since.take().expect("held job has hold_since");
        self.held_ledger += st.charged * (now - since).as_secs();
        st.start = Some(now);
        st.status = JobStatus::Running;
        st.projected_end = Some(projected);
        let nodes = st.charged;
        let end = now + st.job.runtime;
        self.running.push(id);
        self.insert_release(id, projected, nodes);
        Some(end)
    }

    /// Force a held job to release its nodes and requeue (the §IV-E1
    /// deadlock breaker). The job is demoted to lowest priority for
    /// scheduling decisions taken at this instant. Returns `false` if the
    /// job is not held.
    pub fn release_held(&mut self, id: JobId, now: SimTime) -> bool {
        let Some(pos) = self.held.iter().position(|&h| h == id) else {
            return false;
        };
        self.held.remove(pos);
        let st = self.states.get_mut(&id).expect("held job has state");
        let since = st.hold_since.take().expect("held job has hold_since");
        self.held_ledger += st.charged * (now - since).as_secs();
        let handle = st.alloc.take().expect("held job holds an allocation");
        st.charged = 0;
        st.demoted_at = Some(now);
        st.status = JobStatus::Queued;
        self.allocator.release(handle);
        self.queued.push(id);
        true
    }

    /// Attempt to start a *queued* job right now — the remote
    /// `try_start_mate` RPC (Algorithm 1, line 12), which "invokes an
    /// additional scheduling iteration" on this machine for the mate's
    /// benefit. The mate gets no queue-jumping privilege: it starts only if
    /// a regular scheduling iteration could have started it, i.e. it fits
    /// and it does not delay the highest-priority queued job (the same
    /// admission rule backfilling applies). Returns the completion instant
    /// on success.
    pub fn try_start_direct(&mut self, id: JobId, now: SimTime) -> Option<SimTime> {
        let pos = self.queued.iter().position(|&q| q == id)?;
        let handle = self.admit_direct(id, now)?;
        let charged = self.allocator.charged_nodes(self.states[&id].job.size);
        let projected = now + self.planned_runtime(id);
        let st = self.states.get_mut(&id).expect("queued job has state");
        st.alloc = Some(handle);
        st.charged = charged;
        st.first_ready.get_or_insert(now);
        st.start = Some(now);
        st.status = JobStatus::Running;
        st.projected_end = Some(projected);
        let end = now + st.job.runtime;
        self.queued.remove(pos);
        self.running.push(id);
        self.insert_release(id, projected, charged);
        Some(end)
    }

    /// Non-committing version of [`Machine::try_start_direct`]: would the
    /// job be admitted right now? Used by N-way rendezvous to check every
    /// group member before starting any. (Takes `&mut self` because
    /// partition admission needs a trial allocation, which is immediately
    /// released.)
    pub fn can_start_direct(&mut self, id: JobId, now: SimTime) -> bool {
        match self.admit_direct(id, now) {
            Some(handle) => {
                self.allocator.release(handle);
                true
            }
            None => false,
        }
    }

    /// Shared admission logic: allocate nodes for a direct (out-of-
    /// iteration) start of queued job `id` if a regular scheduling
    /// iteration could have started it. Returns the allocation on success;
    /// the caller either commits it or releases it.
    fn admit_direct(&mut self, id: JobId, now: SimTime) -> Option<AllocHandle> {
        if self.pending.is_some() {
            // Mid-iteration re-entrance cannot happen in the simulator (the
            // driver serialises RPCs between pick/commit), but guard anyway.
            return None;
        }
        self.queued.iter().position(|&q| q == id)?;
        let size = self.states[&id].job.size;
        if !self.allocator.can_fit(size) {
            return None;
        }
        // Identify the policy head among queued jobs.
        let head = self.policy_head(now).expect("queue holds at least `id`");

        let handle = if head == id {
            self.allocator.alloc(size).expect("can_fit implies alloc")
        } else {
            if !self.config.backfill {
                return None;
            }
            let head_size = self.states[&head].job.size;
            if self.allocator.can_fit(head_size) {
                // The head could start right now; the mate may slip in only
                // if the head remains startable afterwards.
                let handle = self.allocator.alloc(size).expect("can_fit implies alloc");
                if self.allocator.can_fit(head_size) {
                    handle
                } else {
                    self.allocator.release(handle);
                    return None;
                }
            } else {
                // Head is blocked: honour its reservation like any
                // backfill candidate.
                let shadow = self.shadow_for(head, head_size, now);
                let planned = self.planned_runtime(id);
                if !shadow.admits(self.allocator.charged_nodes(size), now + planned) {
                    return None;
                }
                self.allocator.alloc(size).expect("can_fit implies alloc")
            }
        };
        Some(handle)
    }

    /// Complete a running job: release nodes and append its
    /// [`JobRecord`].
    ///
    /// # Panics
    /// Panics if the job is not running (an end event for a job in any other
    /// state is a driver bug).
    pub fn finish(&mut self, id: JobId, now: SimTime) {
        let pos = self
            .running
            .iter()
            .position(|&r| r == id)
            .unwrap_or_else(|| panic!("finish of non-running job {id}"));
        self.running.remove(pos);
        let st = self.states.get_mut(&id).expect("running job has state");
        let handle = st.alloc.take().expect("running job holds an allocation");
        self.allocator.release(handle);
        st.status = JobStatus::Finished;
        let start = st.start.expect("running implies started");
        let projected = st
            .projected_end
            .take()
            .expect("running job has a projected end");
        let nodes = st.charged;
        self.predictor.observe(&st.job, st.job.runtime);
        self.predictions.remove(&id);
        self.remove_release(id, projected, nodes);
        let st = self.states.get_mut(&id).expect("running job has state");
        self.finished.push(JobRecord {
            id,
            machine: self.config.machine,
            size: st.job.size,
            submit: st.job.submit,
            start,
            end: now,
            runtime: st.job.runtime,
            walltime: st.job.walltime,
            paired: st.job.is_paired(),
            first_ready: st.first_ready,
            yields: st.yields,
            holds: st.holds,
        });
    }

    /// Lifecycle stage of `id` as seen by the protocol.
    pub fn status(&self, id: JobId) -> JobStatus {
        self.states
            .get(&id)
            .map_or(JobStatus::Unsubmitted, |st| st.status)
    }

    /// The job object, if submitted here.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.states.get(&id).map(|st| &st.job)
    }

    /// Number of yields job `id` has performed so far.
    pub fn yields_of(&self, id: JobId) -> u32 {
        self.states.get(&id).map_or(0, |st| st.yields)
    }

    /// When job `id` started, if it has (running or finished).
    pub fn start_of(&self, id: JobId) -> Option<SimTime> {
        self.states.get(&id).and_then(|st| st.start)
    }

    /// When job `id` entered its current hold episode, if it is held.
    /// Drivers use this to discard stale hold-release timers: a timer armed
    /// for an earlier episode no longer matches.
    pub fn hold_since(&self, id: JobId) -> Option<SimTime> {
        self.states.get(&id).and_then(|st| st.hold_since)
    }

    /// Currently held job ids, in hold order.
    pub fn held_jobs(&self) -> &[JobId] {
        &self.held
    }

    /// Currently queued job ids (unsorted; policy order is computed per
    /// iteration).
    pub fn queued_jobs(&self) -> &[JobId] {
        &self.queued
    }

    /// Currently running job ids.
    pub fn running_jobs(&self) -> &[JobId] {
        &self.running
    }

    /// Completed-job records so far.
    pub fn records(&self) -> &[JobRecord] {
        &self.finished
    }

    /// Drain the completed-job records.
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.finished)
    }

    /// Nodes currently blocked by held jobs (allocator-charged).
    pub fn held_nodes(&self) -> u64 {
        self.held.iter().map(|id| self.states[id].charged).sum()
    }

    /// Fraction of capacity currently blocked by holds, in `[0, 1]`.
    pub fn held_fraction(&self) -> f64 {
        self.held_nodes() as f64 / self.config.capacity as f64
    }

    /// Total node-seconds lost to holding up to `now`, including holds still
    /// in progress — the paper's *service-unit loss* numerator.
    pub fn held_node_seconds(&self, now: SimTime) -> u64 {
        let ongoing: u64 = self
            .held
            .iter()
            .map(|id| {
                let st = &self.states[id];
                st.charged * (now - st.hold_since.expect("held job has hold_since")).as_secs()
            })
            .sum();
        self.held_ledger + ongoing
    }

    /// Free nodes right now.
    pub fn free_nodes(&self) -> u64 {
        self.allocator.free_nodes()
    }

    /// Whether the allocator could satisfy a request of `size` nodes right
    /// now (accounts for partition fragmentation, unlike a raw count).
    pub fn can_fit(&self, size: u64) -> bool {
        self.allocator.can_fit(size)
    }

    /// Whether all submitted jobs have finished.
    pub fn drained(&self) -> bool {
        self.queued.is_empty() && self.held.is_empty() && self.running.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn job(id: u64, submit: u64, size: u64, runtime: u64, walltime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(0),
            t(submit),
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(walltime),
        )
    }

    fn machine(capacity: u64) -> Machine {
        Machine::new(MachineConfig::flat("test", MachineId(0), capacity))
    }

    #[test]
    fn fcfs_starts_in_order() {
        let mut m = machine(100);
        m.submit(job(1, 0, 60, 100, 100), t(0));
        m.submit(job(2, 1, 60, 100, 100), t(1));
        m.begin_iteration();
        let c = m.pick_next(t(1)).unwrap();
        assert_eq!(c.job_id, JobId(1));
        let end = m.start(c, t(1));
        assert_eq!(end, t(101));
        // Job 2 does not fit (60+60 > 100) and cannot backfill (no spare).
        assert!(m.pick_next(t(1)).is_none());
        m.finish(JobId(1), t(101));
        m.begin_iteration();
        let c = m.pick_next(t(101)).unwrap();
        assert_eq!(c.job_id, JobId(2));
        let _ = m.start(c, t(101));
    }

    #[test]
    fn backfill_small_short_job_around_reservation() {
        let mut m = machine(100);
        // Running job occupies 80 nodes until t=1000 (walltime).
        m.submit(job(1, 0, 80, 1_000, 1_000), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        let _ = m.start(c, t(0));
        // Head job needs 50 → shadow at t=1000 with spare 100-50=... free at
        // shadow = 20+80=100, spare = 50.
        m.submit(job(2, 10, 50, 500, 500), t(10));
        // Backfill candidate: 20 nodes, walltime 400 → ends before shadow
        // AND fits spare.
        m.submit(job(3, 20, 20, 400, 400), t(20));
        m.begin_iteration();
        let c = m.pick_next(t(20)).unwrap();
        assert_eq!(c.job_id, JobId(3), "short small job backfills");
        let _ = m.start(c, t(20));
        assert!(m.pick_next(t(20)).is_none());
    }

    #[test]
    fn backfill_rejects_job_that_would_delay_head() {
        let mut m = machine(100);
        m.submit(job(1, 0, 80, 1_000, 1_000), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        let _ = m.start(c, t(0));
        m.submit(job(2, 10, 90, 500, 500), t(10)); // head: shadow t=1000, spare 10
        m.submit(job(3, 20, 20, 5_000, 5_000), t(20)); // too long, too big for spare
        m.begin_iteration();
        assert!(m.pick_next(t(20)).is_none());
    }

    #[test]
    fn no_backfill_config_blocks_queue_behind_head() {
        let mut cfg = MachineConfig::flat("strict", MachineId(0), 100);
        cfg.backfill = false;
        let mut m = Machine::new(cfg);
        m.submit(job(1, 0, 80, 1_000, 1_000), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        let _ = m.start(c, t(0));
        m.submit(job(2, 10, 90, 500, 500), t(10));
        m.submit(job(3, 20, 1, 10, 10), t(20));
        m.begin_iteration();
        assert!(
            m.pick_next(t(20)).is_none(),
            "strict FCFS: nothing passes the head"
        );
    }

    #[test]
    fn hold_blocks_nodes_and_start_held_runs() {
        let mut m = machine(100);
        m.submit(job(1, 0, 60, 100, 100), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        m.hold(c, t(0));
        assert_eq!(m.status(JobId(1)), JobStatus::Held);
        assert_eq!(m.held_nodes(), 60);
        assert_eq!(m.free_nodes(), 40);
        // A 50-node job cannot start while the hold blocks 60.
        m.submit(job(2, 1, 50, 100, 100), t(1));
        m.begin_iteration();
        assert!(m.pick_next(t(1)).is_none());
        // Mate ready at t=30: start in place; ledger = 60 × 30.
        assert_eq!(m.held_node_seconds(t(30)), 1_800);
        let end = m.start_held(JobId(1), t(30)).unwrap();
        assert_eq!(end, t(130));
        assert_eq!(
            m.held_node_seconds(t(999)),
            1_800,
            "ledger frozen after start"
        );
        m.finish(JobId(1), t(130));
        let rec = &m.records()[0];
        assert_eq!(rec.holds, 1);
        assert_eq!(rec.start, t(30));
        assert_eq!(rec.first_ready, Some(t(0)));
        assert_eq!(
            rec.sync_time(),
            SimDuration::ZERO,
            "unpaired job has no sync time"
        );
    }

    #[test]
    fn yield_releases_nodes_and_skips_for_iteration() {
        let mut m = machine(100);
        m.submit(job(1, 0, 60, 100, 100), t(0));
        m.submit(job(2, 1, 60, 100, 100), t(1));
        m.begin_iteration();
        let c = m.pick_next(t(1)).unwrap();
        assert_eq!(c.job_id, JobId(1));
        m.yield_job(c, t(1));
        assert_eq!(m.free_nodes(), 100);
        assert_eq!(m.status(JobId(1)), JobStatus::Queued);
        // Same iteration: job 2 gets the chance instead.
        let c = m.pick_next(t(1)).unwrap();
        assert_eq!(c.job_id, JobId(2));
        let _ = m.start(c, t(1));
        assert!(m.pick_next(t(1)).is_none());
        // Next iteration: job 1 is eligible again (but doesn't fit).
        m.begin_iteration();
        assert!(m.pick_next(t(1)).is_none());
        assert_eq!(m.yields_of(JobId(1)), 1);
    }

    #[test]
    fn release_held_demotes_for_that_instant() {
        let mut m = machine(100);
        m.submit(job(1, 0, 60, 100, 100), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        m.hold(c, t(0));
        m.submit(job(2, 1, 60, 100, 100), t(1));
        assert!(m.release_held(JobId(1), t(50)));
        assert_eq!(m.free_nodes(), 100);
        // At the release instant, job 1 (earlier submit, FCFS would favour
        // it) sorts last: job 2 wins.
        m.begin_iteration();
        let c = m.pick_next(t(50)).unwrap();
        assert_eq!(c.job_id, JobId(2));
        let _ = m.start(c, t(50));
        // Ledger accrued 60 nodes × 50 s.
        assert_eq!(m.held_node_seconds(t(50)), 3_000);
        // After time advances the demotion expires.
        m.finish(JobId(2), t(101));
        m.begin_iteration();
        let c = m.pick_next(t(101)).unwrap();
        assert_eq!(c.job_id, JobId(1));
        let _ = m.start(c, t(101));
    }

    #[test]
    fn release_held_of_non_held_is_false() {
        let mut m = machine(10);
        assert!(!m.release_held(JobId(9), t(0)));
        m.submit(job(1, 0, 5, 10, 10), t(0));
        assert!(!m.release_held(JobId(1), t(0)));
    }

    #[test]
    fn try_start_direct_requires_fit() {
        let mut m = machine(100);
        m.submit(job(1, 0, 80, 100, 100), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        let _ = m.start(c, t(0));
        m.submit(job(2, 1, 50, 100, 100), t(1));
        assert!(m.try_start_direct(JobId(2), t(1)).is_none(), "no room");
        m.finish(JobId(1), t(100));
        let end = m.try_start_direct(JobId(2), t(100)).unwrap();
        assert_eq!(end, t(200));
        assert_eq!(m.status(JobId(2)), JobStatus::Running);
        assert!(
            m.try_start_direct(JobId(2), t(100)).is_none(),
            "not queued anymore"
        );
    }

    #[test]
    fn status_lifecycle() {
        let mut m = machine(10);
        assert_eq!(m.status(JobId(1)), JobStatus::Unsubmitted);
        m.submit(job(1, 0, 5, 10, 10), t(0));
        assert_eq!(m.status(JobId(1)), JobStatus::Queued);
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        let _ = m.start(c, t(0));
        assert_eq!(m.status(JobId(1)), JobStatus::Running);
        m.finish(JobId(1), t(10));
        assert_eq!(m.status(JobId(1)), JobStatus::Finished);
        assert!(m.drained());
    }

    #[test]
    fn record_captures_wait_and_ready() {
        let mut m = machine(10);
        m.submit(job(1, 0, 10, 50, 50), t(0));
        m.submit(job(2, 5, 10, 50, 50), t(5));
        m.begin_iteration();
        let c = m.pick_next(t(5)).unwrap();
        let _ = m.start(c, t(5));
        m.finish(JobId(1), t(55));
        m.begin_iteration();
        let c = m.pick_next(t(55)).unwrap();
        let _ = m.start(c, t(55));
        m.finish(JobId(2), t(105));
        let r2 = m.records().iter().find(|r| r.id == JobId(2)).unwrap();
        assert_eq!(r2.wait(), SimDuration::from_secs(50));
        assert_eq!(r2.first_ready, Some(t(55)));
    }

    #[test]
    #[should_panic(expected = "previous candidate not committed")]
    fn double_pick_without_commit_panics() {
        let mut m = machine(100);
        m.submit(job(1, 0, 10, 10, 10), t(0));
        m.submit(job(2, 0, 10, 10, 10), t(0));
        m.begin_iteration();
        let _c1 = m.pick_next(t(0));
        let _c2 = m.pick_next(t(0));
    }

    #[test]
    #[should_panic(expected = "wrong machine")]
    fn submit_to_wrong_machine_panics() {
        let mut m = machine(10);
        let mut j = job(1, 0, 5, 10, 10);
        j.machine = MachineId(3);
        m.submit(j, t(0));
    }

    #[test]
    #[should_panic(expected = "duplicate submission")]
    fn duplicate_submit_panics() {
        let mut m = machine(10);
        m.submit(job(1, 0, 5, 10, 10), t(0));
        m.submit(job(1, 0, 5, 10, 10), t(0));
    }

    #[test]
    #[should_panic(expected = "non-running job")]
    fn finish_queued_job_panics() {
        let mut m = machine(10);
        m.submit(job(1, 0, 5, 10, 10), t(0));
        m.finish(JobId(1), t(5));
    }

    #[test]
    fn buddy_machine_respects_partitioning() {
        let mut m = Machine::new(MachineConfig {
            name: "bgp".into(),
            machine: MachineId(0),
            capacity: 2_048,
            allocator: AllocatorKind::Buddy { unit: 512 },
            policy: PolicyKind::Fcfs,
            backfill: true,
            yield_priority_boost: 0.0,
            predictor: PredictorKind::UserEstimate,
        });
        // 600-node job charges a 1024-node partition.
        m.submit(job(1, 0, 600, 100, 100), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        assert_eq!(c.charged, 1_024);
        let _ = m.start(c, t(0));
        assert_eq!(m.free_nodes(), 1_024);
        // Another 600-node job still fits (second 1024 partition)…
        m.submit(job(2, 1, 600, 100, 100), t(1));
        m.begin_iteration();
        let c = m.pick_next(t(1)).unwrap();
        let _ = m.start(c, t(1));
        // …but now a 512-node job cannot, despite size < nominal free.
        assert_eq!(m.free_nodes(), 0);
        m.submit(job(3, 2, 512, 100, 100), t(2));
        m.begin_iteration();
        assert!(m.pick_next(t(2)).is_none());
    }

    #[test]
    fn wfp_machine_prefers_big_patient_jobs() {
        let mut cfg = MachineConfig::flat("wfp", MachineId(0), 1_000);
        cfg.policy = PolicyKind::Wfp;
        let mut m = Machine::new(cfg);
        m.submit(job(1, 0, 10, 100, 1_000), t(0));
        m.submit(job(2, 0, 900, 100, 1_000), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(500)).unwrap();
        assert_eq!(c.job_id, JobId(2), "same relative wait → size wins");
        let _ = m.start(c, t(500));
    }

    #[test]
    fn held_fraction_tracks_capacity_share() {
        let mut m = machine(100);
        m.submit(job(1, 0, 25, 100, 100), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        m.hold(c, t(0));
        assert!((m.held_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn yield_boost_reorders_queue() {
        let mut cfg = MachineConfig::flat("boost", MachineId(0), 100);
        cfg.yield_priority_boost = 1e9;
        let mut m = Machine::new(cfg);
        m.submit(job(1, 0, 60, 100, 100), t(0));
        m.submit(job(2, 0, 60, 100, 100), t(0));
        // Yield job 1 once.
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        assert_eq!(c.job_id, JobId(1));
        m.yield_job(c, t(0));
        let c = m.pick_next(t(0)).unwrap();
        assert_eq!(c.job_id, JobId(2));
        m.yield_job(c, t(0));
        // Fresh iteration at a later instant: job 1's boost (1 yield) beats
        // job 2's equal-submit FCFS tie... both yielded once; tie again by
        // id. Yield job1 once more to test the boost requires an extra run.
        m.begin_iteration();
        let c = m.pick_next(t(1)).unwrap();
        assert_eq!(c.job_id, JobId(1));
        m.yield_job(c, t(1));
        // job 1 now has 2 yields vs job 2's 1: next iteration job 1 first
        // even if job 2 would tie otherwise.
        m.begin_iteration();
        let c = m.pick_next(t(2)).unwrap();
        assert_eq!(c.job_id, JobId(1));
        let _ = m.start(c, t(2));
    }

    #[test]
    fn stats_and_trace_capture_backfill_and_drain() {
        let mut m = machine(100);
        m.set_tracing(true);
        // Running job blocks 80 nodes until t=1000.
        m.submit(job(1, 0, 80, 1_000, 1_000), t(0));
        m.begin_iteration();
        let c = m.pick_next(t(0)).unwrap();
        assert!(!c.via_backfill, "head-of-queue start on an empty machine");
        let _ = m.start(c, t(0));
        // Head blocked on capacity (90 > 20 free); 20-node short job backfills.
        m.submit(job(2, 10, 90, 500, 500), t(10));
        m.submit(job(3, 20, 20, 400, 400), t(20));
        m.begin_iteration();
        let c = m.pick_next(t(20)).unwrap();
        assert_eq!(c.job_id, JobId(3));
        assert!(c.via_backfill);
        let _ = m.start(c, t(20));
        assert!(m.pick_next(t(20)).is_none());

        let stats = m.stats();
        assert_eq!(stats.iterations, 2);
        assert_eq!(stats.picks, 2);
        assert_eq!(stats.backfill_hits, 1);
        assert!(
            stats.alloc_fail_capacity >= 1,
            "head miss counted as capacity fail"
        );
        assert_eq!(stats.drains_engaged, 0, "flat allocator never fragments");

        let trace = m.take_trace();
        assert!(
            trace
                .iter()
                .any(|e| matches!(e, TraceEvent::SchedBackfillHit { job: 3, size: 20 })),
            "backfill hit traced: {trace:?}"
        );
        assert!(trace.iter().any(|e| e.kind() == "sched-alloc-fail"));
        assert!(m.take_trace().is_empty(), "take_trace drains the log");
    }
}
