//! Walltime prediction for backfilling.
//!
//! EASY backfilling plans against *requested* walltimes, which users
//! overestimate by 2–3×; the paper's scheduling substrate cites Tsafrir et
//! al. ("Backfilling using system-generated predictions rather than user
//! runtime estimates", TPDS 2007) — the paper's reference 31 — as the state of the
//! art. This module provides pluggable predictors so the reproduction can
//! ablate prediction quality against coscheduling behaviour:
//!
//! * [`PredictorKind::UserEstimate`] — take the request at face value (the
//!   paper's configuration);
//! * [`PredictorKind::Fraction`] — scale the request by a constant factor
//!   (a crude but surprisingly strong corrector);
//! * [`PredictorKind::RecentRatio`] — track the recent actual/requested
//!   ratio and apply it to new requests (the Tsafrir scheme's core idea),
//!   with a safety floor so predictions never go below a minute.
//!
//! Predictions only steer *planning* (shadow times and backfill admission);
//! a job always runs to its true runtime, and under-prediction merely makes
//! a reservation optimistic — the same failure mode real systems accept.

use cosched_sim::SimDuration;
use cosched_workload::Job;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Selectable predictor configurations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Use the user's requested walltime unchanged.
    UserEstimate,
    /// Multiply the request by `factor` (clamped to ≥ 60 s).
    Fraction {
        /// Scale factor in `(0, 1]`.
        factor: f64,
    },
    /// Rolling mean of the last `window` jobs' actual/requested ratios,
    /// applied to each new request.
    RecentRatio {
        /// How many completed jobs inform the ratio.
        window: usize,
    },
}

impl PredictorKind {
    /// Instantiate the predictor.
    pub fn build(self) -> Box<dyn WalltimePredictor> {
        match self {
            PredictorKind::UserEstimate => Box::new(UserEstimate),
            PredictorKind::Fraction { factor } => {
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "fraction {factor} outside (0,1]"
                );
                Box::new(Fraction { factor })
            }
            PredictorKind::RecentRatio { window } => {
                assert!(window > 0, "window must be positive");
                Box::new(RecentRatio {
                    window,
                    ratios: VecDeque::new(),
                    sum: 0.0,
                })
            }
        }
    }
}

/// Predicts how long a job will actually run, learning from completions.
pub trait WalltimePredictor: Send {
    /// Predicted runtime for a job about to be planned.
    fn predict(&mut self, job: &Job) -> SimDuration;

    /// Feed back a completed job's actual runtime.
    fn observe(&mut self, job: &Job, actual: SimDuration);
}

/// Identity predictor: trust the request.
#[derive(Debug, Clone, Copy)]
struct UserEstimate;

impl WalltimePredictor for UserEstimate {
    fn predict(&mut self, job: &Job) -> SimDuration {
        job.walltime
    }
    fn observe(&mut self, _job: &Job, _actual: SimDuration) {}
}

/// Constant-factor corrector.
#[derive(Debug, Clone, Copy)]
struct Fraction {
    factor: f64,
}

const PREDICTION_FLOOR: SimDuration = SimDuration(60);

impl WalltimePredictor for Fraction {
    fn predict(&mut self, job: &Job) -> SimDuration {
        job.walltime.scale(self.factor).max(PREDICTION_FLOOR)
    }
    fn observe(&mut self, _job: &Job, _actual: SimDuration) {}
}

/// Rolling actual/requested ratio (the system-generated prediction).
#[derive(Debug, Clone)]
struct RecentRatio {
    window: usize,
    ratios: VecDeque<f64>,
    sum: f64,
}

impl WalltimePredictor for RecentRatio {
    fn predict(&mut self, job: &Job) -> SimDuration {
        if self.ratios.is_empty() {
            return job.walltime; // cold start: trust the request
        }
        let mean = self.sum / self.ratios.len() as f64;
        job.walltime
            .scale(mean.clamp(0.01, 1.0))
            .max(PREDICTION_FLOOR)
    }

    fn observe(&mut self, job: &Job, actual: SimDuration) {
        let requested = job.walltime.as_secs().max(1) as f64;
        let ratio = (actual.as_secs() as f64 / requested).min(1.0);
        self.ratios.push_back(ratio);
        self.sum += ratio;
        while self.ratios.len() > self.window {
            self.sum -= self.ratios.pop_front().expect("non-empty");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_sim::SimTime;
    use cosched_workload::{JobId, MachineId};

    fn job(runtime: u64, walltime: u64) -> Job {
        Job::new(
            JobId(1),
            MachineId(0),
            SimTime::ZERO,
            4,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(walltime),
        )
    }

    #[test]
    fn user_estimate_is_identity() {
        let mut p = PredictorKind::UserEstimate.build();
        let j = job(600, 3_600);
        assert_eq!(p.predict(&j), SimDuration::from_secs(3_600));
        p.observe(&j, SimDuration::from_secs(600));
        assert_eq!(p.predict(&j), SimDuration::from_secs(3_600));
    }

    #[test]
    fn fraction_scales_with_floor() {
        let mut p = PredictorKind::Fraction { factor: 0.5 }.build();
        assert_eq!(p.predict(&job(600, 3_600)), SimDuration::from_secs(1_800));
        // Floor: 0.5 × 100 s would be 50 s → clamped to 60 s.
        assert_eq!(p.predict(&job(100, 100)), SimDuration::from_secs(60));
    }

    #[test]
    #[should_panic(expected = "outside (0,1]")]
    fn fraction_rejects_bad_factor() {
        PredictorKind::Fraction { factor: 1.5 }.build();
    }

    #[test]
    fn recent_ratio_learns_overestimation() {
        let mut p = PredictorKind::RecentRatio { window: 10 }.build();
        let j = job(900, 3_600);
        // Cold start: request.
        assert_eq!(p.predict(&j), SimDuration::from_secs(3_600));
        // Jobs run at 25 % of request.
        for _ in 0..10 {
            p.observe(&job(900, 3_600), SimDuration::from_secs(900));
        }
        let predicted = p.predict(&j);
        assert_eq!(predicted, SimDuration::from_secs(900));
    }

    #[test]
    fn recent_ratio_window_forgets_old_behaviour() {
        let mut p = PredictorKind::RecentRatio { window: 4 }.build();
        for _ in 0..4 {
            p.observe(&job(360, 3_600), SimDuration::from_secs(360)); // ratio 0.1
        }
        assert_eq!(p.predict(&job(1, 3_600)), SimDuration::from_secs(360));
        // New regime: jobs use their full request.
        for _ in 0..4 {
            p.observe(&job(3_600, 3_600), SimDuration::from_secs(3_600)); // ratio 1.0
        }
        assert_eq!(p.predict(&job(1, 3_600)), SimDuration::from_secs(3_600));
    }

    #[test]
    fn recent_ratio_caps_at_request() {
        let mut p = PredictorKind::RecentRatio { window: 2 }.build();
        // Actual longer than request can't happen (Job clamps walltime up),
        // but observe defensively caps ratios at 1.
        p.observe(&job(3_600, 3_600), SimDuration::from_secs(7_200));
        assert_eq!(p.predict(&job(1, 1_000)), SimDuration::from_secs(1_000));
    }
}
