//! Cohort breakdowns: paired vs. regular jobs, and job-size classes.
//!
//! The paper's problem statement (§IV-A) requires the mechanism to "limit
//! the side effect on system utilization and the response times of both
//! paired and nonpaired jobs", and its discussion of Fig. 3/4 attributes
//! the hold scheme's cost to *regular* jobs ("other regular jobs will
//! suffer more waiting time"). Aggregates over all jobs can hide exactly
//! that effect, so this module splits the records.

use crate::record::JobRecord;
use crate::stats;
use cosched_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Wait/slowdown aggregates for one cohort of jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortStats {
    /// Jobs in the cohort.
    pub count: usize,
    /// Average waiting time, minutes.
    pub avg_wait_mins: f64,
    /// Median waiting time, minutes.
    pub median_wait_mins: f64,
    /// Average slowdown.
    pub avg_slowdown: f64,
    /// Average bounded slowdown (tau = 10 min).
    pub avg_bounded_slowdown: f64,
}

impl CohortStats {
    /// Aggregate a cohort (all-zero for an empty one).
    pub fn of<'a>(records: impl Iterator<Item = &'a JobRecord>) -> Self {
        let records: Vec<&JobRecord> = records.collect();
        let waits: Vec<f64> = records.iter().map(|r| r.wait().as_mins_f64()).collect();
        let slow: Vec<f64> = records.iter().map(|r| r.slowdown()).collect();
        let bounded: Vec<f64> = records
            .iter()
            .map(|r| r.bounded_slowdown(SimDuration::from_mins(10)))
            .collect();
        CohortStats {
            count: records.len(),
            avg_wait_mins: stats::mean(&waits),
            median_wait_mins: stats::median(&waits),
            avg_slowdown: stats::mean(&slow),
            avg_bounded_slowdown: stats::mean(&bounded),
        }
    }
}

/// A size class: jobs whose request is in `[lo, hi)` as a fraction of
/// machine capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SizeClass {
    /// Class label.
    pub label: String,
    /// Lower bound, inclusive, fraction of capacity.
    pub lo: f64,
    /// Upper bound, exclusive, fraction of capacity (use > 1.0 for the top).
    pub hi: f64,
    /// Aggregates for the class.
    pub stats: CohortStats,
}

/// Paired/regular + size-class breakdown of a machine's records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CohortBreakdown {
    /// Jobs carrying a mate reference.
    pub paired: CohortStats,
    /// Everyone else — the "regular jobs" of the paper's discussion.
    pub regular: CohortStats,
    /// Size classes: narrow (<1 % of capacity), medium (1–25 %), wide
    /// (≥25 %).
    pub size_classes: Vec<SizeClass>,
}

impl CohortBreakdown {
    /// Split `records` for a machine of `capacity` nodes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn of(records: &[JobRecord], capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        let classes = [
            ("narrow", 0.0, 0.01),
            ("medium", 0.01, 0.25),
            ("wide", 0.25, f64::INFINITY),
        ];
        CohortBreakdown {
            paired: CohortStats::of(records.iter().filter(|r| r.paired)),
            regular: CohortStats::of(records.iter().filter(|r| !r.paired)),
            size_classes: classes
                .iter()
                .map(|&(label, lo, hi)| SizeClass {
                    label: label.to_string(),
                    lo,
                    hi,
                    stats: CohortStats::of(records.iter().filter(|r| {
                        let frac = r.size as f64 / capacity as f64;
                        frac >= lo && frac < hi
                    })),
                })
                .collect(),
        }
    }

    /// Regular-minus-paired average wait, minutes: positive when regular
    /// jobs pay for coscheduling (the effect the paper attributes to hold).
    pub fn regular_penalty_mins(&self) -> f64 {
        if self.regular.count == 0 || self.paired.count == 0 {
            0.0
        } else {
            self.regular.avg_wait_mins - self.paired.avg_wait_mins
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_sim::SimTime;
    use cosched_workload::{JobId, MachineId};

    fn rec(id: u64, size: u64, submit: u64, start: u64, paired: bool) -> JobRecord {
        JobRecord {
            id: JobId(id),
            machine: MachineId(0),
            size,
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + 600),
            runtime: SimDuration::from_secs(600),
            walltime: SimDuration::from_secs(1_200),
            paired,
            first_ready: None,
            yields: 0,
            holds: 0,
        }
    }

    #[test]
    fn splits_paired_and_regular() {
        let records = vec![
            rec(1, 10, 0, 600, true),    // wait 10 min
            rec(2, 10, 0, 1_800, false), // wait 30 min
            rec(3, 10, 0, 3_000, false), // wait 50 min
        ];
        let b = CohortBreakdown::of(&records, 100);
        assert_eq!(b.paired.count, 1);
        assert_eq!(b.regular.count, 2);
        assert!((b.paired.avg_wait_mins - 10.0).abs() < 1e-9);
        assert!((b.regular.avg_wait_mins - 40.0).abs() < 1e-9);
        assert!((b.regular_penalty_mins() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn size_classes_partition_records() {
        let records = vec![
            rec(1, 1, 0, 0, false),   // 0.1 % → narrow (on capacity 1000)
            rec(2, 50, 0, 0, false),  // 5 % → medium
            rec(3, 400, 0, 0, false), // 40 % → wide
            rec(4, 999, 0, 0, false), // wide
        ];
        let b = CohortBreakdown::of(&records, 1_000);
        let counts: Vec<usize> = b.size_classes.iter().map(|c| c.stats.count).collect();
        assert_eq!(counts, vec![1, 1, 2]);
        assert_eq!(counts.iter().sum::<usize>(), records.len());
    }

    #[test]
    fn empty_cohorts_are_zero_and_penalty_is_guarded() {
        let b = CohortBreakdown::of(&[], 10);
        assert_eq!(b.paired.count, 0);
        assert_eq!(b.regular.count, 0);
        assert_eq!(b.regular_penalty_mins(), 0.0);
        // Only regular jobs: penalty undefined → 0.
        let b = CohortBreakdown::of(&[rec(1, 1, 0, 600, false)], 10);
        assert_eq!(b.regular_penalty_mins(), 0.0);
    }

    #[test]
    fn cohort_stats_of_empty_iterator() {
        let s = CohortStats::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.avg_wait_mins, 0.0);
    }
}
