//! Per-job outcome ledger.

use cosched_sim::{SimDuration, SimTime};
use cosched_workload::{JobId, MachineId};
use serde::{Deserialize, Serialize};

/// Everything the evaluation needs to know about one completed job.
///
/// Filled in by the simulation driver as the job moves through its
/// lifecycle. `first_ready` is the instant the local scheduler first
/// *selected* the job and had nodes for it — under coscheduling a paired job
/// may then hold or yield instead of starting, and the gap between
/// `first_ready` and `start` is the paper's *synchronization time*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Trace-local job id.
    pub id: JobId,
    /// Machine the job ran on.
    pub machine: MachineId,
    /// Nodes used.
    pub size: u64,
    /// Submission instant.
    pub submit: SimTime,
    /// Start instant.
    pub start: SimTime,
    /// Completion instant.
    pub end: SimTime,
    /// Actual runtime.
    pub runtime: SimDuration,
    /// Requested walltime.
    pub walltime: SimDuration,
    /// Whether the job was half of an associated pair.
    pub paired: bool,
    /// First instant the scheduler selected this job with nodes available.
    /// `None` for jobs started directly without a ready notification (not
    /// produced by our driver, but tolerated for externally built records).
    pub first_ready: Option<SimTime>,
    /// How many times the job yielded before starting.
    pub yields: u32,
    /// How many times the job entered hold before starting.
    pub holds: u32,
}

impl JobRecord {
    /// Waiting time: submission to start (§V-C).
    pub fn wait(&self) -> SimDuration {
        self.start - self.submit
    }

    /// Slowdown: `(wait + runtime) / runtime` (§V-C). Runtime is guaranteed
    /// nonzero by the job model.
    pub fn slowdown(&self) -> f64 {
        let run = self.runtime.as_secs() as f64;
        (self.wait().as_secs() as f64 + run) / run
    }

    /// Bounded slowdown with threshold `tau`: very short jobs otherwise
    /// dominate the average (Feitelson's standard correction,
    /// `max(1, (wait+run)/max(run, tau))`).
    pub fn bounded_slowdown(&self, tau: SimDuration) -> f64 {
        let run = self.runtime.as_secs() as f64;
        let denom = run.max(tau.as_secs() as f64).max(1.0);
        ((self.wait().as_secs() as f64 + run) / denom).max(1.0)
    }

    /// Paired-job synchronization time: extra waiting attributable to
    /// coscheduling, i.e. `start − first_ready`. Zero for unpaired jobs and
    /// for jobs that started the moment they became ready.
    pub fn sync_time(&self) -> SimDuration {
        match (self.paired, self.first_ready) {
            (true, Some(ready)) => self.start - ready,
            _ => SimDuration::ZERO,
        }
    }

    /// Response time: wait plus runtime.
    pub fn response(&self) -> SimDuration {
        self.wait() + self.runtime
    }

    /// Node-seconds of useful work.
    pub fn node_seconds(&self) -> u64 {
        self.size * self.runtime.as_secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(
        submit: u64,
        ready: Option<u64>,
        start: u64,
        runtime: u64,
        paired: bool,
    ) -> JobRecord {
        JobRecord {
            id: JobId(1),
            machine: MachineId(0),
            size: 8,
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + runtime),
            runtime: SimDuration::from_secs(runtime),
            walltime: SimDuration::from_secs(runtime * 2),
            paired,
            first_ready: ready.map(SimTime::from_secs),
            yields: 0,
            holds: 0,
        }
    }

    #[test]
    fn wait_and_response() {
        let r = record(100, None, 400, 600, false);
        assert_eq!(r.wait(), SimDuration::from_secs(300));
        assert_eq!(r.response(), SimDuration::from_secs(900));
    }

    #[test]
    fn slowdown_formula() {
        let r = record(0, None, 600, 600, false);
        assert!((r.slowdown() - 2.0).abs() < 1e-12);
        let immediate = record(50, None, 50, 600, false);
        assert!((immediate.slowdown() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bounded_slowdown_caps_short_jobs() {
        // 10-second job waiting 1000 s: raw slowdown 101, bounded (tau=600)
        // only (1000+10)/600.
        let r = record(0, None, 1_000, 10, false);
        assert!(r.slowdown() > 100.0);
        let b = r.bounded_slowdown(SimDuration::from_secs(600));
        assert!((b - 1010.0 / 600.0).abs() < 1e-12);
        // Never below 1.
        let quick = record(0, None, 0, 10, false);
        assert_eq!(quick.bounded_slowdown(SimDuration::from_secs(600)), 1.0);
    }

    #[test]
    fn sync_time_only_for_paired() {
        let r = record(0, Some(200), 500, 100, true);
        assert_eq!(r.sync_time(), SimDuration::from_secs(300));
        let unpaired = record(0, Some(200), 500, 100, false);
        assert_eq!(unpaired.sync_time(), SimDuration::ZERO);
        let no_ready = record(0, None, 500, 100, true);
        assert_eq!(no_ready.sync_time(), SimDuration::ZERO);
    }

    #[test]
    fn sync_time_zero_when_started_at_ready() {
        let r = record(0, Some(500), 500, 100, true);
        assert_eq!(r.sync_time(), SimDuration::ZERO);
    }

    #[test]
    fn node_seconds() {
        assert_eq!(record(0, None, 0, 600, false).node_seconds(), 8 * 600);
    }
}
