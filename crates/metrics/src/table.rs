//! Plain-text table rendering for the figure harnesses.
//!
//! The harness binaries print each figure's data as an aligned ASCII table —
//! the rows/series the paper plots — so results diff cleanly and paste into
//! EXPERIMENTS.md.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (labels).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An ASCII table under construction.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given title and column headers. The first
    /// column is left-aligned, the rest right-aligned (label + numbers), the
    /// common case for figure data; override with [`Table::aligns`].
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        let aligns = std::iter::once(Align::Left)
            .chain(std::iter::repeat(Align::Right))
            .take(headers.len())
            .collect();
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns,
            rows: Vec::new(),
        }
    }

    /// Override column alignments.
    ///
    /// # Panics
    /// Panics if the count does not match the header count.
    pub fn aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Append a row of display-able cells.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also available via `Display`).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::from("|");
            for i in 0..ncols {
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, " {:<w$} |", cells[i], w = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(line, " {:>w$} |", cells[i], w = widths[i]);
                    }
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &widths, &self.aligns));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{}|", "-".repeat(w + 2));
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths, &self.aligns));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a float with `digits` decimal places — the standard cell shape.
pub fn num(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a fraction as a percentage with one decimal, e.g. `4.6%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("demo", &["combo", "wait"]);
        t.row(&["HH".to_string(), "61.0".to_string()]);
        t.row(&["YY-long".to_string(), "7.5".to_string()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.contains("| combo   | wait |"));
        assert!(s.contains("| HH      | 61.0 |"));
        assert!(s.contains("| YY-long |  7.5 |"));
        let sep_line = s.lines().nth(2).unwrap();
        assert!(sep_line.chars().all(|c| c == '|' || c == '-'));
    }

    #[test]
    fn rows_track_len() {
        let mut t = Table::new("", &["a"]);
        assert!(t.is_empty());
        t.row(&["x".to_string()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only-one".to_string()]);
    }

    #[test]
    fn row_display_stringifies() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_display(&[&42, &"x"]);
        assert!(t.render().contains("| 42 |"));
    }

    #[test]
    fn custom_alignment() {
        let mut t = Table::new("", &["a", "b"]).aligns(&[Align::Right, Align::Left]);
        t.row(&["1".to_string(), "x".to_string()]);
        let line = t.render().lines().nth(2).unwrap().to_string();
        assert!(line.contains("| 1 | x |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(num(2.54321, 2), "2.54");
        assert_eq!(pct(0.046), "4.6%");
    }
}
