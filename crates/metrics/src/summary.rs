//! Aggregation of job records into the quantities the paper's figures plot.

use crate::record::JobRecord;
use crate::stats;
use cosched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One machine's aggregate results for one simulation run.
///
/// All time-based averages are reported in minutes, matching the units of
/// the paper's figures (Figs. 3, 5, 7, 9 plot minutes; Figs. 4, 8 plot
/// dimensionless slowdowns; Figs. 6, 10 plot node-hours and a lost
/// utilization rate).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSummary {
    /// Machine label (e.g. "Intrepid").
    pub machine: String,
    /// Jobs that completed.
    pub jobs: usize,
    /// Of which paired.
    pub paired_jobs: usize,
    /// Average waiting time, minutes (Fig. 3 / Fig. 7 metric).
    pub avg_wait_mins: f64,
    /// Median waiting time, minutes.
    pub median_wait_mins: f64,
    /// Average slowdown (Fig. 4 / Fig. 8 metric).
    pub avg_slowdown: f64,
    /// Average bounded slowdown (tau = 10 min), robustness companion.
    pub avg_bounded_slowdown: f64,
    /// Average synchronization time among paired jobs, minutes
    /// (Fig. 5 / Fig. 9 metric).
    pub avg_sync_mins: f64,
    /// Maximum synchronization time among paired jobs, minutes.
    pub max_sync_mins: f64,
    /// Node-hours lost to holding (Fig. 6 / Fig. 10 metric).
    pub lost_node_hours: f64,
    /// The same loss as a fraction of total capacity over the horizon.
    pub lost_util_rate: f64,
    /// Delivered utilization: useful node-seconds over capacity × horizon.
    pub utilization: f64,
    /// Total yields performed by paired jobs.
    pub total_yields: u64,
    /// Total hold episodes entered by paired jobs.
    pub total_holds: u64,
}

impl MachineSummary {
    /// Aggregate `records` for a machine of `capacity` nodes observed over
    /// `[0, horizon]`. `held_node_seconds` is the integral of held (idle but
    /// reserved) nodes over time, supplied by the simulation driver's hold
    /// ledger.
    ///
    /// # Panics
    /// Panics if `capacity` is zero or `horizon` is zero while records are
    /// non-empty (that would make rate metrics meaningless).
    pub fn from_records(
        machine: impl Into<String>,
        records: &[JobRecord],
        capacity: u64,
        horizon: SimTime,
        held_node_seconds: u64,
    ) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        if !records.is_empty() {
            assert!(horizon > SimTime::ZERO, "horizon must be positive");
        }
        let waits: Vec<f64> = records.iter().map(|r| r.wait().as_mins_f64()).collect();
        let slowdowns: Vec<f64> = records.iter().map(|r| r.slowdown()).collect();
        let bounded: Vec<f64> = records
            .iter()
            .map(|r| r.bounded_slowdown(SimDuration::from_mins(10)))
            .collect();
        let syncs: Vec<f64> = records
            .iter()
            .filter(|r| r.paired)
            .map(|r| r.sync_time().as_mins_f64())
            .collect();

        let horizon_secs = horizon.as_secs().max(1);
        let useful: u64 = records.iter().map(|r| r.node_seconds()).sum();
        let denom = capacity as f64 * horizon_secs as f64;

        MachineSummary {
            machine: machine.into(),
            jobs: records.len(),
            paired_jobs: records.iter().filter(|r| r.paired).count(),
            avg_wait_mins: stats::mean(&waits),
            median_wait_mins: stats::median(&waits),
            avg_slowdown: stats::mean(&slowdowns),
            avg_bounded_slowdown: stats::mean(&bounded),
            avg_sync_mins: stats::mean(&syncs),
            max_sync_mins: syncs.iter().copied().fold(0.0, f64::max),
            lost_node_hours: held_node_seconds as f64 / 3_600.0,
            lost_util_rate: held_node_seconds as f64 / denom,
            utilization: useful as f64 / denom,
            total_yields: records.iter().map(|r| r.yields as u64).sum(),
            total_holds: records.iter().map(|r| r.holds as u64).sum(),
        }
    }

    /// Element-wise mean over per-seed summaries (the paper runs each case
    /// 10 times). Counts are averaged and rounded.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn average(summaries: &[MachineSummary]) -> MachineSummary {
        assert!(!summaries.is_empty(), "cannot average zero summaries");
        let n = summaries.len() as f64;
        let f = |get: fn(&MachineSummary) -> f64| summaries.iter().map(get).sum::<f64>() / n;
        MachineSummary {
            machine: summaries[0].machine.clone(),
            jobs: (summaries.iter().map(|s| s.jobs).sum::<usize>() as f64 / n).round() as usize,
            paired_jobs: (summaries.iter().map(|s| s.paired_jobs).sum::<usize>() as f64 / n).round()
                as usize,
            avg_wait_mins: f(|s| s.avg_wait_mins),
            median_wait_mins: f(|s| s.median_wait_mins),
            avg_slowdown: f(|s| s.avg_slowdown),
            avg_bounded_slowdown: f(|s| s.avg_bounded_slowdown),
            avg_sync_mins: f(|s| s.avg_sync_mins),
            max_sync_mins: f(|s| s.max_sync_mins),
            lost_node_hours: f(|s| s.lost_node_hours),
            lost_util_rate: f(|s| s.lost_util_rate),
            utilization: f(|s| s.utilization),
            total_yields: (summaries.iter().map(|s| s.total_yields).sum::<u64>() as f64 / n).round()
                as u64,
            total_holds: (summaries.iter().map(|s| s.total_holds).sum::<u64>() as f64 / n).round()
                as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::{JobId, MachineId};

    fn rec(
        id: u64,
        submit: u64,
        ready: u64,
        start: u64,
        runtime: u64,
        size: u64,
        paired: bool,
    ) -> JobRecord {
        JobRecord {
            id: JobId(id),
            machine: MachineId(0),
            size,
            submit: SimTime::from_secs(submit),
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(start + runtime),
            runtime: SimDuration::from_secs(runtime),
            walltime: SimDuration::from_secs(runtime),
            paired,
            first_ready: Some(SimTime::from_secs(ready)),
            yields: if paired { 2 } else { 0 },
            holds: if paired { 1 } else { 0 },
        }
    }

    #[test]
    fn aggregates_basic_metrics() {
        let records = vec![
            rec(1, 0, 0, 600, 600, 10, false),   // wait 10 min, slowdown 2
            rec(2, 0, 0, 1800, 600, 10, false),  // wait 30 min, slowdown 4
            rec(3, 0, 600, 1200, 600, 10, true), // wait 20 min, sync 10 min
        ];
        let horizon = SimTime::from_secs(3_600);
        let s = MachineSummary::from_records("Test", &records, 100, horizon, 7_200);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.paired_jobs, 1);
        assert!((s.avg_wait_mins - 20.0).abs() < 1e-9);
        assert!((s.median_wait_mins - 20.0).abs() < 1e-9);
        assert!((s.avg_slowdown - 3.0).abs() < 1e-9); // (2+4+3)/3
        assert!((s.avg_sync_mins - 10.0).abs() < 1e-9);
        assert!((s.max_sync_mins - 10.0).abs() < 1e-9);
        assert!((s.lost_node_hours - 2.0).abs() < 1e-9);
        // 7200 node-s over 100 × 3600 node-s = 2 %.
        assert!((s.lost_util_rate - 0.02).abs() < 1e-12);
        // Useful work 3 × 10 × 600 = 18_000 node-s over 360_000 = 5 %.
        assert!((s.utilization - 0.05).abs() < 1e-12);
        assert_eq!(s.total_yields, 2);
        assert_eq!(s.total_holds, 1);
    }

    #[test]
    fn empty_records_are_all_zero() {
        let s = MachineSummary::from_records("Empty", &[], 100, SimTime::ZERO, 0);
        assert_eq!(s.jobs, 0);
        assert_eq!(s.avg_wait_mins, 0.0);
        assert_eq!(s.avg_sync_mins, 0.0);
        assert_eq!(s.utilization, 0.0);
    }

    #[test]
    fn sync_stats_ignore_unpaired() {
        let records = vec![
            rec(1, 0, 0, 6_000, 600, 1, false), // big wait, but unpaired
            rec(2, 0, 100, 160, 600, 1, true),  // sync 1 min
        ];
        let s = MachineSummary::from_records("T", &records, 10, SimTime::from_secs(10_000), 0);
        assert!((s.avg_sync_mins - 1.0).abs() < 1e-9);
    }

    #[test]
    fn average_over_seeds() {
        let horizon = SimTime::from_secs(1_000);
        let a = MachineSummary::from_records(
            "M",
            &[rec(1, 0, 0, 600, 600, 10, false)],
            100,
            horizon,
            0,
        );
        let b = MachineSummary::from_records(
            "M",
            &[rec(1, 0, 0, 1_800, 600, 10, false)],
            100,
            horizon,
            3_600,
        );
        let avg = MachineSummary::average(&[a, b]);
        assert!((avg.avg_wait_mins - 20.0).abs() < 1e-9);
        assert!((avg.lost_node_hours - 0.5).abs() < 1e-9);
        assert_eq!(avg.jobs, 1);
    }

    #[test]
    #[should_panic(expected = "cannot average zero")]
    fn average_rejects_empty() {
        MachineSummary::average(&[]);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        MachineSummary::from_records("X", &[], 0, SimTime::from_secs(1), 0);
    }
}
