//! Evaluation metrics for the coscheduling study.
//!
//! Implements the four metrics of the paper's §V-C plus supporting
//! statistics:
//!
//! * **Waiting time** — submission to start.
//! * **Slowdown** — response time (wait + run) over run time; a bounded
//!   variant is provided for robustness reporting.
//! * **Paired-job synchronization time** — the extra time a job waits for
//!   its mate beyond the moment it first became ready to run.
//! * **Service-unit loss** — node-hours wasted by the *hold* scheme, also
//!   expressed as a lost system-utilization rate.
//!
//! [`record::JobRecord`] is the per-job ledger filled in by the simulation
//! driver; [`summary::MachineSummary`] aggregates a machine's records into
//! the numbers the paper's figures plot; [`table`] renders aligned ASCII
//! tables for the figure harnesses.

pub mod cohort;
pub mod record;
pub mod stats;
pub mod summary;
pub mod table;

pub use cohort::{CohortBreakdown, CohortStats};
pub use record::JobRecord;
pub use summary::MachineSummary;
