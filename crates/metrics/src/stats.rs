//! Small descriptive-statistics helpers shared by summaries and harnesses.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than 2 points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// `q`-th quantile (0 ≤ q ≤ 1) with linear interpolation between order
/// statistics; 0 for an empty slice.
///
/// # Panics
/// Panics if `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median, via [`quantile`].
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Mean ± sample-stddev confidence half-width at ~95 % (1.96 standard
/// errors). Returns `(mean, half_width)`; half-width 0 with < 2 points.
pub fn mean_ci95(xs: &[f64]) -> (f64, f64) {
    let m = mean(xs);
    if xs.len() < 2 {
        return (m, 0.0);
    }
    let se = stddev(xs) / (xs.len() as f64).sqrt();
    (m, 1.96 * se)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[4.0]), 4.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn stddev_known_value() {
        // Sample stddev of {2,4,4,4,5,5,7,9} with n−1 is sqrt(32/7).
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((stddev(&xs) - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
        assert_eq!(stddev(&[]), 0.0);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), 10.0);
        assert_eq!(quantile(&xs, 1.0), 40.0);
        assert!((quantile(&xs, 1.0 / 3.0) - 20.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.5) - 25.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn quantile_rejects_bad_q() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn ci95_shrinks_with_n() {
        let few: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let many: Vec<f64> = (0..400).map(|i| (i % 4) as f64).collect();
        let (_, hw_few) = mean_ci95(&few);
        let (_, hw_many) = mean_ci95(&many);
        assert!(hw_many < hw_few);
        assert_eq!(mean_ci95(&[1.0]).1, 0.0);
    }
}
