//! Committed-capacity profile: a step function of reserved nodes over time.
//!
//! Reservations are half-open intervals `[start, end)`. The profile answers
//! the scheduling query at the heart of reservation systems: *the earliest
//! instant at or after `t` where `n` nodes are free for `d` seconds*.
//! Candidate start instants only need to be examined at reservation
//! boundaries (usage is constant between them), which keeps the query
//! `O(k²)` in the number of future boundaries — bookings per machine are
//! thousands, not millions, over an evaluation window.

use cosched_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Step-function ledger of committed node usage.
#[derive(Debug, Clone)]
pub struct CapacityProfile {
    capacity: u64,
    /// Usage deltas at instants: +nodes at start, −nodes at end.
    deltas: BTreeMap<SimTime, i64>,
}

impl CapacityProfile {
    /// Empty profile over `capacity` nodes.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        CapacityProfile {
            capacity,
            deltas: BTreeMap::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Committed usage at instant `t`.
    pub fn usage_at(&self, t: SimTime) -> u64 {
        let mut usage = 0i64;
        for (_, d) in self.deltas.range(..=t) {
            usage += d;
        }
        debug_assert!(usage >= 0);
        usage as u64
    }

    /// Peak committed usage over `[start, start + duration)`.
    pub fn max_usage_in(&self, start: SimTime, duration: SimDuration) -> u64 {
        let end = start + duration;
        let mut usage = 0i64;
        for (_, d) in self.deltas.range(..=start) {
            usage += d;
        }
        let mut peak = usage;
        for (&t, d) in self.deltas.range(..end) {
            if t <= start {
                continue;
            }
            usage += d;
            peak = peak.max(usage);
        }
        debug_assert!(peak >= 0);
        peak as u64
    }

    /// Whether `nodes` fit throughout `[start, start + duration)`.
    pub fn fits(&self, start: SimTime, duration: SimDuration, nodes: u64) -> bool {
        nodes <= self.capacity && self.max_usage_in(start, duration) + nodes <= self.capacity
    }

    /// Book `nodes` over `[start, start + duration)`.
    ///
    /// # Panics
    /// Panics if the booking would exceed capacity — callers must check
    /// [`CapacityProfile::fits`] first; booking beyond capacity is a
    /// scheduler bug, not an input condition.
    pub fn reserve(&mut self, start: SimTime, duration: SimDuration, nodes: u64) {
        assert!(
            self.fits(start, duration, nodes),
            "reservation of {nodes} nodes at {start} for {duration} exceeds capacity"
        );
        assert!(!duration.is_zero(), "zero-length reservation");
        *self.deltas.entry(start).or_insert(0) += nodes as i64;
        let end = start + duration;
        *self.deltas.entry(end).or_insert(0) -= nodes as i64;
        // Drop zero entries to keep boundary scans tight.
        if self.deltas.get(&start) == Some(&0) {
            self.deltas.remove(&start);
        }
        if self.deltas.get(&end) == Some(&0) {
            self.deltas.remove(&end);
        }
    }

    /// Earliest instant at or after `after` where `nodes` are free for
    /// `duration`. Returns `None` only if `nodes` exceeds capacity.
    pub fn earliest_fit(
        &self,
        after: SimTime,
        duration: SimDuration,
        nodes: u64,
    ) -> Option<SimTime> {
        if nodes > self.capacity {
            return None;
        }
        if self.fits(after, duration, nodes) {
            return Some(after);
        }
        for (&t, _) in self.deltas.range(after..) {
            if t > after && self.fits(t, duration, nodes) {
                return Some(t);
            }
        }
        // Beyond the last boundary usage is zero; the last boundary was
        // checked above, so reaching here means every boundary failed —
        // impossible unless the profile never empties, which bounded
        // bookings cannot produce. Defensive fallback:
        let last = self.deltas.keys().next_back().copied().unwrap_or(after);
        Some(last.max(after))
    }

    /// Earliest instant at or after `after` where this *and* `other` can
    /// both fit their respective requests simultaneously — the co-
    /// reservation query. The candidate set is the union of both profiles'
    /// boundaries.
    pub fn earliest_co_fit(
        &self,
        other: &CapacityProfile,
        after: SimTime,
        dur_a: SimDuration,
        nodes_a: u64,
        dur_b: SimDuration,
        nodes_b: u64,
    ) -> Option<SimTime> {
        if nodes_a > self.capacity || nodes_b > other.capacity {
            return None;
        }
        let both = |t: SimTime| self.fits(t, dur_a, nodes_a) && other.fits(t, dur_b, nodes_b);
        if both(after) {
            return Some(after);
        }
        let mut candidates: Vec<SimTime> = self
            .deltas
            .range(after..)
            .map(|(&t, _)| t)
            .chain(other.deltas.range(after..).map(|(&t, _)| t))
            .filter(|&t| t > after)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        for t in candidates {
            if both(t) {
                return Some(t);
            }
        }
        let last_a = self.deltas.keys().next_back().copied().unwrap_or(after);
        let last_b = other.deltas.keys().next_back().copied().unwrap_or(after);
        Some(last_a.max(last_b).max(after))
    }

    /// Total committed node-seconds in the ledger (for accounting checks).
    pub fn committed_node_seconds(&self) -> u64 {
        let mut usage = 0i64;
        let mut prev: Option<SimTime> = None;
        let mut total = 0u64;
        for (&t, d) in &self.deltas {
            if let Some(p) = prev {
                total += usage as u64 * (t - p).as_secs();
            }
            usage += d;
            prev = Some(t);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn usage_tracks_reservations() {
        let mut p = CapacityProfile::new(100);
        p.reserve(t(10), d(20), 60);
        assert_eq!(p.usage_at(t(0)), 0);
        assert_eq!(p.usage_at(t(10)), 60);
        assert_eq!(p.usage_at(t(29)), 60);
        assert_eq!(p.usage_at(t(30)), 0, "end is exclusive");
    }

    #[test]
    fn max_usage_over_window() {
        let mut p = CapacityProfile::new(100);
        p.reserve(t(10), d(10), 30);
        p.reserve(t(15), d(10), 40);
        assert_eq!(p.max_usage_in(t(0), d(12)), 30);
        assert_eq!(p.max_usage_in(t(0), d(20)), 70);
        assert_eq!(p.max_usage_in(t(20), d(5)), 40);
        assert_eq!(p.max_usage_in(t(25), d(100)), 0);
    }

    #[test]
    fn fits_respects_capacity() {
        let mut p = CapacityProfile::new(100);
        p.reserve(t(0), d(100), 70);
        assert!(p.fits(t(0), d(50), 30));
        assert!(!p.fits(t(0), d(50), 31));
        assert!(p.fits(t(100), d(50), 100));
        assert!(!p.fits(t(0), d(1), 101));
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn over_reservation_panics() {
        let mut p = CapacityProfile::new(10);
        p.reserve(t(0), d(10), 8);
        p.reserve(t(5), d(10), 3);
    }

    #[test]
    fn earliest_fit_finds_first_gap() {
        let mut p = CapacityProfile::new(100);
        p.reserve(t(0), d(100), 80); // 20 free until t=100
        p.reserve(t(100), d(50), 50); // 50 free in [100,150)
        assert_eq!(p.earliest_fit(t(0), d(10), 20), Some(t(0)));
        assert_eq!(p.earliest_fit(t(0), d(10), 21), Some(t(100)));
        assert_eq!(p.earliest_fit(t(0), d(10), 60), Some(t(150)));
        assert_eq!(p.earliest_fit(t(0), d(10), 101), None);
    }

    #[test]
    fn earliest_fit_respects_duration_spanning_bump() {
        let mut p = CapacityProfile::new(100);
        p.reserve(t(50), d(10), 90); // bump in the middle
                                     // 20 nodes for 100 s starting now would overlap the bump.
        assert_eq!(p.earliest_fit(t(0), d(100), 20), Some(t(60)));
        // Short enough to finish before the bump: immediate.
        assert_eq!(p.earliest_fit(t(0), d(50), 20), Some(t(0)));
    }

    #[test]
    fn co_fit_finds_common_slot() {
        let mut a = CapacityProfile::new(100);
        let mut b = CapacityProfile::new(10);
        a.reserve(t(0), d(100), 100); // A busy till 100
        b.reserve(t(0), d(200), 8); // B nearly busy till 200
                                    // Pair needs 50 on A and 4 on B: A frees at 100, B at 200.
        assert_eq!(
            a.earliest_co_fit(&b, t(0), d(60), 50, d(60), 4),
            Some(t(200))
        );
        // 2 nodes on B fit alongside the 8: only A constrains.
        assert_eq!(
            a.earliest_co_fit(&b, t(0), d(60), 50, d(60), 2),
            Some(t(100))
        );
        // Oversize on either machine: no slot ever.
        assert_eq!(a.earliest_co_fit(&b, t(0), d(1), 101, d(1), 1), None);
        assert_eq!(a.earliest_co_fit(&b, t(0), d(1), 1, d(1), 11), None);
    }

    #[test]
    fn committed_node_seconds_accounting() {
        let mut p = CapacityProfile::new(100);
        p.reserve(t(10), d(20), 60);
        p.reserve(t(20), d(10), 30);
        assert_eq!(p.committed_node_seconds(), 60 * 20 + 30 * 10);
    }

    #[test]
    fn empty_profile_fits_everything_reasonable() {
        let p = CapacityProfile::new(64);
        assert_eq!(p.earliest_fit(t(500), d(1_000), 64), Some(t(500)));
        assert_eq!(p.usage_at(t(0)), 0);
        assert_eq!(p.committed_node_seconds(), 0);
    }
}
