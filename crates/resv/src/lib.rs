//! Advance co-reservation baseline.
//!
//! The paper's related-work section (§III) discusses the established way to
//! start related jobs on multiple systems at the same time: **advance
//! resource co-reservation** (HARC, GARA, GUR). It argues co-reservation is
//! a poor fit for coupled HEC systems because (1) it needs manual policy
//! negotiation, and (2) "excessive use of reservation will leave temporal
//! fragmentations on the computing resources, thereby leading to worse
//! response times for regular jobs".
//!
//! This crate implements that comparator so the claim can be measured
//! rather than asserted: a reservation-based coupled scheduler that books
//! every job — and every associated pair at a common instant on both
//! machines — into walltime-sized slots on capacity profiles.
//!
//! * [`profile`] — [`profile::CapacityProfile`], a step-function ledger of
//!   committed node usage over time with earliest-fit queries;
//! * [`sim`] — [`sim::ReservationSimulation`], the coupled reservation
//!   scheduler producing the same [`cosched_metrics::MachineSummary`]
//!   metrics as the protocol coscheduler, so the two compare row-for-row.

pub mod profile;
pub mod sim;

pub use profile::CapacityProfile;
pub use sim::{ReservationReport, ReservationSimulation};
