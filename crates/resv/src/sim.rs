//! The reservation-based coupled scheduler.
//!
//! Every job is booked into a walltime-sized slot on its machine's
//! [`CapacityProfile`]; an associated pair is booked at the earliest
//! *common* instant both machines can serve it (the co-reservation of
//! HARC/GUR). Bookings are immutable once made — the defining property of
//! advance reservations, and the source of the temporal fragmentation the
//! paper's §III warns about:
//!
//! * slots are sized by the *walltime*, so the gap between a job's actual
//!   completion and its booked end is committed-but-idle capacity;
//! * a pair's common slot leaves both machines' earlier capacity stranded
//!   if the other machine is the constraint.
//!
//! Jobs are booked in submission order (per the combined timeline), which
//! is what an online reservation desk does. A paired job is booked when
//! its *second* half is submitted — before that the desk does not know the
//! mate's shape.

use crate::profile::CapacityProfile;
use cosched_metrics::{JobRecord, MachineSummary};
use cosched_sim::{SimDuration, SimTime};
use cosched_workload::{Job, JobId, Trace};
use std::collections::HashMap;

/// Outcome of a reservation-based coupled run, mirroring the protocol
/// coscheduler's report shape for row-for-row comparison.
#[derive(Debug, Clone)]
pub struct ReservationReport {
    /// Per-machine job records.
    pub records: [Vec<JobRecord>; 2],
    /// Per-machine aggregated metrics. `lost_node_hours` counts the
    /// committed-but-idle tail of each slot (walltime − runtime), the
    /// reservation analogue of hold loss.
    pub summaries: [MachineSummary; 2],
    /// |start(a) − start(b)| per pair — always zero by construction.
    pub pair_offsets: Vec<SimDuration>,
    /// Metrics horizon (latest booked end).
    pub horizon: SimTime,
}

impl ReservationReport {
    /// Co-reservation starts pairs together by construction.
    pub fn all_pairs_synchronized(&self) -> bool {
        self.pair_offsets.iter().all(|d| d.is_zero())
    }
}

/// Coupled reservation scheduler over two machines.
pub struct ReservationSimulation {
    names: [String; 2],
    profiles: [CapacityProfile; 2],
    traces: [Trace; 2],
}

impl ReservationSimulation {
    /// Build from machine names/capacities and the paired traces.
    ///
    /// # Panics
    /// Panics if any trace job exceeds its machine capacity (such a job can
    /// never be booked).
    pub fn new(names: [&str; 2], capacities: [u64; 2], traces: [Trace; 2]) -> Self {
        for (i, trace) in traces.iter().enumerate() {
            assert!(
                trace.max_size() <= capacities[i],
                "machine {i} has a job larger than its capacity"
            );
        }
        ReservationSimulation {
            names: [names[0].to_string(), names[1].to_string()],
            profiles: [
                CapacityProfile::new(capacities[0]),
                CapacityProfile::new(capacities[1]),
            ],
            traces,
        }
    }

    /// Book everything and report.
    pub fn run(mut self) -> ReservationReport {
        // Merge both traces into one submission timeline.
        let mut timeline: Vec<(usize, Job)> = Vec::new();
        for (m, trace) in self.traces.iter().enumerate() {
            for j in trace.jobs() {
                timeline.push((m, j.clone()));
            }
        }
        timeline.sort_by_key(|(m, j)| (j.submit, *m, j.id));

        // Pairs book when the second half arrives.
        let mut pending_pair: HashMap<(usize, JobId), (usize, Job)> = HashMap::new();
        let mut records: [Vec<JobRecord>; 2] = [Vec::new(), Vec::new()];
        let mut pair_offsets = Vec::new();
        let mut horizon = SimTime::ZERO;

        let book = |profiles: &mut [CapacityProfile; 2],
                    m: usize,
                    job: &Job,
                    start: SimTime,
                    records: &mut [Vec<JobRecord>; 2],
                    horizon: &mut SimTime| {
            profiles[m].reserve(start, job.walltime, job.size);
            let end = start + job.runtime;
            *horizon = (*horizon).max(start + job.walltime);
            records[m].push(JobRecord {
                id: job.id,
                machine: job.machine,
                size: job.size,
                submit: job.submit,
                start,
                end,
                runtime: job.runtime,
                walltime: job.walltime,
                paired: job.is_paired(),
                // The reservation desk assigns the slot at booking time;
                // there is no separate "ready" instant, so sync time is 0.
                first_ready: Some(start),
                yields: 0,
                holds: 0,
            });
        };

        for (m, job) in timeline {
            match job.mate {
                None => {
                    let start = self.profiles[m]
                        .earliest_fit(job.submit, job.walltime, job.size)
                        .expect("validated against capacity");
                    book(
                        &mut self.profiles,
                        m,
                        &job,
                        start,
                        &mut records,
                        &mut horizon,
                    );
                }
                Some(mate) => {
                    let key = (m, job.id);
                    if let Some((m_first, first)) = pending_pair.remove(&(1 - m, mate.job)) {
                        debug_assert_eq!(m_first, 1 - m);
                        // Second half arrived: co-book at the earliest
                        // common slot after this submission.
                        let (pa, pb) = (&self.profiles[m_first], &self.profiles[m]);
                        let start = pa
                            .earliest_co_fit(
                                pb,
                                job.submit,
                                first.walltime,
                                first.size,
                                job.walltime,
                                job.size,
                            )
                            .expect("validated against capacity");
                        book(
                            &mut self.profiles,
                            m_first,
                            &first,
                            start,
                            &mut records,
                            &mut horizon,
                        );
                        book(
                            &mut self.profiles,
                            m,
                            &job,
                            start,
                            &mut records,
                            &mut horizon,
                        );
                        pair_offsets.push(SimDuration::ZERO);
                    } else {
                        pending_pair.insert(key, (m, job));
                    }
                }
            }
        }
        // Halves whose mate never arrived book as ordinary jobs.
        let mut leftovers: Vec<(usize, Job)> = pending_pair.into_values().collect();
        leftovers.sort_by_key(|(m, j)| (j.submit, *m, j.id));
        for (m, job) in leftovers {
            let start = self.profiles[m]
                .earliest_fit(job.submit, job.walltime, job.size)
                .expect("validated against capacity");
            book(
                &mut self.profiles,
                m,
                &job,
                start,
                &mut records,
                &mut horizon,
            );
        }

        // Loss = committed-but-idle slot tails.
        let horizon = horizon.max(SimTime::from_secs(1));
        let summaries = [0usize, 1].map(|m| {
            let idle: u64 = records[m]
                .iter()
                .map(|r| r.size * (r.walltime - r.runtime).as_secs())
                .sum();
            MachineSummary::from_records(
                self.names[m].clone(),
                &records[m],
                self.profiles[m].capacity(),
                horizon,
                idle,
            )
        });

        ReservationReport {
            records,
            summaries,
            pair_offsets,
            horizon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::{MachineId, MateRef};

    fn job(machine: usize, id: u64, submit: u64, size: u64, runtime: u64, walltime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(walltime),
        )
    }

    fn sim(a: Vec<Job>, b: Vec<Job>) -> ReservationSimulation {
        ReservationSimulation::new(
            ["A", "B"],
            [100, 10],
            [
                Trace::from_jobs(MachineId(0), a),
                Trace::from_jobs(MachineId(1), b),
            ],
        )
    }

    #[test]
    fn unpaired_jobs_book_fcfs_on_profile() {
        let report = sim(
            vec![
                job(0, 1, 0, 80, 100, 100),
                job(0, 2, 10, 80, 100, 100), // must wait for slot after j1
            ],
            vec![],
        )
        .run();
        let r: HashMap<_, _> = report.records[0].iter().map(|r| (r.id, r.start)).collect();
        assert_eq!(r[&JobId(1)], SimTime::from_secs(0));
        assert_eq!(r[&JobId(2)], SimTime::from_secs(100));
    }

    #[test]
    fn pair_books_common_slot_and_synchronizes() {
        let mut a = job(0, 1, 0, 50, 100, 100);
        let mut b = job(1, 1, 60, 5, 100, 100);
        a.mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(1),
        });
        b.mate = Some(MateRef {
            machine: MachineId(0),
            job: JobId(1),
        });
        // B is fully busy until t=500.
        let filler = job(1, 9, 0, 10, 500, 500);
        let report = sim(vec![a], vec![filler, b]).run();
        assert!(report.all_pairs_synchronized());
        let sa = report.records[0]
            .iter()
            .find(|r| r.id == JobId(1))
            .unwrap()
            .start;
        let sb = report.records[1]
            .iter()
            .find(|r| r.id == JobId(1))
            .unwrap()
            .start;
        assert_eq!(sa, sb);
        assert_eq!(sa, SimTime::from_secs(500), "pair waits for B's capacity");
    }

    #[test]
    fn walltime_tail_is_counted_as_loss() {
        // One job: runtime 100, walltime 400 → 300 s × 50 nodes idle tail.
        let report = sim(vec![job(0, 1, 0, 50, 100, 400)], vec![]).run();
        let lost = report.summaries[0].lost_node_hours;
        assert!((lost - 50.0 * 300.0 / 3600.0).abs() < 1e-9, "lost {lost}");
    }

    #[test]
    fn fragmentation_delays_regular_jobs_behind_pair_slot() {
        // Pair books at t=500 (constrained by B). A regular 80-node job
        // submitted at t=10 with walltime 600 cannot fit before the pair's
        // slot on A (50 nodes at t=500): 80 + 50 > 100 → pushed past it.
        let mut a = job(0, 1, 0, 50, 100, 100);
        let mut b = job(1, 1, 5, 5, 100, 100);
        a.mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(1),
        });
        b.mate = Some(MateRef {
            machine: MachineId(0),
            job: JobId(1),
        });
        let filler_b = job(1, 9, 0, 10, 500, 500);
        let regular = job(0, 2, 10, 80, 600, 600);
        let report = sim(vec![a, regular], vec![filler_b, b]).run();
        let start2 = report.records[0]
            .iter()
            .find(|r| r.id == JobId(2))
            .unwrap()
            .start;
        assert_eq!(
            start2,
            SimTime::from_secs(600),
            "regular job is pushed behind the pair's reserved slot"
        );
    }

    #[test]
    fn lone_pair_half_books_eventually() {
        let mut a = job(0, 1, 0, 50, 100, 100);
        a.mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(42),
        });
        // Mate 42 never appears in B's trace; MateRegistry-level validation
        // is bypassed here on purpose — the desk books the lone half as a
        // regular job at the end.
        let report = sim(vec![a], vec![]).run();
        assert_eq!(report.records[0].len(), 1);
        assert_eq!(report.pair_offsets.len(), 0);
    }

    #[test]
    #[should_panic(expected = "larger than its capacity")]
    fn oversize_job_is_rejected_up_front() {
        sim(vec![job(0, 1, 0, 101, 10, 10)], vec![]).run();
    }

    #[test]
    fn utilization_and_counts_are_sane() {
        let report = sim(
            vec![job(0, 1, 0, 50, 100, 150), job(0, 2, 0, 50, 100, 150)],
            vec![job(1, 1, 0, 10, 100, 100)],
        )
        .run();
        assert_eq!(report.summaries[0].jobs, 2);
        assert_eq!(report.summaries[1].jobs, 1);
        assert!(report.summaries[0].utilization > 0.0);
        assert!(report.summaries[0].utilization <= 1.0);
    }
}
