//! Transport instrumentation: per-RPC wall-clock latency and outcome
//! counters around any [`Transport`].
//!
//! Wall-clock data never enters simulation reports (it would break
//! same-seed determinism); this wrapper is for *live* transports — TCP,
//! in-process channels — where latency is a real operational signal.

use crate::message::{Request, Response};
use crate::transport::{ProtoError, Transport};
use cosched_obs::metrics::HistogramSnapshot;
use cosched_obs::trace::RpcKind;
use cosched_obs::Histogram;
use std::time::Instant;

/// All `RpcKind` variants, in the order used for per-kind counters.
const KINDS: [RpcKind; 6] = [
    RpcKind::GetMateJob,
    RpcKind::GetMateStatus,
    RpcKind::TryStartMate,
    RpcKind::StartJob,
    RpcKind::CanStart,
    RpcKind::Ping,
];

fn kind_index(kind: RpcKind) -> usize {
    KINDS
        .iter()
        .position(|&k| k == kind)
        .expect("all kinds listed")
}

/// Point-in-time view of a transport's activity.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportMetrics {
    /// Requests issued.
    pub calls: u64,
    /// Requests that failed with [`ProtoError::Timeout`].
    pub timeouts: u64,
    /// Requests that failed for any other reason.
    pub failures: u64,
    /// Per-kind call counts as `(kind name, count)`, non-zero entries only.
    pub calls_by_kind: Vec<(&'static str, u64)>,
    /// Per-kind timeout counts as `(kind name, count)`, non-zero entries
    /// only.
    pub timeouts_by_kind: Vec<(&'static str, u64)>,
    /// Wall-clock latency distribution in nanoseconds, all kinds combined.
    pub latency_ns: HistogramSnapshot,
    /// Per-kind wall-clock latency distributions, kinds with calls only.
    pub latency_by_kind: Vec<(&'static str, HistogramSnapshot)>,
}

/// A [`Transport`] wrapper recording latency and outcome for every call.
pub struct InstrumentedTransport<T: Transport> {
    inner: T,
    latency_ns: Histogram,
    latency_by_kind: [Histogram; KINDS.len()],
    calls: u64,
    timeouts: u64,
    failures: u64,
    by_kind: [u64; KINDS.len()],
    timeouts_by_kind: [u64; KINDS.len()],
}

impl<T: Transport> InstrumentedTransport<T> {
    pub fn new(inner: T) -> Self {
        InstrumentedTransport {
            inner,
            latency_ns: Histogram::new(),
            latency_by_kind: std::array::from_fn(|_| Histogram::new()),
            calls: 0,
            timeouts: 0,
            failures: 0,
            by_kind: [0; KINDS.len()],
            timeouts_by_kind: [0; KINDS.len()],
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwrap, discarding the collected metrics.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Snapshot the activity recorded so far.
    pub fn metrics(&self) -> TransportMetrics {
        TransportMetrics {
            calls: self.calls,
            timeouts: self.timeouts,
            failures: self.failures,
            calls_by_kind: KINDS
                .iter()
                .zip(self.by_kind)
                .filter(|&(_, n)| n > 0)
                .map(|(&k, n)| (k.as_str(), n))
                .collect(),
            timeouts_by_kind: KINDS
                .iter()
                .zip(self.timeouts_by_kind)
                .filter(|&(_, n)| n > 0)
                .map(|(&k, n)| (k.as_str(), n))
                .collect(),
            latency_ns: self.latency_ns.snapshot("rpc.latency_ns"),
            latency_by_kind: KINDS
                .iter()
                .zip(&self.by_kind)
                .zip(&self.latency_by_kind)
                .filter(|&((_, &n), _)| n > 0)
                .map(|((&k, _), h)| (k.as_str(), h.snapshot("rpc.latency_ns")))
                .collect(),
        }
    }
}

impl<T: Transport> Transport for InstrumentedTransport<T> {
    fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        let t0 = Instant::now();
        let result = self.inner.call(req);
        let nanos = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let index = kind_index(req.trace_kind());
        self.latency_ns.record(nanos);
        self.latency_by_kind[index].record(nanos);
        self.calls += 1;
        self.by_kind[index] += 1;
        match &result {
            Err(ProtoError::Timeout) => {
                self.timeouts += 1;
                self.timeouts_by_kind[index] += 1;
            }
            Err(_) => self.failures += 1,
            Ok(_) => {}
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MateStatus;
    use crate::transport::Loopback;

    #[test]
    fn counts_calls_timeouts_and_latency() {
        struct Flaky(u32);
        impl Transport for Flaky {
            fn call(&mut self, _req: &Request) -> Result<Response, ProtoError> {
                self.0 += 1;
                if self.0.is_multiple_of(2) {
                    Err(ProtoError::Timeout)
                } else {
                    Ok(Response::Pong)
                }
            }
        }
        let mut t = InstrumentedTransport::new(Flaky(0));
        for _ in 0..4 {
            let _ = t.call(&Request::Ping);
        }
        let _ = t.call(&Request::GetMateJob {
            for_job: cosched_workload::JobId(1),
        });
        let m = t.metrics();
        assert_eq!(m.calls, 5);
        assert_eq!(m.timeouts, 2);
        assert_eq!(m.failures, 0);
        assert_eq!(m.latency_ns.count, 5);
        assert!(m.calls_by_kind.contains(&("ping", 4)));
        assert!(m.calls_by_kind.contains(&("get_mate_job", 1)));
        // Both timeouts hit pings (calls 2 and 4): per-kind timeout and
        // latency breakdowns follow the same kind keys.
        assert_eq!(m.timeouts_by_kind, vec![("ping", 2)]);
        let kinds: Vec<&str> = m.latency_by_kind.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, vec!["get_mate_job", "ping"]);
        let ping_latency = &m
            .latency_by_kind
            .iter()
            .find(|(k, _)| *k == "ping")
            .unwrap()
            .1;
        assert_eq!(ping_latency.count, 4);
    }

    #[test]
    fn transparent_to_the_caller() {
        let mut t = InstrumentedTransport::new(Loopback(|_req: Request| {
            Response::MateStatus(MateStatus::Queuing)
        }));
        let resp = t.call(&Request::Ping).unwrap();
        assert_eq!(resp.status(), MateStatus::Queuing);
        assert_eq!(t.metrics().calls, 1);
    }
}
