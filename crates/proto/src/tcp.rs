//! TCP transport and server.
//!
//! The deployment shape the paper targets: two resource managers on
//! different administrative domains, each exposing the coordination service
//! on a socket. [`TcpTransport`] is the client side with per-call read
//! timeouts; [`serve`] runs an accept loop handing each connection to a
//! shared [`DomainService`] behind a mutex (coordination traffic is a few
//! calls per scheduling iteration — contention is not a concern; simplicity
//! and correctness are).

use crate::frame::{encode, FrameDecoder};
use crate::message::{Request, Response};
use crate::span::{SpanContext, TracedRequest};
use crate::transport::{DomainService, ProtoError, Transport};
use parking_lot::Mutex;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Client side of the protocol over TCP.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    timeout: Duration,
}

impl TcpTransport {
    /// Connect to a remote domain with the given per-call timeout.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> Result<Self, ProtoError> {
        let stream = TcpStream::connect_timeout(&addr, timeout)
            .map_err(|e| ProtoError::Disconnected(format!("connect {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(timeout))
            .map_err(|e| ProtoError::Disconnected(e.to_string()))?;
        stream
            .set_nodelay(true)
            .map_err(|e| ProtoError::Disconnected(e.to_string()))?;
        Ok(TcpTransport {
            stream,
            decoder: FrameDecoder::new(),
            timeout,
        })
    }
}

impl Transport for TcpTransport {
    fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        self.call_with(req, SpanContext::NONE)
    }

    fn call_with(&mut self, req: &Request, ctx: SpanContext) -> Result<Response, ProtoError> {
        let wire = encode(&TracedRequest {
            ctx,
            req: req.clone(),
        });
        self.stream
            .write_all(&wire)
            .map_err(|e| ProtoError::Disconnected(format!("send: {e}")))?;
        let deadline = std::time::Instant::now() + self.timeout;
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(resp) = self
                .decoder
                .next::<Response>()
                .map_err(|e| ProtoError::Protocol(e.to_string()))?
            {
                return Ok(resp);
            }
            if std::time::Instant::now() >= deadline {
                return Err(ProtoError::Timeout);
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ProtoError::Disconnected("peer closed".into())),
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Err(ProtoError::Timeout);
                }
                Err(e) => return Err(ProtoError::Disconnected(format!("recv: {e}"))),
            }
        }
    }
}

/// Handle returned by [`serve`]: signals shutdown and joins the accept
/// thread on drop.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request shutdown and wait for the accept loop to exit.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Poke the listener out of `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// Serve `service` on `bind_addr` (use port 0 for an ephemeral port) in a
/// background thread. Each connection is handled serially on its own
/// thread; the service sits behind a mutex.
pub fn serve<S: DomainService + Send + 'static>(
    bind_addr: SocketAddr,
    service: S,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(bind_addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_accept = Arc::clone(&stop);
    let service = Arc::new(Mutex::new(service));
    let join = std::thread::spawn(move || {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        for conn in listener.incoming() {
            if stop_accept.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let svc = Arc::clone(&service);
            let stop_conn = Arc::clone(&stop_accept);
            conns.push(std::thread::spawn(move || {
                handle_connection(stream, svc, stop_conn)
            }));
        }
        // Joining connection threads makes shutdown() a barrier: once it
        // returns, no request will be answered anymore.
        for c in conns {
            let _ = c.join();
        }
    });
    Ok(ServerHandle {
        addr,
        stop,
        join: Some(join),
    })
}

fn handle_connection<S: DomainService>(
    mut stream: TcpStream,
    service: Arc<Mutex<S>>,
    stop: Arc<AtomicBool>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut decoder = FrameDecoder::new();
    let mut chunk = [0u8; 4096];
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        match decoder.next::<TracedRequest>() {
            Ok(Some(env)) => {
                let resp = service.lock().handle_traced(env.req, env.ctx);
                if stream.write_all(&encode(&resp)).is_err() {
                    return;
                }
                continue;
            }
            Ok(None) => {}
            Err(_) => return, // protocol violation: drop the connection
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => decoder.extend(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MateStatus;
    use cosched_workload::JobId;

    fn echo_service() -> impl DomainService + Send + 'static {
        |req: Request| match req {
            Request::Ping => Response::Pong,
            Request::GetMateStatus { job } => {
                if job == JobId(1) {
                    Response::MateStatus(MateStatus::Holding)
                } else {
                    Response::MateStatus(MateStatus::Unknown)
                }
            }
            Request::TryStartMate { .. } => Response::Started(true),
            _ => Response::Error("unsupported".into()),
        }
    }

    #[test]
    fn tcp_roundtrip() {
        let server = serve("127.0.0.1:0".parse().unwrap(), echo_service()).unwrap();
        let mut client = TcpTransport::connect(server.addr(), Duration::from_secs(2)).unwrap();
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        let resp = client
            .call(&Request::GetMateStatus { job: JobId(1) })
            .unwrap();
        assert_eq!(resp.status(), MateStatus::Holding);
        assert!(client
            .call(&Request::TryStartMate { job: JobId(2) })
            .unwrap()
            .started());
        server.shutdown();
    }

    #[test]
    fn multiple_clients_share_service() {
        let server = serve("127.0.0.1:0".parse().unwrap(), echo_service()).unwrap();
        let addr = server.addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = TcpTransport::connect(addr, Duration::from_secs(2)).unwrap();
                    for _ in 0..20 {
                        assert_eq!(c.call(&Request::Ping).unwrap(), Response::Pong);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn span_context_propagates_over_tcp() {
        struct CtxEcho;
        impl DomainService for CtxEcho {
            fn handle(&mut self, _req: Request) -> Response {
                Response::Pong
            }
            fn handle_traced(&mut self, _req: Request, ctx: SpanContext) -> Response {
                Response::Error(format!("span={}", ctx.span))
            }
        }
        let server = serve("127.0.0.1:0".parse().unwrap(), CtxEcho).unwrap();
        let mut client = TcpTransport::connect(server.addr(), Duration::from_secs(2)).unwrap();
        match client
            .call_with(&Request::Ping, SpanContext::new(99))
            .unwrap()
        {
            Response::Error(s) => assert_eq!(s, "span=99"),
            other => panic!("unexpected response {other:?}"),
        }
        // Plain `call` sends the empty context.
        match client.call(&Request::Ping).unwrap() {
            Response::Error(s) => assert_eq!(s, "span=0"),
            other => panic!("unexpected response {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn connect_to_dead_port_is_disconnected() {
        // Bind-then-drop to find a port that is closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let err = TcpTransport::connect(addr, Duration::from_millis(300)).unwrap_err();
        assert!(matches!(err, ProtoError::Disconnected(_)), "{err}");
    }

    #[test]
    fn slow_server_times_out() {
        // A listener that accepts but never replies.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let keep = std::thread::spawn(move || {
            let (_stream, _) = listener.accept().unwrap();
            std::thread::sleep(Duration::from_millis(500));
        });
        let mut client = TcpTransport::connect(addr, Duration::from_millis(100)).unwrap();
        let err = client.call(&Request::Ping).unwrap_err();
        assert!(matches!(err, ProtoError::Timeout), "{err}");
        keep.join().unwrap();
    }
}
