//! Length-prefixed wire framing.
//!
//! Each frame is a 4-byte big-endian length followed by a JSON payload.
//! JSON keeps the protocol debuggable with `nc`/`tcpdump` — apt for a
//! protocol whose selling point is that heterogeneous resource managers can
//! implement it easily — while the length prefix gives unambiguous message
//! boundaries over a stream. A hard size cap defends against corrupt or
//! hostile length words.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::de::DeserializeOwned;
use serde::Serialize;

/// Upper bound on a frame payload; anything larger is a protocol error.
/// Coordination messages are tens of bytes, so 64 KiB is generous.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// Framing/parsing failures.
#[derive(Debug)]
pub enum FrameError {
    /// Declared length exceeds [`MAX_FRAME_LEN`].
    Oversized(usize),
    /// Payload was not valid JSON for the expected type.
    Malformed(serde_json::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(n) => write!(f, "frame of {n} bytes exceeds cap {MAX_FRAME_LEN}"),
            FrameError::Malformed(e) => write!(f, "malformed frame payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Serialise `msg` into one wire frame.
pub fn encode<T: Serialize>(msg: &T) -> Bytes {
    let payload = serde_json::to_vec(msg).expect("protocol messages always serialize");
    assert!(payload.len() <= MAX_FRAME_LEN, "outgoing frame exceeds cap");
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(&payload);
    buf.freeze()
}

/// Incremental frame decoder: feed bytes as they arrive, pull out complete
/// messages.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
    frames_decoded: u64,
    bytes_decoded: u64,
}

impl FrameDecoder {
    /// Fresh decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Try to decode the next complete frame. `Ok(None)` means more bytes
    /// are needed.
    #[allow(clippy::should_implement_trait)] // fallible & typed; not an Iterator
    pub fn next<T: DeserializeOwned>(&mut self) -> Result<Option<T>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > MAX_FRAME_LEN {
            return Err(FrameError::Oversized(len));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let payload = self.buf.split_to(len);
        let msg = serde_json::from_slice(&payload).map_err(FrameError::Malformed)?;
        self.frames_decoded += 1;
        self.bytes_decoded += 4 + len as u64;
        Ok(Some(msg))
    }

    /// Bytes buffered but not yet consumed.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Complete frames decoded over the decoder's lifetime.
    pub fn frames_decoded(&self) -> u64 {
        self.frames_decoded
    }

    /// Total wire bytes consumed by decoded frames (header included).
    pub fn bytes_decoded(&self) -> u64 {
        self.bytes_decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Request, Response};
    use cosched_workload::JobId;

    #[test]
    fn encode_decode_roundtrip() {
        let req = Request::GetMateStatus { job: JobId(42) };
        let wire = encode(&req);
        let mut dec = FrameDecoder::new();
        dec.extend(&wire);
        let back: Request = dec.next().unwrap().unwrap();
        assert_eq!(back, req);
        assert_eq!(dec.pending_bytes(), 0);
        assert_eq!(dec.frames_decoded(), 1);
        assert_eq!(dec.bytes_decoded(), wire.len() as u64);
    }

    #[test]
    fn partial_feeds_wait_for_more() {
        let wire = encode(&Request::Ping);
        let mut dec = FrameDecoder::new();
        // Feed one byte at a time; only the final byte completes the frame.
        for (i, b) in wire.iter().enumerate() {
            dec.extend(&[*b]);
            let got: Option<Request> = dec.next().unwrap();
            if i + 1 < wire.len() {
                assert!(got.is_none(), "frame completed early at byte {i}");
            } else {
                assert_eq!(got, Some(Request::Ping));
            }
        }
    }

    #[test]
    fn multiple_frames_in_one_feed() {
        let mut all = Vec::new();
        all.extend_from_slice(&encode(&Response::Started(true)));
        all.extend_from_slice(&encode(&Response::Pong));
        all.extend_from_slice(&encode(&Response::Started(false)));
        let mut dec = FrameDecoder::new();
        dec.extend(&all);
        let a: Response = dec.next().unwrap().unwrap();
        let b: Response = dec.next().unwrap().unwrap();
        let c: Response = dec.next().unwrap().unwrap();
        assert_eq!(a, Response::Started(true));
        assert_eq!(b, Response::Pong);
        assert_eq!(c, Response::Started(false));
        let d: Option<Response> = dec.next().unwrap();
        assert!(d.is_none());
    }

    #[test]
    fn oversized_length_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        dec.extend(&[0u8; 16]);
        let err = dec.next::<Request>().unwrap_err();
        assert!(matches!(err, FrameError::Oversized(_)), "{err}");
    }

    #[test]
    fn malformed_payload_is_rejected() {
        let mut dec = FrameDecoder::new();
        let garbage = b"not json!!";
        dec.extend(&(garbage.len() as u32).to_be_bytes());
        dec.extend(garbage);
        let err = dec.next::<Request>().unwrap_err();
        assert!(matches!(err, FrameError::Malformed(_)), "{err}");
    }

    #[test]
    fn decoder_recovers_frame_boundary_split_inside_length() {
        let wire = encode(&Request::Ping);
        let mut dec = FrameDecoder::new();
        dec.extend(&wire[..2]); // half the length word
        assert!(dec.next::<Request>().unwrap().is_none());
        dec.extend(&wire[2..]);
        assert_eq!(dec.next::<Request>().unwrap(), Some(Request::Ping));
    }
}
