//! Client-side transport abstraction and the service trait domains
//! implement.

use crate::message::{Request, Response};
use crate::span::SpanContext;

/// Failures a caller can observe. The coscheduling algorithm maps *any* of
/// these to the remote-down branch of Algorithm 1 — the ready job starts
/// normally rather than waiting on a dead peer.
#[derive(Debug)]
pub enum ProtoError {
    /// No response within the configured deadline.
    Timeout,
    /// The connection is gone (peer closed, reset, or never reachable).
    Disconnected(String),
    /// A frame arrived but could not be interpreted.
    Protocol(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Timeout => write!(f, "request timed out"),
            ProtoError::Disconnected(d) => write!(f, "transport disconnected: {d}"),
            ProtoError::Protocol(d) => write!(f, "protocol violation: {d}"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// A synchronous request/response channel to the remote scheduling domain.
pub trait Transport {
    /// Issue one request and wait for its response.
    fn call(&mut self, req: &Request) -> Result<Response, ProtoError>;

    /// Issue one request carrying the caller's span context. Transports
    /// that propagate context on the wire (TCP, in-process) override this;
    /// the default simply drops the context.
    fn call_with(&mut self, req: &Request, _ctx: SpanContext) -> Result<Response, ProtoError> {
        self.call(req)
    }
}

/// The server side: what a resource manager exposes to its peers. One
/// method — the protocol is deliberately small so "systems using different
/// resource managers or schedulers" (LSF, PBS, Cobalt…) can interface.
pub trait DomainService {
    /// Answer one coordination request.
    fn handle(&mut self, req: Request) -> Response;

    /// Answer one request that arrived with a caller span context. Services
    /// that trace their work override this to parent handler spans under
    /// `ctx.span`; the default ignores the context.
    fn handle_traced(&mut self, req: Request, _ctx: SpanContext) -> Response {
        self.handle(req)
    }
}

/// Blanket adapter: any closure with the right shape is a service. Handy in
/// tests and for wiring simulator state in without a newtype.
impl<F> DomainService for F
where
    F: FnMut(Request) -> Response,
{
    fn handle(&mut self, req: Request) -> Response {
        self(req)
    }
}

/// A transport that calls a local [`DomainService`] directly — zero-copy
/// loopback used by the coupled simulator, where both "domains" live in one
/// process but still speak the protocol vocabulary.
pub struct Loopback<S: DomainService>(pub S);

impl<S: DomainService> Transport for Loopback<S> {
    fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        Ok(self.0.handle(req.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MateStatus;

    #[test]
    fn closure_is_a_service() {
        let mut svc = |req: Request| match req {
            Request::Ping => Response::Pong,
            _ => Response::Error("unsupported".into()),
        };
        assert_eq!(svc.handle(Request::Ping), Response::Pong);
        assert!(matches!(
            svc.handle(Request::GetMateStatus {
                job: cosched_workload::JobId(1)
            }),
            Response::Error(_)
        ));
    }

    #[test]
    fn loopback_roundtrips() {
        let mut t = Loopback(|_req: Request| Response::MateStatus(MateStatus::Queuing));
        let resp = t.call(&Request::Ping).unwrap();
        assert_eq!(resp.status(), MateStatus::Queuing);
    }

    #[test]
    fn errors_display() {
        assert!(ProtoError::Timeout.to_string().contains("timed out"));
        assert!(ProtoError::Disconnected("x".into())
            .to_string()
            .contains("x"));
        assert!(ProtoError::Protocol("y".into()).to_string().contains("y"));
    }
}
