//! Protocol vocabulary: the four coordination RPCs of the paper plus a
//! liveness probe.

use cosched_obs::trace::RpcKind;
use cosched_workload::{JobId, MateRef};
use serde::{Deserialize, Serialize};

/// Status of a mate job as reported by its domain — the values Algorithm 1
/// switches on (`holding`, `queuing`, `unsubmitted`, `unknown`), extended
/// with the terminal states a real deployment also needs to express.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MateStatus {
    /// Ready with nodes allocated, waiting for this caller's job.
    Holding,
    /// Waiting in the remote queue.
    Queuing,
    /// Known pairing but the mate has not been submitted yet.
    Unsubmitted,
    /// Already executing (the caller missed the rendezvous; it should start
    /// immediately — co-execution is already in progress).
    Running,
    /// Already finished.
    Finished,
    /// The remote cannot determine the status (mate failed alone,
    /// Algorithm 1 line 25): the caller starts normally.
    Unknown,
}

/// A coordination request, sent by the domain whose job just became ready.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Request {
    /// `remote.get_mate_job(j)`: does the remote know a mate for local job
    /// `for_job`? (Algorithm 1, line 2.)
    GetMateJob {
        /// The local job asking.
        for_job: JobId,
    },
    /// `remote.get_mate_status(k)`: status of remote job `job`
    /// (Algorithm 1, line 4).
    GetMateStatus {
        /// The remote mate's id.
        job: JobId,
    },
    /// `remote.try_start_mate(k)`: run an extra scheduling iteration and
    /// start `job` if possible (Algorithm 1, line 12).
    TryStartMate {
        /// The remote mate's id.
        job: JobId,
    },
    /// `remote.start_job(k)`: the caller's job is starting; start the
    /// holding mate `job` too (Algorithm 1, line 8).
    StartJob {
        /// The remote mate's id.
        job: JobId,
    },
    /// Liveness probe.
    Ping,
    /// N-way extension: could `job` start right now if asked? A
    /// non-committing version of [`Request::TryStartMate`], used by the
    /// N-way rendezvous to check *all* group members before starting any.
    CanStart {
        /// The remote member's id.
        job: JobId,
    },
}

impl Request {
    /// The observability tag for this request variant (trace events and
    /// per-kind metrics).
    pub fn trace_kind(&self) -> RpcKind {
        match self {
            Request::GetMateJob { .. } => RpcKind::GetMateJob,
            Request::GetMateStatus { .. } => RpcKind::GetMateStatus,
            Request::TryStartMate { .. } => RpcKind::TryStartMate,
            Request::StartJob { .. } => RpcKind::StartJob,
            Request::Ping => RpcKind::Ping,
            Request::CanStart { .. } => RpcKind::CanStart,
        }
    }
}

/// Response to a [`Request`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::GetMateJob`].
    MateJob(Option<MateRef>),
    /// Answer to [`Request::GetMateStatus`].
    MateStatus(MateStatus),
    /// Answer to [`Request::TryStartMate`] / [`Request::StartJob`]: whether
    /// the job is now running.
    Started(bool),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::CanStart`].
    CanStart(bool),
    /// The service could not process the request (e.g. unknown job in a
    /// `StartJob`); carries a human-readable reason. Callers treat this
    /// like an unknown status.
    Error(String),
}

impl Response {
    /// Convenience: interpret as a started flag, defaulting to `false` for
    /// mismatched or error responses (fail-safe: never double-start).
    pub fn started(&self) -> bool {
        matches!(self, Response::Started(true))
    }

    /// Convenience: interpret as a status, mapping anything unexpected to
    /// [`MateStatus::Unknown`] per the fault-tolerance rule.
    pub fn status(&self) -> MateStatus {
        match self {
            Response::MateStatus(s) => *s,
            _ => MateStatus::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::MachineId;

    fn roundtrip<T: Serialize + for<'d> Deserialize<'d> + PartialEq + std::fmt::Debug>(v: &T) {
        let s = serde_json::to_string(v).unwrap();
        let back: T = serde_json::from_str(&s).unwrap();
        assert_eq!(v, &back);
    }

    #[test]
    fn requests_roundtrip_json() {
        roundtrip(&Request::GetMateJob { for_job: JobId(7) });
        roundtrip(&Request::GetMateStatus { job: JobId(8) });
        roundtrip(&Request::TryStartMate { job: JobId(9) });
        roundtrip(&Request::StartJob { job: JobId(10) });
        roundtrip(&Request::Ping);
        roundtrip(&Request::CanStart { job: JobId(11) });
    }

    #[test]
    fn responses_roundtrip_json() {
        roundtrip(&Response::MateJob(Some(MateRef {
            machine: MachineId(1),
            job: JobId(3),
        })));
        roundtrip(&Response::MateJob(None));
        for s in [
            MateStatus::Holding,
            MateStatus::Queuing,
            MateStatus::Unsubmitted,
            MateStatus::Running,
            MateStatus::Finished,
            MateStatus::Unknown,
        ] {
            roundtrip(&Response::MateStatus(s));
        }
        roundtrip(&Response::Started(true));
        roundtrip(&Response::Pong);
        roundtrip(&Response::CanStart(false));
        roundtrip(&Response::Error("boom".into()));
    }

    #[test]
    fn started_helper_is_fail_safe() {
        assert!(Response::Started(true).started());
        assert!(!Response::Started(false).started());
        assert!(!Response::Pong.started());
        assert!(!Response::Error("x".into()).started());
    }

    #[test]
    fn status_helper_defaults_to_unknown() {
        assert_eq!(
            Response::MateStatus(MateStatus::Holding).status(),
            MateStatus::Holding
        );
        assert_eq!(Response::Pong.status(), MateStatus::Unknown);
        assert_eq!(Response::Error("x".into()).status(), MateStatus::Unknown);
    }
}
