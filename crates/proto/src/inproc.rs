//! In-process transport over crossbeam channels.
//!
//! Useful for tests and for deployments where both resource managers run in
//! one supervisor process. The channel pair gives the same call/serve split
//! as TCP — including timeouts — without sockets.

use crate::message::{Request, Response};
use crate::span::{SpanContext, TracedRequest};
use crate::transport::{DomainService, ProtoError, Transport};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use std::time::Duration;

/// Client half of an in-process link.
pub struct InprocClient {
    tx: Sender<TracedRequest>,
    rx: Receiver<Response>,
    timeout: Duration,
}

/// Server half of an in-process link.
pub struct InprocServer {
    rx: Receiver<TracedRequest>,
    tx: Sender<Response>,
}

/// Create a connected client/server pair. `timeout` bounds each client call.
pub fn pair(timeout: Duration) -> (InprocClient, InprocServer) {
    let (req_tx, req_rx) = bounded(16);
    let (resp_tx, resp_rx) = bounded(16);
    (
        InprocClient {
            tx: req_tx,
            rx: resp_rx,
            timeout,
        },
        InprocServer {
            rx: req_rx,
            tx: resp_tx,
        },
    )
}

impl Transport for InprocClient {
    fn call(&mut self, req: &Request) -> Result<Response, ProtoError> {
        self.call_with(req, SpanContext::NONE)
    }

    fn call_with(&mut self, req: &Request, ctx: SpanContext) -> Result<Response, ProtoError> {
        self.tx
            .send(TracedRequest {
                ctx,
                req: req.clone(),
            })
            .map_err(|_| ProtoError::Disconnected("server dropped".into()))?;
        match self.rx.recv_timeout(self.timeout) {
            Ok(resp) => Ok(resp),
            Err(RecvTimeoutError::Timeout) => Err(ProtoError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                Err(ProtoError::Disconnected("server dropped".into()))
            }
        }
    }
}

impl InprocServer {
    /// Serve exactly one request (blocking). Returns `false` when the client
    /// side is gone.
    pub fn serve_once<S: DomainService>(&self, service: &mut S) -> bool {
        match self.rx.recv() {
            Ok(env) => {
                let resp = service.handle_traced(env.req, env.ctx);
                self.tx.send(resp).is_ok()
            }
            Err(_) => false,
        }
    }

    /// Serve until the client disconnects.
    pub fn serve<S: DomainService>(&self, service: &mut S) {
        while self.serve_once(service) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::MateStatus;
    use std::thread;

    #[test]
    fn call_roundtrips_through_thread() {
        let (mut client, server) = pair(Duration::from_secs(1));
        let handle = thread::spawn(move || {
            let mut svc = |req: Request| match req {
                Request::Ping => Response::Pong,
                Request::GetMateStatus { .. } => Response::MateStatus(MateStatus::Holding),
                _ => Response::Error("nope".into()),
            };
            server.serve(&mut svc);
        });
        assert_eq!(client.call(&Request::Ping).unwrap(), Response::Pong);
        let resp = client
            .call(&Request::GetMateStatus {
                job: cosched_workload::JobId(1),
            })
            .unwrap();
        assert_eq!(resp.status(), MateStatus::Holding);
        drop(client);
        handle.join().unwrap();
    }

    #[test]
    fn timeout_when_server_is_silent() {
        let (mut client, _server) = pair(Duration::from_millis(20));
        // Keep `_server` alive but never serve: the call must time out.
        let err = client.call(&Request::Ping).unwrap_err();
        assert!(matches!(err, ProtoError::Timeout), "{err}");
    }

    #[test]
    fn disconnected_when_server_dropped() {
        let (mut client, server) = pair(Duration::from_secs(1));
        drop(server);
        let err = client.call(&Request::Ping).unwrap_err();
        assert!(matches!(err, ProtoError::Disconnected(_)), "{err}");
    }
}
