//! Span-context propagation: ties a remote handler's work to the caller's
//! causal span.
//!
//! The coupled driver assigns deterministic span ids (see
//! `cosched_obs::trace`); when a request crosses a transport the caller's
//! RPC-span id rides along in a [`TracedRequest`] envelope so the remote
//! side can parent its handler span under the caller's span. The context is
//! part of the *frame*, not the [`Request`] enum,
//! so the protocol vocabulary stays exactly the paper's four RPCs plus the
//! probe.

use crate::message::Request;
use serde::{Deserialize, Serialize};

/// The caller's span id carried across a transport. `span == 0` (the
/// default) means "no active span" — tracing disabled or an untraced caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpanContext {
    /// The caller-side RPC span id, or 0 for none.
    pub span: u64,
}

impl SpanContext {
    /// The empty context (no active span).
    pub const NONE: SpanContext = SpanContext { span: 0 };

    /// A context carrying `span` as the parent for remote handler work.
    pub fn new(span: u64) -> SpanContext {
        SpanContext { span }
    }

    /// True when no span is propagated.
    pub fn is_none(&self) -> bool {
        self.span == 0
    }
}

/// The on-wire request envelope: the request plus the caller's span
/// context. This is what TCP and in-process transports actually carry;
/// untraced callers send [`SpanContext::NONE`] (`span: 0`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TracedRequest {
    /// Caller span context (`span: 0` ⇒ none).
    pub ctx: SpanContext,
    /// The actual protocol request.
    pub req: Request,
}

impl TracedRequest {
    /// Wrap a request with no span context.
    pub fn untraced(req: Request) -> TracedRequest {
        TracedRequest {
            ctx: SpanContext::NONE,
            req,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::JobId;

    #[test]
    fn envelope_roundtrips() {
        let env = TracedRequest {
            ctx: SpanContext::new(42),
            req: Request::GetMateStatus { job: JobId(7) },
        };
        let s = serde_json::to_string(&env).unwrap();
        let back: TracedRequest = serde_json::from_str(&s).unwrap();
        assert_eq!(back, env);

        let bare = TracedRequest::untraced(Request::Ping);
        assert!(bare.ctx.is_none());
        let s = serde_json::to_string(&bare).unwrap();
        let back: TracedRequest = serde_json::from_str(&s).unwrap();
        assert_eq!(back, bare);
    }
}
