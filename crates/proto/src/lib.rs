//! The lightweight coordination protocol between scheduling domains.
//!
//! The paper's coscheduling "is built on top of a lightweight protocol for
//! coordination between policy domains without manual intervention": four
//! RPCs (`get_mate_job`, `get_mate_status`, `try_start_mate`, `start_job`)
//! that one resource manager invokes on the other. The protocol is what lets
//! "jobs submitted to a compute resource running LSF … be coscheduled with
//! jobs submitted to an analysis resource running PBS" — each side only
//! needs to expose these calls.
//!
//! This crate provides:
//!
//! * [`message`] — the typed request/response vocabulary, serde-serializable;
//! * [`frame`] — length-prefixed wire framing with an incremental decoder;
//! * [`transport`] — the client-side [`transport::Transport`] abstraction
//!   and the [`transport::DomainService`] trait a resource manager
//!   implements to answer calls;
//! * [`inproc`] — an in-process channel transport for tests and
//!   single-process deployments;
//! * [`tcp`] — a TCP transport and a threaded server, with timeouts that
//!   surface as [`transport::ProtoError::Timeout`] so the caller can apply
//!   the paper's fault-tolerance rule (remote unknown ⇒ start normally).

//! * [`span`] — span-context propagation: requests travel in a
//!   [`span::TracedRequest`] envelope carrying the caller's causal span id,
//!   so remote handler work parents under the caller's span.

pub mod frame;
pub mod inproc;
pub mod instrument;
pub mod message;
pub mod span;
pub mod tcp;
pub mod transport;

pub use instrument::{InstrumentedTransport, TransportMetrics};
pub use message::{MateStatus, Request, Response};
pub use span::{SpanContext, TracedRequest};
pub use transport::{DomainService, ProtoError, Transport};
