//! Command implementations.

use crate::args::Parsed;
use cosched_bench::{bench_campaign, CampaignReport, Scale, SweepKind};
use cosched_core::{
    CoschedConfig, CoupledConfig, CoupledSimulation, RunStats, Scheme, SchemeCombo,
};
use cosched_metrics::table::{num, pct, Table};
use cosched_obs::metrics::HistogramSnapshot;
use cosched_obs::monitor::{StreamingMonitor, TelemetrySnapshot};
use cosched_obs::{
    default_rules, read_trace_file, AlertRule, JsonlSink, MetricsSnapshot, PhaseSnapshot,
    SinkObserver, TeeObserver,
};
use cosched_sched::MachineConfig;
use cosched_sim::{SimDuration, SimRng};
use cosched_telemetry::{
    http_get, render_dashboard, Health, MonitorProvider, TelemetryProvider, TelemetryServer,
};
use cosched_workload::{
    pairing, swf, JobId, MachineId, MachineModel, MateRef, Trace, TraceGenerator,
};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A pairs file: the association sidecar SWF cannot carry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PairsFile {
    /// `(job id on machine A, job id on machine B)` pairs.
    pub pairs: Vec<(u64, u64)>,
}

/// Dispatch a parsed invocation, writing human output to `out`. Returns an
/// error message for the caller to print to stderr.
pub fn run_command(parsed: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    match parsed.command.as_str() {
        "generate" => cmd_generate(parsed, out),
        "pair" => cmd_pair(parsed, out),
        "simulate" => cmd_simulate(parsed, out),
        "analyze" => cmd_analyze(parsed, out),
        "bench" => cmd_bench(parsed, out),
        "watch" => cmd_watch(parsed, out),
        "help" | "--help" | "-h" => {
            let _ = writeln!(out, "{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// Boolean switches (options that take no value) recognised by the CLI;
/// `main` passes this to [`crate::args::parse_with_flags`].
pub const FLAGS: &[&str] = &["metrics", "once"];

/// Usage text.
pub const USAGE: &str = "\
cosched — coupled-system job coscheduling toolkit

USAGE:
  cosched generate --machine <intrepid|eureka> --out <trace.swf>
                   [--days N] [--util U] [--seed S]
  cosched analyze  --trace <trace.swf> [--capacity N]
  cosched pair     --a <a.swf> --b <b.swf> --out <pairs.json>
                   [--window-secs W] [--proportion P] [--seed S]
  cosched simulate --a <a.swf> --b <b.swf> --pairs <pairs.json>
                   [--combo <HH|HY|YH|YY|off>] [--capacity-a N] [--capacity-b N]
                   [--release-mins M] [--json <report.json>]
                   [--trace-out <trace.jsonl>] [--metrics]
                   [--telemetry <host:port>] [--alerts <rules>]
                   [--telemetry-linger-secs S]

Live telemetry (streaming monitor + embedded HTTP endpoints):
  --telemetry 127.0.0.1:9184 serves GET /metrics (Prometheus 0.0.4),
  /healthz (liveness), and /state (JSON snapshot) while the run executes;
  --alerts takes \";\"-separated rules like
  \"pressure: held_node_proportion > 0.4 for 10m; machine0.queued >= 50\"
  (default rules apply when omitted).
  cosched watch <host:port> [--interval-secs S] [--once]
      polls /state and renders a refreshing terminal dashboard.

Trace analysis (over JSONL traces from `simulate --trace-out`):
  cosched analyze timeline      --trace <t.jsonl> [--width N] [--rows N] [--capacity N]
  cosched analyze attribute     --trace <t.jsonl>
  cosched analyze critical-path --trace <t.jsonl>
  cosched analyze diff          --a <t1.jsonl> --b <t2.jsonl>
  cosched analyze export    --report <report.json> [--out <metrics.prom>]
  cosched analyze export    --format perfetto --trace <t.jsonl> [--out <t.json>]

Benchmarks:
  cosched bench campaign [--scale <smoke|quick|full>] [--threads 1,2,4]
                         [--sweep <load|prop|both>] [--out <BENCH_sim.json>]
                         [--check <BENCH_sim.json>] [--tolerance X]
                         [--telemetry <host:port>]";

fn cmd_generate(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.no_subcommand("generate")?;
    p.allow_only(&["machine", "out", "days", "util", "seed"])?;
    let model = match p.require("machine")? {
        "intrepid" => MachineModel::intrepid(),
        "eureka" => MachineModel::eureka(),
        other => return Err(format!("unknown machine model {other:?} (intrepid|eureka)")),
    };
    let out_path = p.require("out")?.to_string();
    let days: u64 = p.get_or("days", 30)?;
    let util: f64 = p.get_or("util", 0.5)?;
    let seed: u64 = p.get_or("seed", 1)?;

    let mut rng = SimRng::seed_from_u64(seed);
    let trace = TraceGenerator::new(model, MachineId(0))
        .span(SimDuration::from_days(days))
        .target_utilization(util)
        .generate(&mut rng);
    let file =
        std::fs::File::create(&out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    swf::write_swf(std::io::BufWriter::new(file), &trace)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let _ = writeln!(
        out,
        "wrote {} jobs ({} days, offered util {:.3}) to {}",
        trace.len(),
        days,
        trace.offered_utilization(trace.max_size().max(1)),
        out_path
    );
    Ok(())
}

fn cmd_analyze(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    match p.subcommand.as_deref() {
        None => cmd_analyze_swf(p, out),
        Some("timeline") => cmd_analyze_timeline(p, out),
        Some("attribute") => cmd_analyze_attribute(p, out),
        Some("critical-path") => cmd_analyze_critical(p, out),
        Some("diff") => cmd_analyze_diff(p, out),
        Some("export") => cmd_analyze_export(p, out),
        Some(other) => Err(format!(
            "unknown analyze subcommand {other:?} \
             (timeline|attribute|critical-path|diff|export, \
             or none for SWF workload stats)"
        )),
    }
}

/// Parse a JSONL event trace and reconstruct per-job lifecycles. Parse
/// failures carry `path:line`; reconstruction failures carry the record
/// index and sim time.
fn load_lifecycles(path: &str) -> Result<cosched_trace::LifecycleSet, String> {
    let records = read_trace_file(path)?;
    cosched_trace::LifecycleSet::from_records(&records)
        .map_err(|e| format!("{path}: inconsistent trace: {e}"))
}

fn cmd_analyze_timeline(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&["trace", "width", "rows", "capacity"])?;
    let path = p.require("trace")?;
    let width: usize = p.get_or("width", 100)?;
    let rows: usize = p.get_or("rows", 20)?;
    let capacity: Option<u64> = match p.get("capacity") {
        Some(raw) => Some(raw.parse().map_err(|_| format!("bad --capacity {raw:?}"))?),
        None => None,
    };
    let set = load_lifecycles(path)?;
    let _ = writeln!(
        out,
        "timeline of {path} ({} records, {} jobs, horizon {}s)",
        set.records,
        set.jobs.len(),
        set.horizon
    );
    let _ = write!(
        out,
        "{}",
        cosched_trace::render_utilization(&set, width, capacity)
    );
    let _ = write!(out, "{}", cosched_trace::render_gantt(&set, width, rows));
    Ok(())
}

fn cmd_analyze_attribute(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&["trace"])?;
    let path = p.require("trace")?;
    let set = load_lifecycles(path)?;
    let report = cosched_trace::AttributionReport::from_lifecycles(&set);
    let _ = write!(out, "{report}");
    Ok(())
}

fn cmd_analyze_critical(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&["trace"])?;
    let path = p.require("trace")?;
    let records = read_trace_file(path)?;
    let report = cosched_trace::CriticalPathReport::from_records(&records)
        .map_err(|e| format!("{path}: {e}"))?;
    let _ = writeln!(
        out,
        "critical paths of {path} ({} completed pair(s), {} unfinished)",
        report.pairs.len(),
        report.unfinished
    );
    if report.pairs.is_empty() && report.unfinished == 0 {
        let _ = writeln!(
            out,
            "no pair spans in this trace — record it with `simulate --trace-out`"
        );
        return Ok(());
    }
    let _ = write!(out, "{report}");
    Ok(())
}

fn cmd_analyze_diff(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&["a", "b"])?;
    let a = load_lifecycles(p.require("a")?)?;
    let b = load_lifecycles(p.require("b")?)?;
    let report = cosched_trace::DiffReport::compare(&a, &b);
    let _ = write!(out, "{report}");
    Ok(())
}

fn cmd_analyze_export(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&["report", "out", "format", "trace"])?;
    match p.get("format").unwrap_or("prom") {
        "prom" => cmd_analyze_export_prom(p, out),
        "perfetto" => cmd_analyze_export_perfetto(p, out),
        other => Err(format!("unknown export format {other:?} (prom|perfetto)")),
    }
}

/// Export a JSONL trace as Chrome trace-event JSON for Perfetto.
fn cmd_analyze_export_perfetto(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    let path = p.require("trace")?;
    let records = read_trace_file(path)?;
    let json = cosched_trace::render_perfetto(&records)
        .map_err(|e| format!("{path}: malformed span records: {e}"))?;
    match p.get("out") {
        Some(dest) => {
            std::fs::write(dest, &json).map_err(|e| format!("cannot write {dest}: {e}"))?;
            let _ = writeln!(
                out,
                "wrote {} bytes of trace-event JSON to {dest} \
                 (load in ui.perfetto.dev or chrome://tracing)",
                json.len()
            );
        }
        None => {
            let _ = write!(out, "{json}");
        }
    }
    Ok(())
}

/// Export a simulation report's metrics registry as Prometheus text.
fn cmd_analyze_export_prom(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    let path = p.require("report")?;
    let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: serde_json::Value =
        serde_json::from_str(&raw).map_err(|e| format!("bad report {path}: {e}"))?;
    let metrics = value
        .get("metrics")
        .cloned()
        .ok_or_else(|| format!("{path} has no \"metrics\" section (written by simulate --json)"))?;
    let snapshot: MetricsSnapshot = serde_json::from_value(metrics)
        .map_err(|e| format!("{path}: metrics section does not parse: {e}"))?;
    let text = cosched_trace::render_prometheus(&snapshot);
    match p.get("out") {
        Some(dest) => {
            std::fs::write(dest, &text).map_err(|e| format!("cannot write {dest}: {e}"))?;
            let _ = writeln!(
                out,
                "wrote {} bytes of Prometheus text to {dest}",
                text.len()
            );
        }
        None => {
            let _ = write!(out, "{text}");
        }
    }
    Ok(())
}

/// Poll a telemetry endpoint and render the terminal dashboard. With
/// `--once` a single frame is printed (CI and tests); otherwise the screen
/// is cleared and redrawn every `--interval-secs` until the run finishes.
fn cmd_watch(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&["interval-secs", "once"])?;
    let addr = p
        .subcommand
        .as_deref()
        .ok_or("watch needs an address: cosched watch <host:port> [--once]")?;
    let interval: u64 = p.get_or("interval-secs", 2)?;
    if interval == 0 {
        return Err("bad --interval-secs 0 (must be positive)".to_string());
    }
    let once = p.flag("once");
    loop {
        let (code, body) = http_get(addr, "/state", Duration::from_secs(5))?;
        if code != 200 {
            return Err(format!("{addr}/state answered HTTP {code}"));
        }
        let snap: TelemetrySnapshot = serde_json::from_str(&body)
            .map_err(|e| format!("{addr}/state is not a telemetry snapshot: {e}"))?;
        if !once {
            // Clear screen and home the cursor between frames.
            let _ = write!(out, "\x1b[2J\x1b[H");
        }
        let _ = write!(out, "{}", render_dashboard(&snap, addr));
        if once || snap.done {
            return Ok(());
        }
        std::thread::sleep(Duration::from_secs(interval));
    }
}

/// Shared campaign progress state behind the bench telemetry endpoint.
#[derive(Debug, Default)]
struct CampaignProgressState {
    sweeps_total: u64,
    sweeps_done: u64,
    current: String,
    cells: u64,
    done: bool,
}

/// [`TelemetryProvider`] for `bench campaign --telemetry`: coarse progress
/// (sweeps completed, cells simulated) rather than per-event telemetry —
/// campaign cells run in worker threads with their own observers.
#[derive(Debug, Clone, Default)]
struct CampaignProgress {
    state: Arc<Mutex<CampaignProgressState>>,
}

impl CampaignProgress {
    fn update(&self, f: impl FnOnce(&mut CampaignProgressState)) {
        f(&mut self.state.lock().expect("progress lock"));
    }
}

impl TelemetryProvider for CampaignProgress {
    fn metrics_text(&self) -> String {
        let st = self.state.lock().expect("progress lock");
        let mut w = cosched_trace::PromWriter::new();
        w.gauge(
            "cosched_bench_sweeps_total",
            "Sweeps requested for this campaign.",
            &[],
            st.sweeps_total as f64,
        );
        w.gauge(
            "cosched_bench_sweeps_done",
            "Sweeps completed so far.",
            &[],
            st.sweeps_done as f64,
        );
        w.gauge(
            "cosched_bench_cells_total",
            "Simulation cells completed across finished sweeps.",
            &[],
            st.cells as f64,
        );
        w.gauge(
            "cosched_bench_done",
            "1 once the whole campaign has finished.",
            &[],
            if st.done { 1.0 } else { 0.0 },
        );
        w.finish()
    }

    fn state_json(&self) -> String {
        let st = self.state.lock().expect("progress lock");
        format!(
            "{{\"sweeps_total\":{},\"sweeps_done\":{},\"current\":{:?},\"cells\":{},\"done\":{}}}",
            st.sweeps_total, st.sweeps_done, st.current, st.cells, st.done
        )
    }

    fn health(&self) -> Health {
        let st = self.state.lock().expect("progress lock");
        Health {
            ok: true,
            status: if st.done { "done" } else { "running" }.to_string(),
            done: st.done,
            drained: st.done,
            deadlocked: false,
        }
    }
}

fn cmd_bench(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    match p.subcommand.as_deref() {
        Some("campaign") => cmd_bench_campaign(p, out),
        Some(other) => Err(format!("unknown bench subcommand {other:?} (campaign)")),
        None => Err("bench needs a subcommand (campaign)".to_string()),
    }
}

/// The committed benchmark artifact: one record per sweep, plus enough
/// host context to interpret the numbers later.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BenchSimFile {
    /// Artifact schema marker.
    bench: String,
    /// Scale label the campaign ran at.
    scale: String,
    /// Hardware threads available on the host that produced the numbers.
    hardware_threads: usize,
    /// One report per sweep (`load`, `prop`).
    campaigns: Vec<CampaignReport>,
}

/// Run the parallel campaign benchmark: every requested sweep at 1 thread
/// (the reference) and each additional worker count, verifying the
/// parallel runs are outcome-identical to serial and recording wall-clock,
/// throughput, and one representative cell's phase profile.
fn cmd_bench_campaign(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&[
        "scale",
        "threads",
        "sweep",
        "out",
        "check",
        "tolerance",
        "telemetry",
    ])?;
    let scale_label = p.get("scale").unwrap_or("smoke");
    let scale = match scale_label {
        "smoke" => Scale::smoke(),
        "quick" => Scale::quick(),
        "full" => Scale::full(),
        other => return Err(format!("unknown scale {other:?} (smoke|quick|full)")),
    };
    let threads: Vec<usize> = p
        .get("threads")
        .unwrap_or("1,2,4")
        .split(',')
        .map(|t| {
            t.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n > 0)
                .ok_or_else(|| format!("bad --threads entry {t:?} (positive integers)"))
        })
        .collect::<Result<_, _>>()?;
    let kinds: &[SweepKind] = match p.get("sweep").unwrap_or("both") {
        "load" => &[SweepKind::Load],
        "prop" => &[SweepKind::Proportion],
        "both" => &[SweepKind::Load, SweepKind::Proportion],
        other => return Err(format!("unknown sweep {other:?} (load|prop|both)")),
    };

    let hardware_threads = std::thread::available_parallelism().map_or(1, usize::from);

    // Optional coarse progress endpoint: sweeps completed and cells
    // simulated, scrapable while the campaign runs.
    let progress = CampaignProgress::default();
    progress.update(|st| st.sweeps_total = kinds.len() as u64);
    let telemetry = match p.get("telemetry") {
        Some(addr) => {
            let server = TelemetryServer::spawn(addr, progress.clone())
                .map_err(|e| format!("cannot serve telemetry on {addr}: {e}"))?;
            let _ = writeln!(
                out,
                "telemetry: serving /metrics /healthz /state on http://{}",
                server.addr()
            );
            Some(server)
        }
        None => None,
    };

    let mut campaigns = Vec::new();
    for &kind in kinds {
        progress.update(|st| st.current = kind.label().to_string());
        let _ = writeln!(
            out,
            "campaign {} (scale {scale_label}: {} days x {} seeds, {} hardware threads)",
            kind.label(),
            scale.days,
            scale.seeds,
            hardware_threads
        );
        let (_points, report) = bench_campaign(kind, scale, &threads);
        for t in &report.timings {
            let _ = writeln!(
                out,
                "  {:>2} thread(s): {:>8.2}s wall  {:>7.2} cells/s  speedup {:>5.2}x",
                t.threads, t.wall_clock_secs, t.cells_per_sec, t.speedup_vs_serial
            );
        }
        let _ = writeln!(
            out,
            "  deterministic: {} ({} cells)",
            report.deterministic, report.cells
        );
        if !report.deterministic {
            return Err(format!(
                "campaign {} parallel outcomes diverged from serial",
                kind.label()
            ));
        }
        progress.update(|st| {
            st.sweeps_done += 1;
            st.cells += report.cells as u64;
        });
        campaigns.push(report);
    }
    progress.update(|st| st.done = true);

    // Regression gate: compare against a committed baseline artifact.
    // Wall-clock is tolerance-based (CI hosts are noisy); a determinism
    // mismatch is a hard failure regardless of timing.
    if let Some(baseline_path) = p.get("check") {
        let tolerance: f64 = p.get_or("tolerance", 3.0)?;
        if tolerance <= 0.0 {
            return Err(format!("bad --tolerance {tolerance} (must be positive)"));
        }
        let raw = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read baseline {baseline_path}: {e}"))?;
        let baseline: BenchSimFile =
            serde_json::from_str(&raw).map_err(|e| format!("bad baseline {baseline_path}: {e}"))?;
        if baseline.scale != scale_label {
            return Err(format!(
                "baseline {baseline_path} was recorded at scale {:?} but this run is {scale_label:?} \
                 — rerun with --scale {} or regenerate the baseline",
                baseline.scale, baseline.scale
            ));
        }
        for current in &campaigns {
            let base = baseline
                .campaigns
                .iter()
                .find(|c| c.sweep == current.sweep)
                .ok_or_else(|| {
                    format!(
                        "baseline {baseline_path} has no {:?} sweep — regenerate it with --sweep both",
                        current.sweep
                    )
                })?;
            let ratio = cosched_bench::check_campaign(base, current, tolerance)?;
            let _ = writeln!(
                out,
                "  check {}: serial wall-clock {ratio:.2}x of baseline (tolerance {tolerance:.1}x) — ok",
                current.sweep
            );
        }
    }

    if let Some(dest) = p.get("out") {
        let file = BenchSimFile {
            bench: "campaign".to_string(),
            scale: scale_label.to_string(),
            hardware_threads,
            campaigns,
        };
        let json = serde_json::to_string_pretty(&file)
            .map_err(|e| format!("cannot serialize benchmark report: {e}"))?;
        std::fs::write(dest, json.as_bytes()).map_err(|e| format!("cannot write {dest}: {e}"))?;
        let _ = writeln!(out, "wrote benchmark report to {dest}");
    }
    drop(telemetry);
    Ok(())
}

fn cmd_analyze_swf(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.allow_only(&["trace", "capacity"])?;
    let path = p.require("trace")?;
    let trace = load_trace(path, MachineId(0))?;
    let stats = cosched_workload::stats::trace_stats(&trace);
    let _ = write!(
        out,
        "{}",
        cosched_workload::stats::render_stats(path, &stats)
    );
    if let Some(raw) = p.get("capacity") {
        let capacity: u64 = raw.parse().map_err(|_| format!("bad --capacity {raw:?}"))?;
        let _ = writeln!(
            out,
            "  offered utilization @ {capacity} nodes: {:.3}",
            trace.offered_utilization(capacity)
        );
        let _ = writeln!(
            out,
            "  daily load unevenness: {:.3}",
            cosched_workload::stats::daily_load_unevenness(&trace)
        );
    }
    Ok(())
}

fn load_trace(path: &str, machine: MachineId) -> Result<Trace, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let (trace, skipped) = swf::read_swf(std::io::BufReader::new(file), machine)
        .map_err(|e| format!("cannot parse {path}: {e}"))?;
    if skipped > 0 {
        eprintln!("note: skipped {skipped} unrunnable records in {path}");
    }
    Ok(trace)
}

fn cmd_pair(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.no_subcommand("pair")?;
    p.allow_only(&["a", "b", "out", "window-secs", "proportion", "seed"])?;
    let mut a = load_trace(p.require("a")?, MachineId(0))?;
    let mut b = load_trace(p.require("b")?, MachineId(1))?;
    let out_path = p.require("out")?.to_string();
    let window = SimDuration::from_secs(p.get_or("window-secs", 120)?);
    let n = match p.get("proportion") {
        Some(raw) => {
            let proportion: f64 = raw
                .parse()
                .map_err(|_| format!("bad --proportion {raw:?}"))?;
            let mut rng = SimRng::seed_from_u64(p.get_or("seed", 1)?);
            pairing::pair_exact_proportion(&mut a, &mut b, proportion, window, &mut rng)
        }
        None => pairing::pair_by_window(&mut a, &mut b, window),
    };
    let pairs = PairsFile {
        pairs: a
            .jobs()
            .iter()
            .filter_map(|j| j.mate.map(|m| (j.id.0, m.job.0)))
            .collect(),
    };
    let json = serde_json::to_string_pretty(&pairs).expect("pairs serialize");
    std::fs::write(&out_path, json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    let _ = writeln!(out, "associated {n} pairs → {out_path}");
    Ok(())
}

/// Apply a pairs file to freshly loaded traces.
pub fn apply_pairs(a: &mut Trace, b: &mut Trace, pairs: &PairsFile) -> Result<(), String> {
    for &(ja, jb) in &pairs.pairs {
        let (ma, mb) = (a.machine(), b.machine());
        let found_a = a.jobs_mut().iter_mut().find(|j| j.id == JobId(ja));
        match found_a {
            Some(j) => {
                j.mate = Some(MateRef {
                    machine: mb,
                    job: JobId(jb),
                })
            }
            None => return Err(format!("pairs file references missing job {ja} in trace A")),
        }
        let found_b = b.jobs_mut().iter_mut().find(|j| j.id == JobId(jb));
        match found_b {
            Some(j) => {
                j.mate = Some(MateRef {
                    machine: ma,
                    job: JobId(ja),
                })
            }
            None => return Err(format!("pairs file references missing job {jb} in trace B")),
        }
    }
    pairing::validate_pairing(a, b).map_err(|e| format!("invalid pairs file: {e}"))
}

/// JSON report shape for `simulate --json`.
#[derive(Debug, Serialize)]
struct JsonReport {
    combo: String,
    deadlocked: bool,
    pairs_synchronized: bool,
    max_pair_offset_secs: u64,
    intrepid_like: cosched_metrics::MachineSummary,
    eureka_like: cosched_metrics::MachineSummary,
    /// Deterministic run activity counters (holds, yields, RPC traffic …).
    stats: RunStats,
    /// Full deterministic metrics registry snapshot.
    metrics: MetricsSnapshot,
}

fn cmd_simulate(p: &Parsed, out: &mut dyn Write) -> Result<(), String> {
    p.no_subcommand("simulate")?;
    p.allow_only(&[
        "a",
        "b",
        "pairs",
        "combo",
        "capacity-a",
        "capacity-b",
        "release-mins",
        "json",
        "trace-out",
        "metrics",
        "telemetry",
        "alerts",
        "telemetry-linger-secs",
    ])?;
    let mut a = load_trace(p.require("a")?, MachineId(0))?;
    let mut b = load_trace(p.require("b")?, MachineId(1))?;
    if let Some(path) = p.get("pairs") {
        let raw = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let pairs: PairsFile =
            serde_json::from_str(&raw).map_err(|e| format!("bad pairs file {path}: {e}"))?;
        apply_pairs(&mut a, &mut b, &pairs)?;
    }
    let combo_raw = p.get("combo").unwrap_or("HY");
    let combo = match combo_raw {
        "HH" => Some(SchemeCombo::HH),
        "HY" => Some(SchemeCombo::HY),
        "YH" => Some(SchemeCombo::YH),
        "YY" => Some(SchemeCombo::YY),
        "off" => None,
        other => return Err(format!("bad --combo {other:?} (HH|HY|YH|YY|off)")),
    };
    let cap_a: u64 = p.get_or("capacity-a", a.max_size().max(1))?;
    let cap_b: u64 = p.get_or("capacity-b", b.max_size().max(1))?;
    let release: u64 = p.get_or("release-mins", 20)?;

    let mk_cosched = |scheme| {
        CoschedConfig::paper(scheme).with_release_period(Some(SimDuration::from_mins(release)))
    };
    let config = CoupledConfig {
        machines: [
            MachineConfig::flat("A", MachineId(0), cap_a),
            MachineConfig::flat("B", MachineId(1), cap_b),
        ],
        cosched: match combo {
            Some(c) => [mk_cosched(c.of(0)), mk_cosched(c.of(1))],
            None => [CoschedConfig::disabled(), CoschedConfig::disabled()],
        },
        max_events: 50_000_000,
    };
    // Optional live telemetry plane: a streaming monitor teed into the
    // observer chain plus an embedded HTTP server scraping it. The monitor
    // is a pure consumer, so attaching it changes neither the report nor
    // the primary trace bytes.
    let linger: u64 = p.get_or("telemetry-linger-secs", 0)?;
    let telemetry = match p.get("telemetry") {
        Some(addr) => {
            let rules = match p.get("alerts") {
                Some(spec) => AlertRule::parse_list(spec)?,
                None => default_rules(),
            };
            let monitor = StreamingMonitor::with_rules(rules).with_capacities(&[cap_a, cap_b]);
            let server = TelemetryServer::spawn(addr, MonitorProvider::new(monitor.clone()))
                .map_err(|e| format!("cannot serve telemetry on {addr}: {e}"))?;
            Some((monitor, server))
        }
        None => {
            for key in ["alerts", "telemetry-linger-secs"] {
                if p.get(key).is_some() {
                    return Err(format!("--{key} requires --telemetry <host:port>"));
                }
            }
            None
        }
    };
    if let Some((_, server)) = &telemetry {
        let _ = writeln!(
            out,
            "telemetry: serving /metrics /healthz /state on http://{}",
            server.addr()
        );
    }

    // With --trace-out the run streams JSONL trace records to a file; the
    // deterministic report is identical either way (observers are pure
    // consumers), so all branches reduce to the same artifact tuple. When
    // both a trace sink and a monitor are attached, the sink rides first in
    // the tee so the primary trace is written byte-for-byte as without
    // telemetry.
    let (report, profile, rpc_latency, trace_note) = match (p.get("trace-out"), &telemetry) {
        (Some(path), Some((monitor, _))) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let sink = JsonlSink::new(std::io::BufWriter::new(file));
            let observer = TeeObserver::new(SinkObserver::new(sink), monitor.clone());
            let arts = CoupledSimulation::with_observer(config, [a, b], observer).run_traced();
            let lines = arts.observer.first.sink().lines();
            (
                arts.report,
                arts.profile,
                arts.rpc_latency_ns,
                Some((path.to_string(), lines)),
            )
        }
        (Some(path), None) => {
            let file =
                std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
            let sink = JsonlSink::new(std::io::BufWriter::new(file));
            let arts = CoupledSimulation::with_observer(config, [a, b], SinkObserver::new(sink))
                .run_traced();
            let lines = arts.observer.sink().lines();
            (
                arts.report,
                arts.profile,
                arts.rpc_latency_ns,
                Some((path.to_string(), lines)),
            )
        }
        (None, Some((monitor, _))) => {
            let arts =
                CoupledSimulation::with_observer(config, [a, b], monitor.clone()).run_traced();
            (arts.report, arts.profile, arts.rpc_latency_ns, None)
        }
        (None, None) => {
            let arts = CoupledSimulation::new(config, [a, b]).run_traced();
            (arts.report, arts.profile, arts.rpc_latency_ns, None)
        }
    };
    if let Some((monitor, server)) = &telemetry {
        monitor.finish(report.deadlocked);
        if linger > 0 {
            let _ = writeln!(
                out,
                "telemetry: run finished, serving final state on http://{} for {linger}s",
                server.addr()
            );
            std::thread::sleep(Duration::from_secs(linger));
        }
    }

    let mut table = Table::new(
        format!(
            "simulate: combo {} over {} + {} jobs",
            combo.map_or("off".into(), |c| c.label()),
            report.summaries[0].jobs,
            report.summaries[1].jobs
        ),
        &[
            "machine",
            "avg wait (min)",
            "avg slowdown",
            "avg sync (min)",
            "util",
            "loss rate",
        ],
    );
    for s in &report.summaries {
        table.row(&[
            s.machine.clone(),
            num(s.avg_wait_mins, 1),
            num(s.avg_slowdown, 2),
            num(s.avg_sync_mins, 1),
            pct(s.utilization),
            pct(s.lost_util_rate),
        ]);
    }
    let _ = write!(out, "{table}");
    let _ = writeln!(
        out,
        "pairs synchronized: {} (max offset {}); deadlocked: {}",
        report.all_pairs_synchronized(),
        report.max_pair_offset(),
        report.deadlocked
    );
    if let Some((path, lines)) = &trace_note {
        let _ = writeln!(out, "trace: {lines} records -> {path}");
    }
    if p.flag("metrics") {
        write_metrics(out, &report.metrics, &profile, &rpc_latency);
    }
    if let Some(path) = p.get("json") {
        let j = JsonReport {
            combo: combo.map_or("off".into(), |c| c.label()),
            deadlocked: report.deadlocked,
            pairs_synchronized: report.all_pairs_synchronized(),
            max_pair_offset_secs: report.max_pair_offset().as_secs(),
            intrepid_like: report.summaries[0].clone(),
            eureka_like: report.summaries[1].clone(),
            stats: report.stats,
            metrics: report.metrics.clone(),
        };
        std::fs::write(
            Path::new(path),
            serde_json::to_string_pretty(&j).expect("serialize"),
        )
        .map_err(|e| format!("cannot write {path}: {e}"))?;
        let _ = writeln!(out, "report written to {path}");
    }
    Ok(())
}

/// Render the deterministic metrics registry and the wall-clock profile for
/// `simulate --metrics`. Counters and sim-time histograms come from the
/// report (deterministic); phase timings and RPC latency are wall-clock and
/// clearly labelled as such.
fn write_metrics(
    out: &mut dyn Write,
    metrics: &MetricsSnapshot,
    profile: &[PhaseSnapshot],
    rpc_latency: &HistogramSnapshot,
) {
    let _ = writeln!(out, "metrics:");
    for c in &metrics.counters {
        let _ = writeln!(out, "  {:<32} {}", c.name, c.value);
    }
    for h in &metrics.histograms {
        let _ = writeln!(
            out,
            "  {:<32} count {} mean {:.1} min {} max {}",
            h.name,
            h.count,
            h.mean(),
            h.min,
            h.max
        );
    }
    let _ = writeln!(out, "wall-clock profile:");
    for ph in profile {
        let _ = writeln!(
            out,
            "  {:<32} calls {} total {}us mean {}ns max {}ns",
            ph.phase,
            ph.calls,
            ph.total_ns / 1_000,
            ph.mean_ns,
            ph.max_ns
        );
    }
    let _ = writeln!(
        out,
        "  {:<32} count {} mean {:.0}ns max {}ns",
        rpc_latency.name,
        rpc_latency.count,
        rpc_latency.mean(),
        rpc_latency.max
    );
}

/// Helper mapping a scheme letter for error-free config building (used by
/// tests).
pub fn scheme_of(letter: char) -> Option<Scheme> {
    match letter {
        'H' => Some(Scheme::Hold),
        'Y' => Some(Scheme::Yield),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn run(cmdline: &str) -> Result<String, String> {
        let parsed = crate::args::parse_with_flags(&argv(cmdline), FLAGS)?;
        let mut buf = Vec::new();
        run_command(&parsed, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf8 output"))
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("cosched-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn generate_pair_simulate_pipeline() {
        let a = tmp("pipe_a.swf");
        let b = tmp("pipe_b.swf");
        let pairs = tmp("pipe_pairs.json");
        let json = tmp("pipe_report.json");

        let out = run(&format!(
            "generate --machine eureka --out {a} --days 2 --util 0.5 --seed 3"
        ))
        .unwrap();
        assert!(out.contains("wrote"), "{out}");
        run(&format!(
            "generate --machine eureka --out {b} --days 2 --util 0.4 --seed 4"
        ))
        .unwrap();

        let out = run(&format!(
            "pair --a {a} --b {b} --out {pairs} --proportion 0.2 --seed 5"
        ))
        .unwrap();
        assert!(out.contains("associated"), "{out}");

        let out = run(&format!(
            "simulate --a {a} --b {b} --pairs {pairs} --combo YY --capacity-a 100 --capacity-b 100 --json {json}"
        ))
        .unwrap();
        assert!(out.contains("pairs synchronized: true"), "{out}");
        let report: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert_eq!(report["pairs_synchronized"], serde_json::Value::Bool(true));
        assert_eq!(report["combo"], "YY");
    }

    #[test]
    fn simulate_trace_out_and_metrics() {
        let a = tmp("obs_a.swf");
        let b = tmp("obs_b.swf");
        let pairs = tmp("obs_pairs.json");
        let trace1 = tmp("obs_trace1.jsonl");
        let trace2 = tmp("obs_trace2.jsonl");
        let json = tmp("obs_report.json");
        run(&format!(
            "generate --machine eureka --out {a} --days 2 --util 0.5 --seed 3"
        ))
        .unwrap();
        run(&format!(
            "generate --machine eureka --out {b} --days 2 --util 0.4 --seed 4"
        ))
        .unwrap();
        run(&format!(
            "pair --a {a} --b {b} --out {pairs} --proportion 0.2 --seed 5"
        ))
        .unwrap();

        let simulate = |trace: &str| {
            run(&format!(
                "simulate --a {a} --b {b} --pairs {pairs} --combo HY --capacity-a 100 \
                 --capacity-b 100 --trace-out {trace} --metrics --json {json}"
            ))
            .unwrap()
        };
        let out = simulate(&trace1);
        assert!(out.contains("trace:"), "{out}");
        assert!(out.contains("metrics:"), "{out}");
        assert!(out.contains("cosched.holds"), "{out}");
        assert!(out.contains("rpc.calls"), "{out}");
        assert!(out.contains("wall-clock profile:"), "{out}");
        assert!(out.contains("scheduler-iteration"), "{out}");

        // The trace is non-empty JSONL.
        let text = std::fs::read_to_string(&trace1).unwrap();
        assert!(text.lines().count() > 0);
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("time").is_some(), "{line}");
        }

        // Same seed, second run: byte-identical trace (observers are pure
        // consumers of deterministic payloads).
        simulate(&trace2);
        assert_eq!(
            std::fs::read(&trace1).unwrap(),
            std::fs::read(&trace2).unwrap()
        );

        // The JSON report now carries the activity counters and registry.
        let report: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json).unwrap()).unwrap();
        assert!(report["stats"]["rpc_calls"].as_u64().unwrap() > 0);
        assert!(report["metrics"]["counters"].as_array().unwrap().len() > 4);
    }

    #[test]
    fn simulate_without_pairs_is_plain_scheduling() {
        let a = tmp("plain_a.swf");
        let b = tmp("plain_b.swf");
        run(&format!(
            "generate --machine eureka --out {a} --days 1 --seed 6"
        ))
        .unwrap();
        run(&format!(
            "generate --machine eureka --out {b} --days 1 --seed 7"
        ))
        .unwrap();
        let out = run(&format!(
            "simulate --a {a} --b {b} --combo off --capacity-a 100 --capacity-b 100"
        ))
        .unwrap();
        assert!(out.contains("deadlocked: false"), "{out}");
    }

    /// Build a full observability pipeline in tmp files and return
    /// `(trace1, trace2, report_json)` — two same-seed HY traces.
    fn pipeline_artifacts(tag: &str) -> (String, String, String) {
        let a = tmp(&format!("{tag}_a.swf"));
        let b = tmp(&format!("{tag}_b.swf"));
        let pairs = tmp(&format!("{tag}_pairs.json"));
        let trace1 = tmp(&format!("{tag}_t1.jsonl"));
        let trace2 = tmp(&format!("{tag}_t2.jsonl"));
        let json = tmp(&format!("{tag}_report.json"));
        run(&format!(
            "generate --machine eureka --out {a} --days 2 --util 0.5 --seed 3"
        ))
        .unwrap();
        run(&format!(
            "generate --machine eureka --out {b} --days 2 --util 0.4 --seed 4"
        ))
        .unwrap();
        run(&format!(
            "pair --a {a} --b {b} --out {pairs} --proportion 0.2 --seed 5"
        ))
        .unwrap();
        for trace in [&trace1, &trace2] {
            run(&format!(
                "simulate --a {a} --b {b} --pairs {pairs} --combo HY --capacity-a 100 \
                 --capacity-b 100 --trace-out {trace} --json {json}"
            ))
            .unwrap();
        }
        (trace1, trace2, json)
    }

    #[test]
    fn analyze_attribute_decomposes_wait() {
        let (trace, _, _) = pipeline_artifacts("attr");
        let out = run(&format!("analyze attribute --trace {trace}")).unwrap();
        assert!(out.contains("wait-time attribution"), "{out}");
        // HY: machine 0 is the hold side, machine 1 the yield side.
        assert!(out.contains("scheme combo HY"), "{out}");
    }

    #[test]
    fn analyze_diff_same_seed_traces_is_identical() {
        let (trace1, trace2, _) = pipeline_artifacts("diffsame");
        let out = run(&format!("analyze diff --a {trace1} --b {trace2}")).unwrap();
        assert!(out.contains("identical per job"), "{out}");
    }

    #[test]
    fn analyze_timeline_renders_strips() {
        let (trace, _, _) = pipeline_artifacts("tline");
        let out = run(&format!(
            "analyze timeline --trace {trace} --width 60 --rows 5 --capacity 100"
        ))
        .unwrap();
        assert!(out.contains("timeline of"), "{out}");
        assert!(out.contains("run  |"), "{out}");
        assert!(out.contains("machine 0"), "{out}");
        assert!(out.contains("# running"), "{out}");
    }

    #[test]
    fn analyze_export_writes_prometheus_text() {
        let (_, _, json) = pipeline_artifacts("prom");
        let out = run(&format!("analyze export --report {json}")).unwrap();
        assert!(out.contains("# TYPE cosched_holds counter"), "{out}");
        assert!(out.contains("# TYPE job_wait_secs histogram"), "{out}");
        assert!(out.contains("job_wait_secs_bucket{le=\"+Inf\"}"), "{out}");
        let dest = tmp("prom_out.prom");
        let out = run(&format!("analyze export --report {json} --out {dest}")).unwrap();
        assert!(out.contains("Prometheus text"), "{out}");
        assert!(std::fs::read_to_string(&dest)
            .unwrap()
            .contains("cosched_holds"));
    }

    #[test]
    fn analyze_critical_path_prints_combo_table() {
        let (trace, _, _) = pipeline_artifacts("crit");
        let out = run(&format!("analyze critical-path --trace {trace}")).unwrap();
        assert!(out.contains("critical paths of"), "{out}");
        assert!(out.contains("combo"), "{out}");
        assert!(out.contains("local-queue"), "{out}");
        // The HY pipeline runs at least one pair to a synchronized start.
        assert!(
            out.contains("HY") || out.contains("completed pair"),
            "{out}"
        );
    }

    #[test]
    fn analyze_export_perfetto_writes_trace_event_json() {
        let (trace, _, _) = pipeline_artifacts("perf");
        let dest = tmp("perf_out.json");
        let out = run(&format!(
            "analyze export --format perfetto --trace {trace} --out {dest}"
        ))
        .unwrap();
        assert!(out.contains("trace-event JSON"), "{out}");
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&dest).unwrap()).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        // Cross-machine flow arrows exist for RPC spans.
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(serde_json::Value::as_str))
            .collect();
        assert!(phases.contains(&"s"), "{phases:?}");
        assert!(phases.contains(&"f"), "{phases:?}");
        assert!(phases.contains(&"X"), "{phases:?}");
    }

    #[test]
    fn analyze_export_rejects_unknown_format() {
        let err = run("analyze export --format svg --trace x.jsonl").unwrap_err();
        assert!(err.contains("unknown export format"), "{err}");
    }

    #[test]
    fn bench_campaign_check_gates_against_baseline() {
        let baseline = tmp("check_baseline.json");
        run(&format!(
            "bench campaign --scale smoke --threads 1 --sweep load --out {baseline}"
        ))
        .unwrap();
        // Same scale re-run against its own baseline passes with a
        // generous tolerance.
        let out = run(&format!(
            "bench campaign --scale smoke --threads 1 --sweep load --check {baseline} --tolerance 25"
        ))
        .unwrap();
        assert!(out.contains("— ok"), "{out}");
        // A scale mismatch is an error, not a silent pass.
        let err = run(&format!(
            "bench campaign --scale quick --threads 1 --sweep load --check {baseline}"
        ))
        .unwrap_err();
        assert!(err.contains("scale"), "{err}");
    }

    #[test]
    fn analyze_reports_malformed_jsonl_line() {
        let (trace, _, _) = pipeline_artifacts("badline");
        // Corrupt line 3 of the trace.
        let text = std::fs::read_to_string(&trace).unwrap();
        let mut lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() > 3);
        lines[2] = "{this is not json";
        let bad = tmp("badline_corrupt.jsonl");
        std::fs::write(&bad, lines.join("\n")).unwrap();
        let err = run(&format!("analyze attribute --trace {bad}")).unwrap_err();
        assert!(err.contains(&bad), "error names the file: {err}");
        assert!(err.contains("line 3"), "error pins the line: {err}");
        assert!(err.contains("invalid trace record"), "{err}");
    }

    #[test]
    fn analyze_rejects_unknown_subcommand_and_stray_subcommands() {
        let err = run("analyze frobnicate --trace x.jsonl").unwrap_err();
        assert!(err.contains("unknown analyze subcommand"), "{err}");
        let err = run("simulate extra --a x.swf").unwrap_err();
        assert!(err.contains("takes no subcommand"), "{err}");
    }

    #[test]
    fn unknown_command_reports_usage() {
        let err = run("frobnicate --x 1").unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
        assert!(err.contains("USAGE"), "{err}");
    }

    #[test]
    fn generate_rejects_unknown_machine() {
        let err = run(&format!(
            "generate --machine cray --out {}",
            tmp("nope.swf")
        ))
        .unwrap_err();
        assert!(err.contains("unknown machine model"), "{err}");
    }

    #[test]
    fn simulate_rejects_bad_combo() {
        let a = tmp("badcombo_a.swf");
        run(&format!(
            "generate --machine eureka --out {a} --days 1 --seed 8"
        ))
        .unwrap();
        let err = run(&format!(
            "simulate --a {a} --b {a} --combo XX --capacity-a 100 --capacity-b 100"
        ))
        .unwrap_err();
        assert!(err.contains("bad --combo"), "{err}");
    }

    #[test]
    fn pairs_file_with_dangling_reference_is_rejected() {
        let a = tmp("dangle_a.swf");
        let b = tmp("dangle_b.swf");
        let pairs = tmp("dangle_pairs.json");
        run(&format!(
            "generate --machine eureka --out {a} --days 1 --seed 9"
        ))
        .unwrap();
        run(&format!(
            "generate --machine eureka --out {b} --days 1 --seed 10"
        ))
        .unwrap();
        std::fs::write(&pairs, r#"{"pairs": [[999999, 0]]}"#).unwrap();
        let err = run(&format!(
            "simulate --a {a} --b {b} --pairs {pairs} --capacity-a 100 --capacity-b 100"
        ))
        .unwrap_err();
        assert!(err.contains("missing job"), "{err}");
    }

    #[test]
    fn scheme_letter_mapping() {
        assert_eq!(scheme_of('H'), Some(Scheme::Hold));
        assert_eq!(scheme_of('Y'), Some(Scheme::Yield));
        assert_eq!(scheme_of('Z'), None);
    }

    #[test]
    fn analyze_reports_trace_shape() {
        let a = tmp("analyze_a.swf");
        run(&format!(
            "generate --machine eureka --out {a} --days 2 --seed 11"
        ))
        .unwrap();
        let out = run(&format!("analyze --trace {a} --capacity 100")).unwrap();
        assert!(out.contains("sizes (nodes)"), "{out}");
        assert!(out.contains("offered utilization"), "{out}");
        assert!(out.contains("daily load unevenness"), "{out}");
    }

    #[test]
    fn help_prints_usage() {
        let out = run("help").unwrap();
        assert!(out.contains("USAGE"), "{out}");
    }

    /// `--telemetry` must not perturb the primary trace: same-seed runs
    /// with and without the monitor teed produce byte-identical JSONL.
    #[test]
    fn simulate_telemetry_keeps_trace_byte_identical() {
        let a = tmp("tele_a.swf");
        let b = tmp("tele_b.swf");
        let pairs = tmp("tele_pairs.json");
        let plain = tmp("tele_plain.jsonl");
        let teed = tmp("tele_teed.jsonl");
        run(&format!(
            "generate --machine eureka --out {a} --days 2 --util 0.5 --seed 3"
        ))
        .unwrap();
        run(&format!(
            "generate --machine eureka --out {b} --days 2 --util 0.4 --seed 4"
        ))
        .unwrap();
        run(&format!(
            "pair --a {a} --b {b} --out {pairs} --proportion 0.2 --seed 5"
        ))
        .unwrap();
        run(&format!(
            "simulate --a {a} --b {b} --pairs {pairs} --combo HY --capacity-a 100 \
             --capacity-b 100 --trace-out {plain}"
        ))
        .unwrap();
        let out = run(&format!(
            "simulate --a {a} --b {b} --pairs {pairs} --combo HY --capacity-a 100 \
             --capacity-b 100 --trace-out {teed} --telemetry 127.0.0.1:0"
        ))
        .unwrap();
        assert!(out.contains("telemetry: serving"), "{out}");
        assert_eq!(
            std::fs::read(&plain).unwrap(),
            std::fs::read(&teed).unwrap(),
            "teeing the monitor changed the primary trace"
        );
    }

    #[test]
    fn simulate_rejects_alert_options_without_telemetry() {
        let a = tmp("telereq_a.swf");
        run(&format!(
            "generate --machine eureka --out {a} --days 1 --seed 12"
        ))
        .unwrap();
        let err = run(&format!(
            "simulate --a {a} --b {a} --combo off --capacity-a 100 --capacity-b 100 \
             --alerts {}",
            "queued>0"
        ))
        .unwrap_err();
        assert!(err.contains("requires --telemetry"), "{err}");
    }

    #[test]
    fn simulate_rejects_bad_alert_rule() {
        let a = tmp("telebad_a.swf");
        run(&format!(
            "generate --machine eureka --out {a} --days 1 --seed 13"
        ))
        .unwrap();
        let err = run(&format!(
            "simulate --a {a} --b {a} --combo off --capacity-a 100 --capacity-b 100 \
             --telemetry 127.0.0.1:0 --alerts nonsense"
        ))
        .unwrap_err();
        assert!(!err.is_empty(), "{err}");
    }

    #[test]
    fn watch_once_renders_dashboard_from_live_server() {
        use cosched_obs::monitor::StreamingMonitor;
        use cosched_obs::trace::TraceEvent;
        use cosched_obs::Observer;
        use cosched_telemetry::{MonitorProvider, TelemetryServer};

        let mut monitor = StreamingMonitor::new().with_capacities(&[64]);
        monitor.record(
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 32,
                paired: false,
            },
        );
        monitor.record(
            5,
            0,
            TraceEvent::CoschedStart {
                job: 1,
                with_mate: false,
            },
        );
        let mut server =
            TelemetryServer::spawn("127.0.0.1:0", MonitorProvider::new(monitor.clone())).unwrap();
        let addr = server.addr().to_string();
        let out = run(&format!("watch {addr} --once")).unwrap();
        assert!(out.contains("cosched watch"), "{out}");
        assert!(out.contains("machine 0"), "{out}");
        assert!(out.contains("1 running"), "{out}");
        // A single frame never emits the clear-screen escape.
        assert!(!out.contains('\x1b'), "{out:?}");
        server.shutdown();
    }

    #[test]
    fn watch_requires_an_address() {
        let err = run("watch --once").unwrap_err();
        assert!(err.contains("watch needs an address"), "{err}");
    }

    #[test]
    fn bench_campaign_serves_progress_telemetry() {
        let progress = CampaignProgress::default();
        progress.update(|st| {
            st.sweeps_total = 2;
            st.sweeps_done = 1;
            st.current = "load".to_string();
            st.cells = 40;
        });
        let text = progress.metrics_text();
        assert!(
            text.contains("# TYPE cosched_bench_sweeps_done gauge"),
            "{text}"
        );
        assert!(text.contains("cosched_bench_cells_total 40"), "{text}");
        let health = progress.health();
        assert!(health.ok);
        assert_eq!(health.status, "running");
        let json: serde_json::Value = serde_json::from_str(&progress.state_json()).unwrap();
        assert_eq!(json["sweeps_done"], 1);
        assert_eq!(json["current"], "load");

        // The real command accepts the option and reports the endpoint.
        let out =
            run("bench campaign --scale smoke --threads 1 --sweep load --telemetry 127.0.0.1:0")
                .unwrap();
        assert!(out.contains("telemetry: serving"), "{out}");
    }
}
