//! Library backing the `cosched` command-line tool.
//!
//! Split from `main.rs` so every command is unit-testable without spawning
//! processes: `main` only parses `std::env::args` and forwards to
//! [`run_command`] with a writer.
//!
//! Commands:
//!
//! * `generate` — synthesize a machine workload and write it as SWF;
//! * `pair` — associate two SWF traces with the 2-minute-window rule (or a
//!   custom window / exact proportion) and write a pairs file;
//! * `simulate` — run the coupled coscheduling simulation from two SWF
//!   traces + a pairs file, printing the metrics table and optionally a
//!   JSON report.

pub mod args;
pub mod commands;

pub use args::{parse, parse_with_flags, Parsed};
pub use commands::{run_command, FLAGS};
