//! Tiny argument parser: `command --key value` pairs plus flags.
//!
//! Hand-rolled (the workspace's dependency policy doesn't include a CLI
//! framework) but strict: unknown keys are errors, not silent no-ops.

use std::collections::{BTreeMap, BTreeSet};

/// A parsed invocation: the command, an optional subcommand, its
/// `--key value` options, and any boolean `--flag` switches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Parsed {
    /// First positional token.
    pub command: String,
    /// Second positional token, when present (`analyze attribute …`).
    /// Commands that take no subcommand reject it via
    /// [`Parsed::no_subcommand`].
    pub subcommand: Option<String>,
    /// `--key value` pairs, keys without the `--` prefix.
    pub options: BTreeMap<String, String>,
    /// Boolean flags present on the command line, without the `--` prefix.
    pub flags: BTreeSet<String>,
}

/// Parse raw arguments (without the program name). Every `--key` consumes a
/// value; use [`parse_with_flags`] to declare value-less boolean switches.
///
/// # Errors
/// Returns a message when the command is missing, a key lacks a value, or a
/// positional token appears where a `--key` was expected.
pub fn parse(args: &[String]) -> Result<Parsed, String> {
    parse_with_flags(args, &[])
}

/// Parse raw arguments, treating every key in `flags` as a boolean switch
/// that takes no value (e.g. `--metrics`). All other `--key` tokens require
/// a value, exactly as in [`parse`].
pub fn parse_with_flags(args: &[String], flag_keys: &[&str]) -> Result<Parsed, String> {
    let mut iter = args.iter().peekable();
    let command = iter
        .next()
        .ok_or_else(|| "missing command (try: generate | pair | simulate)".to_string())?
        .clone();
    // One optional bare token directly after the command is its subcommand
    // (`analyze attribute --trace t.jsonl`); later bare tokens stay errors.
    let subcommand = match iter.peek() {
        Some(tok) if !tok.starts_with("--") => Some(iter.next().expect("peeked").clone()),
        _ => None,
    };
    let mut options = BTreeMap::new();
    let mut flags = BTreeSet::new();
    while let Some(token) = iter.next() {
        let key = token
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --option, got {token:?}"))?;
        if flag_keys.contains(&key) {
            if !flags.insert(key.to_string()) {
                return Err(format!("flag --{key} given twice"));
            }
            continue;
        }
        let value = iter
            .next()
            .ok_or_else(|| format!("option --{key} needs a value"))?;
        if options.insert(key.to_string(), value.clone()).is_some() {
            return Err(format!("option --{key} given twice"));
        }
    }
    Ok(Parsed {
        command,
        subcommand,
        options,
        flags,
    })
}

impl Parsed {
    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("option --{key} has invalid value {raw:?}")),
        }
    }

    /// Whether a boolean `--flag` was present.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.contains(key)
    }

    /// Reject a stray subcommand on commands that take none.
    pub fn no_subcommand(&self, command: &str) -> Result<(), String> {
        match &self.subcommand {
            None => Ok(()),
            Some(sub) => Err(format!("{command} takes no subcommand, got {sub:?}")),
        }
    }

    /// Reject options or flags outside the allowed set (typo guard).
    pub fn allow_only(&self, allowed: &[&str]) -> Result<(), String> {
        for key in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(format!(
                    "unknown option --{key} (allowed: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let p = parse(&argv("generate --machine intrepid --days 30")).unwrap();
        assert_eq!(p.command, "generate");
        assert_eq!(p.require("machine").unwrap(), "intrepid");
        assert_eq!(p.get_or::<u64>("days", 0).unwrap(), 30);
        assert_eq!(p.get_or::<u64>("seed", 7).unwrap(), 7);
    }

    #[test]
    fn missing_command_errors() {
        assert!(parse(&[]).unwrap_err().contains("missing command"));
    }

    #[test]
    fn dangling_option_errors() {
        let err = parse(&argv("simulate --out")).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn bare_token_after_command_is_the_subcommand() {
        let p = parse(&argv("analyze attribute --trace t.jsonl")).unwrap();
        assert_eq!(p.command, "analyze");
        assert_eq!(p.subcommand.as_deref(), Some("attribute"));
        assert_eq!(p.require("trace").unwrap(), "t.jsonl");
        assert!(p.no_subcommand("analyze").is_err());
        let p = parse(&argv("simulate --a x.swf")).unwrap();
        assert_eq!(p.subcommand, None);
        assert!(p.no_subcommand("simulate").is_ok());
    }

    #[test]
    fn positional_after_subcommand_errors() {
        let err = parse(&argv("analyze attribute extra")).unwrap_err();
        assert!(err.contains("expected --option"), "{err}");
    }

    #[test]
    fn duplicate_option_errors() {
        let err = parse(&argv("x --a 1 --a 2")).unwrap_err();
        assert!(err.contains("given twice"), "{err}");
    }

    #[test]
    fn allow_only_flags_unknown_keys() {
        let p = parse(&argv("x --good 1 --bad 2")).unwrap();
        let err = p.allow_only(&["good"]).unwrap_err();
        assert!(err.contains("--bad"), "{err}");
        assert!(p.allow_only(&["good", "bad"]).is_ok());
    }

    #[test]
    fn declared_flags_take_no_value() {
        let p = parse_with_flags(&argv("simulate --metrics --a x.swf"), &["metrics"]).unwrap();
        assert!(p.flag("metrics"));
        assert!(!p.flag("json"));
        assert_eq!(p.require("a").unwrap(), "x.swf");
        // Trailing flag must not dangle.
        let p = parse_with_flags(&argv("simulate --a x.swf --metrics"), &["metrics"]).unwrap();
        assert!(p.flag("metrics"));
    }

    #[test]
    fn duplicate_flag_errors() {
        let err = parse_with_flags(&argv("x --metrics --metrics"), &["metrics"]).unwrap_err();
        assert!(err.contains("given twice"), "{err}");
    }

    #[test]
    fn undeclared_flag_still_needs_a_value() {
        let err = parse_with_flags(&argv("simulate --out"), &["metrics"]).unwrap_err();
        assert!(err.contains("needs a value"), "{err}");
    }

    #[test]
    fn allow_only_covers_flags() {
        let p = parse_with_flags(&argv("x --metrics"), &["metrics"]).unwrap();
        let err = p.allow_only(&["good"]).unwrap_err();
        assert!(err.contains("--metrics"), "{err}");
        assert!(p.allow_only(&["metrics"]).is_ok());
    }

    #[test]
    fn invalid_numeric_value_errors() {
        let p = parse(&argv("x --days banana")).unwrap();
        let err = p.get_or::<u64>("days", 1).unwrap_err();
        assert!(err.contains("invalid value"), "{err}");
    }
}
