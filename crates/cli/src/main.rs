//! `cosched` — command-line front end for the coupled coscheduling toolkit.
//!
//! See `cosched help` for usage, or the crate README for the full workflow:
//! generate (or export) SWF traces, associate pairs, simulate.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match cosched_cli::parse_with_flags(&args, cosched_cli::FLAGS) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cosched_cli::commands::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout();
    if let Err(e) = cosched_cli::run_command(&parsed, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
