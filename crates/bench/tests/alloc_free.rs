//! Allocation-freeness of the scheduler hot paths, asserted with a
//! counting global allocator.
//!
//! The campaign runner executes millions of scheduling iterations per
//! sweep; the optimization work (reused `OrderScratch`, incrementally
//! sorted release list, buddy order bitmask) only pays off if the
//! steady-state paths stay off the allocator entirely. These tests pin
//! that: after a warm-up call to size the reusable buffers, the hot
//! paths must perform **zero** heap allocations.
//!
//! The counter is thread-local so concurrently running test threads
//! cannot pollute each other's counts; dealloc is deliberately not
//! counted (dropping a warm buffer is fine — growing one is not).

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::hint::black_box;

use cosched_sched::alloc::BuddyAllocator;
use cosched_sched::backfill::{compute_shadow, compute_shadow_sorted, ProjectedRelease};
use cosched_sched::policy::{order_queue_into, OrderScratch};
use cosched_sched::{Machine, MachineConfig, NodeAllocator, PolicyKind};
use cosched_sim::{SimDuration, SimTime};
use cosched_workload::{Job, JobId, MachineId};

struct CountingAlloc;

thread_local! {
    // `const` init: reading the counter never lazily allocates.
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations (alloc + realloc) performed by `f` on this thread.
fn count_allocs(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.with(|c| c.get());
    f();
    ALLOCS.with(|c| c.get()) - before
}

fn queue_jobs(n: u64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::new(
                JobId(i),
                MachineId(0),
                SimTime::from_secs(i * 11 % 7_200),
                64 << (i % 4),
                SimDuration::from_secs(600 + (i % 7) * 300),
                SimDuration::from_secs(3_600),
            )
        })
        .collect()
}

#[test]
fn counter_counts() {
    let n = count_allocs(|| {
        black_box(vec![0u64; 32]);
    });
    assert!(n > 0, "counting allocator must observe Vec allocation");
}

#[test]
fn order_queue_into_is_allocation_free_after_warmup() {
    let jobs = queue_jobs(128);
    let views: Vec<(&Job, f64)> = jobs.iter().map(|j| (j, 0.0)).collect();
    let now = SimTime::from_secs(86_400);
    let mut scratch = OrderScratch::new();
    // Warm-up sizes the scratch buffers.
    order_queue_into(PolicyKind::Wfp, now, &views, &|_| false, &mut scratch);
    let n = count_allocs(|| {
        for _ in 0..16 {
            order_queue_into(PolicyKind::Wfp, now, &views, &|_| false, &mut scratch);
            black_box(scratch.order().len());
        }
    });
    assert_eq!(n, 0, "steady-state queue ordering must not allocate");
}

#[test]
fn compute_shadow_sorted_is_allocation_free() {
    let mut releases: Vec<ProjectedRelease> = (0..64u64)
        .map(|i| ProjectedRelease {
            end: SimTime::from_secs(100 + i * 37),
            nodes: 512 << (i % 3),
        })
        .collect();
    releases.sort_by_key(|r| (r.end, r.nodes));
    let head = releases.iter().map(|r| r.nodes).sum::<u64>() - 512;
    let n = count_allocs(|| {
        for _ in 0..16 {
            black_box(compute_shadow_sorted(head, 0, releases.iter().copied()).time);
        }
    });
    assert_eq!(n, 0, "sorted shadow walk must not allocate");
}

#[test]
fn compute_shadow_fast_paths_are_allocation_free() {
    let releases = [ProjectedRelease {
        end: SimTime::from_secs(500),
        nodes: 1_024,
    }];
    let n = count_allocs(|| {
        for _ in 0..16 {
            // Head fits now: early return before any sorting.
            black_box(compute_shadow(512, 2_048, &releases).spare);
            // No projected releases: head is blocked indefinitely.
            black_box(compute_shadow(512, 0, &[]).time);
        }
    });
    assert_eq!(n, 0, "compute_shadow fast paths must not allocate");
}

#[test]
fn buddy_can_fit_is_allocation_free() {
    let mut a = BuddyAllocator::new(40_960, 512);
    let _held: Vec<_> = (0..10u64).filter_map(|i| a.alloc(512 << (i % 4))).collect();
    let n = count_allocs(|| {
        for _ in 0..64 {
            let mut fits = 0u32;
            for size in [512u64, 1_024, 4_096, 16_384, 32_768, 40_960] {
                fits += a.can_fit(size) as u32;
            }
            black_box((fits, a.largest_fit(), a.free_nodes()));
        }
    });
    assert_eq!(n, 0, "buddy admission checks must not allocate");
}

/// The full per-iteration scheduler path on a machine with a running job
/// and a blocked head: `begin_iteration` + `pick_next` re-scores the
/// queue (scratch reuse), walks the incrementally sorted release list
/// for the head reservation, and probes the allocator — all without
/// touching the heap once the reusable buffers are warm.
#[test]
fn machine_blocked_iteration_is_allocation_free_after_warmup() {
    let mut config = MachineConfig::flat("m", MachineId(0), 100);
    config.policy = PolicyKind::Wfp;
    let mut machine = Machine::new(config);
    let t0 = SimTime::ZERO;

    // One running job holding most of the machine…
    machine.submit(
        Job::new(
            JobId(0),
            MachineId(0),
            t0,
            60,
            SimDuration::from_secs(36_000),
            SimDuration::from_secs(43_200),
        ),
        t0,
    );
    machine.begin_iteration();
    let cand = machine
        .pick_next(t0)
        .expect("first job fits an empty machine");
    machine.start(cand, t0);

    // …and queued jobs too large to fit or backfill behind it.
    for (i, size) in [(1u64, 80u64), (2, 90), (3, 95)] {
        machine.submit(
            Job::new(
                JobId(i),
                MachineId(0),
                t0,
                size,
                SimDuration::from_secs(7_200),
                SimDuration::from_secs(10_800),
            ),
            t0,
        );
    }

    let now = SimTime::from_secs(60);
    // Warm-up iteration sizes the order scratch and iteration buffers.
    machine.begin_iteration();
    assert!(machine.pick_next(now).is_none(), "queue must stay blocked");

    let n = count_allocs(|| {
        for _ in 0..16 {
            machine.begin_iteration();
            assert!(machine.pick_next(now).is_none());
        }
    });
    assert_eq!(
        n, 0,
        "steady-state blocked scheduling iteration must not allocate"
    );
}
