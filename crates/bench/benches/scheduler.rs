//! Criterion benches for the single-domain scheduler substrate: allocator
//! operations and scheduling-iteration cost as queue depth grows.

use cosched_sched::alloc::{BuddyAllocator, FlatAllocator};
use cosched_sched::{Machine, MachineConfig, NodeAllocator, PolicyKind};
use cosched_sim::{SimDuration, SimTime};
use cosched_workload::{Job, JobId, MachineId};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator");
    group.bench_function("flat_cycle_1k", |b| {
        b.iter(|| {
            let mut a = FlatAllocator::new(40_960);
            let mut handles = Vec::with_capacity(64);
            for i in 0..1_000u64 {
                if handles.len() < 48 {
                    if let Some(h) = a.alloc(512 + (i % 7) * 128) {
                        handles.push(h);
                    }
                } else {
                    let k = (i as usize * 13) % handles.len();
                    a.release(handles.remove(k));
                }
            }
            black_box(a.free_nodes())
        })
    });
    group.bench_function("buddy_cycle_1k", |b| {
        b.iter(|| {
            let mut a = BuddyAllocator::new(40_960, 512);
            let mut handles = Vec::with_capacity(64);
            for i in 0..1_000u64 {
                if handles.len() < 48 {
                    if let Some(h) = a.alloc(512 << (i % 5)) {
                        handles.push(h);
                    }
                } else {
                    let k = (i as usize * 13) % handles.len();
                    a.release(handles.remove(k));
                }
            }
            black_box(a.free_nodes())
        })
    });
    group.finish();
}

fn queue_machine(depth: usize, policy: PolicyKind) -> Machine {
    let mut cfg = MachineConfig::flat("bench", MachineId(0), 100_000);
    cfg.policy = policy;
    let mut m = Machine::new(cfg);
    for i in 0..depth as u64 {
        m.submit(
            Job::new(
                JobId(i),
                MachineId(0),
                SimTime::from_secs(i),
                64,
                SimDuration::from_secs(3_600),
                SimDuration::from_secs(7_200),
            ),
            SimTime::from_secs(i),
        );
    }
    m
}

fn bench_iteration_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_iteration");
    for &depth in &[100usize, 1_000] {
        for policy in [PolicyKind::Fcfs, PolicyKind::Wfp] {
            group.bench_with_input(
                BenchmarkId::new(format!("{policy:?}"), depth),
                &depth,
                |b, &depth| {
                    b.iter_batched(
                        || queue_machine(depth, policy),
                        |mut m| {
                            let now = SimTime::from_secs(depth as u64 + 10);
                            m.begin_iteration();
                            // Full drain: every pick re-sorts the queue, the
                            // dominant cost of a scheduling iteration.
                            while let Some(cand) = m.pick_next(now) {
                                let _ = m.start(cand, now);
                            }
                            black_box(m.running_jobs().len())
                        },
                        criterion::BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allocators, bench_iteration_cost);
criterion_main!(benches);
