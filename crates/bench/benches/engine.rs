//! Criterion benches for the discrete-event engine substrate: event-queue
//! throughput and dispatch overhead. These bound how large a coupled
//! simulation the harness can afford.

use cosched_sim::{Engine, EventHandler, EventQueue, SimDuration, SimTime};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_queue_push_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for &n in &[1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("push_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Scattered times exercise heap reordering.
                for i in 0..n {
                    let t = ((i.wrapping_mul(2_654_435_761)) % (n * 8)) as u64;
                    q.push(SimTime::from_secs(t), i);
                }
                let mut sum = 0usize;
                while let Some(ev) = q.pop() {
                    sum = sum.wrapping_add(ev.event);
                }
                black_box(sum)
            })
        });
    }
    group.finish();
}

fn bench_queue_cancel_heavy(c: &mut Criterion) {
    c.bench_function("event_queue/cancel_half_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> = (0..100_000u64)
                .map(|i| q.push(SimTime::from_secs(i % 997), i))
                .collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

struct Chain {
    remaining: u64,
}

impl EventHandler<u64> for Chain {
    fn handle(&mut self, now: SimTime, _event: u64, queue: &mut EventQueue<u64>) {
        if self.remaining > 0 {
            self.remaining -= 1;
            queue.push(now + SimDuration::from_secs(1), self.remaining);
        }
    }
}

fn bench_engine_dispatch(c: &mut Criterion) {
    c.bench_function("engine/chained_dispatch_100k", |b| {
        b.iter(|| {
            let mut engine = Engine::new();
            engine.queue_mut().push(SimTime::ZERO, 0u64);
            let mut model = Chain { remaining: 100_000 };
            engine.run(&mut model);
            black_box(engine.dispatched())
        })
    });
}

criterion_group!(
    benches,
    bench_queue_push_pop,
    bench_queue_cancel_heavy,
    bench_engine_dispatch
);
criterion_main!(benches);
