//! Criterion benches for design-choice costs: what each enhancement and
//! policy variant does to simulation wall time (the *metric* effects are in
//! the `ablate` binary; this measures compute cost).

use cosched_bench::harness;
use cosched_core::{CoupledConfig, CoupledSimulation, SchemeCombo};
use cosched_sched::PolicyKind;
use cosched_sim::SimDuration;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_release_period_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_release_period");
    group.sample_size(10);
    for mins in [5u64, 20, 80] {
        group.bench_with_input(BenchmarkId::from_parameter(mins), &mins, |b, &mins| {
            b.iter_batched(
                || {
                    let cfg = harness::anl_with(SchemeCombo::HH, |c| {
                        c.release_period = Some(SimDuration::from_mins(mins));
                    });
                    (cfg, harness::anl_load_traces(1, 3, 0.5))
                },
                |(cfg, traces)| black_box(CoupledSimulation::new(cfg, traces).run().events),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_policy_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_policy");
    group.sample_size(10);
    for policy in [PolicyKind::Wfp, PolicyKind::Fcfs, PolicyKind::Sjf] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter_batched(
                    || {
                        let mut cfg = CoupledConfig::anl(SchemeCombo::YY);
                        cfg.machines[0].policy = policy;
                        cfg.machines[1].policy = policy;
                        (cfg, harness::anl_load_traces(1, 3, 0.5))
                    },
                    |(cfg, traces)| black_box(CoupledSimulation::new(cfg, traces).run().events),
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_backfill_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_backfill");
    group.sample_size(10);
    for bf in [true, false] {
        group.bench_with_input(BenchmarkId::from_parameter(bf), &bf, |b, &bf| {
            b.iter_batched(
                || {
                    let mut cfg = CoupledConfig::anl(SchemeCombo::YY);
                    cfg.machines[0].backfill = bf;
                    cfg.machines[1].backfill = bf;
                    (cfg, harness::anl_load_traces(1, 3, 0.5))
                },
                |(cfg, traces)| black_box(CoupledSimulation::new(cfg, traces).run().events),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_release_period_cost,
    bench_policy_cost,
    bench_backfill_cost
);
criterion_main!(benches);
