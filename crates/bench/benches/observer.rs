//! Observer-overhead microbench: per-event cost of the no-op observer (the
//! compiled-away default), the JSONL sink, the bounded ring sink, the
//! streaming telemetry monitor, and the production tee (JSONL + monitor).
//! Run with `cargo bench -p cosched-bench --bench observer`; representative
//! numbers are recorded in `EXPERIMENTS.md`.

use cosched_obs::monitor::StreamingMonitor;
use cosched_obs::{
    JsonlSink, NoopObserver, Observer, RingSink, SinkObserver, TeeObserver, TraceEvent,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A deterministic, lifecycle-coherent event stream: `jobs` short jobs per
/// machine cycling through submit → start → end, with scheduler-iteration
/// markers interleaved — the mix a real run feeds its observer.
fn event_stream(jobs: u64) -> Vec<(u64, usize, TraceEvent)> {
    let mut events = Vec::with_capacity(jobs as usize * 8);
    for i in 0..jobs {
        let t = i * 60;
        let machine = (i % 2) as usize;
        events.push((
            t,
            machine,
            TraceEvent::JobSubmitted {
                job: i,
                size: 64 << (i % 4),
                paired: i % 5 == 0,
            },
        ));
        events.push((
            t,
            machine,
            TraceEvent::SchedIterationStart {
                queued: 1,
                running: (i % 7) as usize,
                free_nodes: 1_024,
            },
        ));
        events.push((
            t + 30,
            machine,
            TraceEvent::CoschedStart {
                job: i,
                with_mate: i % 5 == 0,
            },
        ));
        events.push((t + 630, machine, TraceEvent::JobEnded { job: i }));
    }
    events.sort_by_key(|&(t, m, _)| (t, m));
    events
}

fn drive<O: Observer>(observer: &mut O, events: &[(u64, usize, TraceEvent)]) {
    for (t, m, e) in events {
        observer.record(*t, *m, e.clone());
    }
    observer.flush();
}

fn bench_observers(c: &mut Criterion) {
    let events = event_stream(2_000);
    let mut group = c.benchmark_group("observer_per_event");

    group.bench_function("noop", |b| {
        b.iter(|| {
            let mut obs = NoopObserver;
            // The no-op observer is inactive: emit_with never constructs
            // the event, which is exactly the cost an untraced run pays.
            for (t, m, e) in &events {
                obs.emit_with(*t, *m, || black_box(e.clone()));
            }
        })
    });

    group.bench_function("jsonl_sink", |b| {
        b.iter(|| {
            let mut obs = SinkObserver::new(JsonlSink::new(Vec::with_capacity(1 << 20)));
            drive(&mut obs, &events);
            black_box(obs.sink().lines())
        })
    });

    group.bench_function("ring_sink", |b| {
        b.iter(|| {
            let mut obs = SinkObserver::new(RingSink::new(512));
            drive(&mut obs, &events);
            black_box(obs.sink().total())
        })
    });

    group.bench_function("streaming_monitor", |b| {
        b.iter(|| {
            let mut monitor = StreamingMonitor::new().with_capacities(&[1_024, 1_024]);
            drive(&mut monitor, &events);
            black_box(monitor.snapshot().events)
        })
    });

    group.bench_function("tee_jsonl_plus_monitor", |b| {
        b.iter(|| {
            let monitor = StreamingMonitor::new().with_capacities(&[1_024, 1_024]);
            let mut obs = TeeObserver::new(
                SinkObserver::new(JsonlSink::new(Vec::with_capacity(1 << 20))),
                monitor.clone(),
            );
            drive(&mut obs, &events);
            black_box(monitor.snapshot().events)
        })
    });

    group.finish();
}

fn bench_snapshot(c: &mut Criterion) {
    // Snapshot cost matters separately: every /metrics or /state scrape
    // takes one while the run keeps recording.
    let events = event_stream(2_000);
    let mut monitor = StreamingMonitor::new().with_capacities(&[1_024, 1_024]);
    drive(&mut monitor, &events);
    c.bench_function("monitor_snapshot", |b| {
        b.iter(|| black_box(monitor.snapshot().finished))
    });
}

criterion_group!(benches, bench_observers, bench_snapshot);
criterion_main!(benches);
