//! Micro-benches for the scheduler hot paths the campaign runner hammers:
//! queue ordering (fresh allocation vs reused scratch), shadow computation
//! (sort-per-call vs incrementally sorted walk), buddy-allocator fit and
//! alloc/release cycles, and one end-to-end simulated day. Committed
//! baseline numbers live in `BENCH_sim.json`; the allocation-freeness of
//! the scratch paths is asserted by `tests/alloc_free.rs`.

use cosched_bench::harness::{anl_load_traces, run_one};
use cosched_core::SchemeCombo;
use cosched_sched::alloc::BuddyAllocator;
use cosched_sched::backfill::{compute_shadow, compute_shadow_sorted, ProjectedRelease};
use cosched_sched::policy::{order_queue, order_queue_into, OrderScratch};
use cosched_sched::{NodeAllocator, PolicyKind};
use cosched_sim::{SimDuration, SimTime};
use cosched_workload::{Job, JobId, MachineId};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn queue_jobs(depth: u64) -> Vec<Job> {
    (0..depth)
        .map(|i| {
            Job::new(
                JobId(i),
                MachineId(0),
                SimTime::from_secs(i * 7 % 86_400),
                64 << (i % 5),
                SimDuration::from_secs(600 + (i % 9) * 600),
                SimDuration::from_secs(3_600),
            )
        })
        .collect()
}

fn bench_order_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("order_queue");
    for depth in [64u64, 512] {
        let jobs = queue_jobs(depth);
        let views: Vec<(&Job, f64)> = jobs.iter().map(|j| (j, 0.0)).collect();
        let now = SimTime::from_secs(172_800);
        group.bench_with_input(
            BenchmarkId::new("fresh_alloc", depth),
            &views,
            |b, views| {
                b.iter(|| black_box(order_queue(PolicyKind::Wfp, now, views, &|_| false)).len())
            },
        );
        let mut scratch = OrderScratch::new();
        group.bench_with_input(
            BenchmarkId::new("scratch_reuse", depth),
            &views,
            |b, views| {
                b.iter(|| {
                    order_queue_into(PolicyKind::Wfp, now, views, &|_| false, &mut scratch);
                    black_box(scratch.order().len())
                })
            },
        );
    }
    group.finish();
}

fn release_list(n: u64) -> Vec<ProjectedRelease> {
    let mut releases: Vec<ProjectedRelease> = (0..n)
        .map(|i| ProjectedRelease {
            end: SimTime::from_secs(1_000 + (i * 37) % 90_000),
            nodes: 512 << (i % 4),
        })
        .collect();
    releases.sort_by_key(|r| (r.end, r.nodes));
    releases
}

fn bench_compute_shadow(c: &mut Criterion) {
    let mut group = c.benchmark_group("compute_shadow");
    for n in [32u64, 256] {
        let sorted = release_list(n);
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        // Head demand that forces walking most of the list.
        let head = sorted.iter().map(|r| r.nodes).sum::<u64>() * 9 / 10;
        group.bench_with_input(
            BenchmarkId::new("sort_per_call", n),
            &shuffled,
            |b, releases| b.iter(|| black_box(compute_shadow(head, 0, releases)).time),
        );
        group.bench_with_input(
            BenchmarkId::new("sorted_walk", n),
            &sorted,
            |b, releases| {
                b.iter(|| black_box(compute_shadow_sorted(head, 0, releases.iter().copied())).time)
            },
        );
    }
    group.finish();
}

fn bench_buddy(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy");
    // A partially fragmented Intrepid-shaped allocator.
    let mut a = BuddyAllocator::new(40_960, 512);
    let handles: Vec<_> = (0..12u64).filter_map(|i| a.alloc(512 << (i % 4))).collect();
    group.bench_function("can_fit_mixed", |b| {
        b.iter(|| {
            let mut fits = 0u32;
            for size in [512u64, 1_024, 4_096, 16_384, 32_768] {
                fits += a.can_fit(size) as u32;
            }
            black_box(fits)
        })
    });
    drop(handles);
    group.bench_function("alloc_release_cycle_1k", |b| {
        b.iter(|| {
            let mut a = BuddyAllocator::new(40_960, 512);
            let mut live = Vec::with_capacity(64);
            for i in 0..1_000u64 {
                if live.len() < 48 {
                    if let Some(h) = a.alloc(512 << (i % 5)) {
                        live.push(h);
                    }
                } else {
                    let k = (i as usize * 13) % live.len();
                    a.release(live.remove(k));
                }
            }
            black_box(a.free_nodes())
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("one_day_yy", |b| {
        b.iter(|| {
            let traces = anl_load_traces(1, 1, 0.5);
            black_box(run_one(Some(SchemeCombo::YY), traces).summaries[0].jobs)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_order_queue,
    bench_compute_shadow,
    bench_buddy,
    bench_end_to_end
);
criterion_main!(benches);
