//! Criterion benches for the coupled simulator end-to-end: how fast a
//! coupled day of the ANL workload simulates under each scheme combination,
//! and the protocol overhead per coordination call.

use cosched_bench::harness;
use cosched_core::SchemeCombo;
use cosched_proto::{frame, Request, Response};
use cosched_workload::JobId;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_coupled_day(c: &mut Criterion) {
    let mut group = c.benchmark_group("coupled_simulation_3days");
    group.sample_size(10);
    for combo in [None, Some(SchemeCombo::HH), Some(SchemeCombo::YY)] {
        let label = combo.map_or("baseline".to_string(), |c| c.label());
        group.bench_with_input(BenchmarkId::from_parameter(label), &combo, |b, &combo| {
            b.iter_batched(
                || harness::anl_load_traces(1, 3, 0.5),
                |traces| black_box(harness::run_one(combo, traces).events),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_protocol_framing(c: &mut Criterion) {
    let req = Request::GetMateStatus {
        job: JobId(123_456),
    };
    c.bench_function("protocol/encode_decode_roundtrip", |b| {
        b.iter(|| {
            let wire = frame::encode(&req);
            let mut dec = frame::FrameDecoder::new();
            dec.extend(&wire);
            let back: Request = dec.next().unwrap().unwrap();
            black_box(back)
        })
    });
    let resp = Response::Started(true);
    c.bench_function("protocol/encode_response", |b| {
        b.iter(|| black_box(frame::encode(&resp)))
    });
}

criterion_group!(benches, bench_coupled_day, bench_protocol_framing);
criterion_main!(benches);
