//! Table builders: turn sweep results into the rows/series each paper
//! figure plots. Shared by the per-figure binaries and `all_experiments`.

use crate::harness::{CaseResult, LoadSweep, PropSweep};
use cosched_metrics::table::{num, pct, Table};
use cosched_metrics::MachineSummary;

/// One sweep grid point as consumed by the table builders: the case label
/// (utilization or proportion), the baseline result, and the per-combination
/// results with their labels.
pub type CasePoint<'a> = (String, &'a CaseResult, Vec<(String, &'a CaseResult)>);

fn machine_of(case: &CaseResult, m: usize) -> &MachineSummary {
    if m == 0 {
        &case.intrepid
    } else {
        &case.eureka
    }
}

fn util_label(u: f64) -> String {
    format!("{u:.2}")
}

fn prop_label(p: f64) -> String {
    format!("{}%", num(p * 100.0, 1))
}

/// Fig. 3 / Fig. 7: average waiting time (minutes) with baseline and
/// difference, one table per machine.
pub fn fig_wait(points: &[CasePoint<'_>], m: usize, title: &str) -> Table {
    let mut t = Table::new(
        title,
        &["case", "combo", "cosched (min)", "base (min)", "diff (min)"],
    );
    for (label, base, combos) in points {
        for (combo, case) in combos {
            let c = machine_of(case, m).avg_wait_mins;
            let b = machine_of(base, m).avg_wait_mins;
            t.row(&[
                label.clone(),
                combo.clone(),
                num(c, 1),
                num(b, 1),
                num(c - b, 1),
            ]);
        }
    }
    t
}

/// Fig. 4 / Fig. 8: average slowdown with baseline and difference.
pub fn fig_slowdown(points: &[CasePoint<'_>], m: usize, title: &str) -> Table {
    let mut t = Table::new(title, &["case", "combo", "cosched", "base", "diff"]);
    for (label, base, combos) in points {
        for (combo, case) in combos {
            let c = machine_of(case, m).avg_slowdown;
            let b = machine_of(base, m).avg_slowdown;
            t.row(&[
                label.clone(),
                combo.clone(),
                num(c, 2),
                num(b, 2),
                num(c - b, 2),
            ]);
        }
    }
    t
}

/// Fig. 5 / Fig. 9: average paired-job synchronization time (minutes),
/// grouped by case / remote scheme, local hold vs local yield.
///
/// For machine `m`, the remote scheme is the other machine's letter; the
/// local scheme letter selects the bar within the group.
pub fn fig_sync(points: &[CasePoint<'_>], m: usize, title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "case / remote scheme",
            "local hold (min)",
            "local yield (min)",
        ],
    );
    for (label, _base, combos) in points {
        for remote in ["H", "Y"] {
            let mut hold = None;
            let mut yielded = None;
            for (combo, case) in combos {
                let local = &combo[m..=m];
                let rem = &combo[1 - m..=1 - m];
                if rem != remote {
                    continue;
                }
                let v = machine_of(case, m).avg_sync_mins;
                match local {
                    "H" => hold = Some(v),
                    _ => yielded = Some(v),
                }
            }
            t.row(&[
                format!("{label}/{remote}"),
                hold.map_or("-".into(), |v| num(v, 1)),
                yielded.map_or("-".into(), |v| num(v, 1)),
            ]);
        }
    }
    t
}

/// Fig. 6 / Fig. 10: service-unit loss (node-hours and lost utilization
/// rate) for cases where the local machine uses hold.
pub fn fig_loss(points: &[CasePoint<'_>], m: usize, title: &str) -> Table {
    let mut t = Table::new(
        title,
        &["case / remote scheme", "node-hours lost", "lost util rate"],
    );
    for (label, _base, combos) in points {
        for remote in ["H", "Y"] {
            for (combo, case) in combos {
                let local = &combo[m..=m];
                let rem = &combo[1 - m..=1 - m];
                if local != "H" || rem != remote {
                    continue;
                }
                let s = machine_of(case, m);
                t.row(&[
                    format!("{label}/{remote}"),
                    num(s.lost_node_hours, 0),
                    pct(s.lost_util_rate),
                ]);
            }
        }
    }
    t
}

/// Adapt a [`LoadSweep`] into the generic point shape used by the builders.
pub fn load_points(sweep: &LoadSweep) -> Vec<CasePoint<'_>> {
    sweep
        .points
        .iter()
        .map(|(u, base, combos)| {
            (
                util_label(*u),
                base,
                combos.iter().map(|(c, r)| (c.label(), r)).collect(),
            )
        })
        .collect()
}

/// Adapt a [`PropSweep`] into the generic point shape used by the builders.
pub fn prop_points(sweep: &PropSweep) -> Vec<CasePoint<'_>> {
    sweep
        .points
        .iter()
        .map(|(p, base, combos)| {
            (
                prop_label(*p),
                base,
                combos.iter().map(|(c, r)| (c.label(), r)).collect(),
            )
        })
        .collect()
}

/// Capability-validation table (§V-B): per case, whether all pairs started
/// simultaneously and whether any deadlock occurred.
pub fn validation_table(points: &[CasePoint<'_>], title: &str) -> Table {
    let mut t = Table::new(
        title,
        &[
            "case",
            "combo",
            "pairs sync'd",
            "deadlock",
            "forced releases",
            "paired share",
            "anchored/direct/indep",
        ],
    );
    for (label, _base, combos) in points {
        for (combo, case) in combos {
            let (a, d, i) = case.rendezvous;
            t.row(&[
                label.clone(),
                combo.clone(),
                if case.sync_ok { "yes" } else { "NO" }.into(),
                if case.deadlocked { "YES" } else { "no" }.into(),
                case.forced_releases.to_string(),
                pct(case.paired_share),
                format!("{a}/{d}/{i}"),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{run_case, Scale};
    use cosched_core::SchemeCombo;

    type OwnedPoint = (String, CaseResult, Vec<(String, CaseResult)>);

    fn tiny_points() -> Vec<OwnedPoint> {
        let scale = Scale::smoke();
        let base = run_case(None, scale, |s| {
            crate::harness::anl_load_traces(s, scale.days, 0.5)
        });
        let hh = run_case(Some(SchemeCombo::HH), scale, |s| {
            crate::harness::anl_load_traces(s, scale.days, 0.5)
        });
        let yy = run_case(Some(SchemeCombo::YY), scale, |s| {
            crate::harness::anl_load_traces(s, scale.days, 0.5)
        });
        vec![(
            "0.50".to_string(),
            base,
            vec![("HH".to_string(), hh), ("YY".to_string(), yy)],
        )]
    }

    fn as_refs(pts: &[OwnedPoint]) -> Vec<CasePoint<'_>> {
        pts.iter()
            .map(|(l, b, cs)| {
                (
                    l.clone(),
                    b,
                    cs.iter().map(|(c, r)| (c.clone(), r)).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn tables_render_with_expected_rows() {
        let pts = tiny_points();
        let refs = as_refs(&pts);
        let wait = fig_wait(&refs, 0, "wait");
        assert_eq!(wait.len(), 2); // 2 combos × 1 point
        let slow = fig_slowdown(&refs, 1, "slowdown");
        assert_eq!(slow.len(), 2);
        let sync = fig_sync(&refs, 0, "sync");
        assert_eq!(sync.len(), 2); // remote H and remote Y rows
        let loss = fig_loss(&refs, 0, "loss");
        assert_eq!(loss.len(), 1); // only HH has local-hold on machine 0 here
        let val = validation_table(&refs, "validation");
        assert!(val.render().contains("yes"));
    }
}
