//! Scenario builders and sweep runners shared by all figure binaries.
//!
//! Experimental design, following §V:
//!
//! * **Load sweep** (Figs. 3–6): Intrepid replays a month-like trace at its
//!   production (high, stable) load; Eureka's trace is packed to offered
//!   utilization 0.25 / 0.50 / 0.75. Jobs submitted within 2 minutes across
//!   machines are associated (yielding a mid-single-digit pair share).
//!   Each utilization × {baseline, HH, HY, YH, YY} case runs over several
//!   seeds and averages.
//! * **Proportion sweep** (Figs. 7–10): Eureka gets a workload with the
//!   same job count and span as Intrepid's, calibrated to utilization
//!   ≈ 0.5; the paired proportion is set exactly to
//!   2.5 / 5 / 10 / 20 / 33 %.

use cosched_core::{
    CoschedConfig, CoupledConfig, CoupledSimulation, SchemeCombo, SimulationReport,
};
use cosched_metrics::MachineSummary;
use cosched_sim::{SimDuration, SimRng};
use cosched_workload::{pairing, MachineId, MachineModel, Trace, TraceGenerator};

/// Intrepid's production load in the paper's period: "high and stable".
pub const INTREPID_UTIL: f64 = 0.55;

/// The Eureka system-utilization grid of Figs. 3–6.
pub const EUREKA_UTILS: [f64; 3] = [0.25, 0.50, 0.75];

/// The paired-job proportion grid of Figs. 7–10.
pub const PROPORTIONS: [f64; 5] = [0.025, 0.05, 0.10, 0.20, 0.33];

/// The 2-minute association window of §V-D.
pub const PAIR_WINDOW: SimDuration = SimDuration(120);

/// Overall paired-job share targeted by the load sweep. The paper's window
/// rule on production traces yielded 5–10 %; with synthetic Poisson
/// arrivals the raw rule over-matches, so matched pairs are thinned to the
/// middle of the published range.
pub const LOAD_SWEEP_PAIR_SHARE: f64 = 0.075;

/// Experiment scale: trace length and seed count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Trace span in days (paper: 30).
    pub days: u64,
    /// Seeds per case (paper: 10).
    pub seeds: u64,
}

impl Scale {
    /// Paper scale: one month, 10 repetitions.
    pub fn full() -> Self {
        Scale {
            days: 30,
            seeds: 10,
        }
    }

    /// Default: 10 days, 3 repetitions — same shapes, minutes not hours.
    pub fn quick() -> Self {
        Scale { days: 10, seeds: 3 }
    }

    /// CI smoke scale.
    pub fn smoke() -> Self {
        Scale { days: 3, seeds: 1 }
    }

    /// Read `COSCHED_SCALE` (`full` / `quick` / `smoke`), defaulting to
    /// quick.
    pub fn from_env() -> Self {
        match std::env::var("COSCHED_SCALE").as_deref() {
            Ok("full") => Self::full(),
            Ok("smoke") => Self::smoke(),
            _ => Self::quick(),
        }
    }
}

/// Build the load-sweep traces for one seed: Intrepid at production load,
/// Eureka packed to `eureka_util`, paired by the 2-minute window rule.
pub fn anl_load_traces(seed: u64, days: u64, eureka_util: f64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let mut intrepid = TraceGenerator::new(MachineModel::intrepid(), MachineId(0))
        .span(SimDuration::from_days(days))
        .target_utilization(INTREPID_UTIL)
        .generate(&mut rng.fork(0));
    let mut eureka = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
        .span(SimDuration::from_days(days))
        .target_utilization(eureka_util)
        .generate(&mut rng.fork(1));
    pairing::pair_by_window(&mut intrepid, &mut eureka, PAIR_WINDOW);
    pairing::thin_pairs_to_share(
        &mut intrepid,
        &mut eureka,
        LOAD_SWEEP_PAIR_SHARE,
        &mut rng.fork(2),
    );
    [intrepid, eureka]
}

/// Build the proportion-sweep traces for one seed: Eureka gets the same job
/// count and span as Intrepid at utilization ≈ 0.5 (runtime mean calibrated
/// for that), then exactly `proportion` of jobs are paired.
pub fn anl_proportion_traces(seed: u64, days: u64, proportion: f64) -> [Trace; 2] {
    let rng = SimRng::seed_from_u64(seed);
    let intrepid = TraceGenerator::new(MachineModel::intrepid(), MachineId(0))
        .span(SimDuration::from_days(days))
        .target_utilization(INTREPID_UTIL)
        .generate(&mut rng.fork(0));
    // Work per job for util 0.5 at Intrepid's job count:
    // interarrival × capacity × util / mean_size.
    let span_secs = SimDuration::from_days(days).as_secs() as f64;
    let interarrival = span_secs / intrepid.len() as f64;
    let base = MachineModel::eureka();
    let runtime_mean = interarrival * 100.0 * 0.5 / base.mean_size();
    let mut eureka = TraceGenerator::new(base.with_runtime(runtime_mean, 1.5), MachineId(1))
        .span(SimDuration::from_days(days))
        .job_count(intrepid.len())
        .generate(&mut rng.fork(1));
    let mut intrepid = intrepid;
    pairing::pair_exact_proportion(
        &mut intrepid,
        &mut eureka,
        proportion,
        PAIR_WINDOW,
        &mut rng.fork(2),
    );
    [intrepid, eureka]
}

/// Averaged outcome of one experimental case.
///
/// `PartialEq` + `Serialize` let the campaign runner's determinism
/// invariant be checked exactly: a parallel campaign must produce results
/// that are equal — and serialize byte-identically — to the serial run's.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CaseResult {
    /// Intrepid's averaged summary.
    pub intrepid: MachineSummary,
    /// Eureka's averaged summary.
    pub eureka: MachineSummary,
    /// All paired jobs started simultaneously in every seed.
    pub sync_ok: bool,
    /// Any seed deadlocked.
    pub deadlocked: bool,
    /// Deadlock-breaker activations, summed over seeds.
    pub forced_releases: u64,
    /// Achieved paired proportion (of total jobs across both machines).
    pub paired_share: f64,
    /// Rendezvous paths `(anchored, direct, independent)`, summed over
    /// seeds.
    pub rendezvous: (usize, usize, usize),
}

/// Run one configuration over one set of traces.
pub fn run_one(combo: Option<SchemeCombo>, traces: [Trace; 2]) -> SimulationReport {
    let config = match combo {
        Some(c) => CoupledConfig::anl(c),
        None => CoupledConfig::anl_baseline(),
    };
    CoupledSimulation::new(config, traces).run()
}

/// What one seed of a case contributes to the average — the unit of work a
/// campaign worker produces. Every field is an independent function of
/// `(combo, traces)` alone, which is what makes the campaign's fan-out
/// deterministic: outcomes can be computed in any order and folded in seed
/// order, reproducing the serial loop bit for bit (f64 accumulation order
/// included).
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct SeedOutcome {
    /// Intrepid's summary for this seed.
    pub intrepid: MachineSummary,
    /// Eureka's summary for this seed.
    pub eureka: MachineSummary,
    /// All paired jobs started simultaneously.
    pub sync_ok: bool,
    /// The seed deadlocked.
    pub deadlocked: bool,
    /// Deadlock-breaker activations.
    pub forced_releases: u64,
    /// Achieved paired proportion for this seed's traces.
    pub paired_share: f64,
    /// Rendezvous paths `(anchored, direct, independent)`.
    pub rendezvous: (usize, usize, usize),
}

/// Run one seed of a case: the independent cell the campaign parallelises
/// over.
pub fn run_seed(combo: Option<SchemeCombo>, traces: [Trace; 2]) -> SeedOutcome {
    let total_jobs = traces[0].len() + traces[1].len();
    let paired = traces[0].paired_count() + traces[1].paired_count();
    let paired_share = paired as f64 / total_jobs.max(1) as f64;
    let report = run_one(combo, traces);
    SeedOutcome {
        intrepid: report.summaries[0].clone(),
        eureka: report.summaries[1].clone(),
        sync_ok: report.all_pairs_synchronized(),
        deadlocked: report.deadlocked,
        forced_releases: report.forced_releases,
        paired_share,
        rendezvous: (
            report.rendezvous.anchored,
            report.rendezvous.direct,
            report.rendezvous.independent,
        ),
    }
}

/// Fold per-seed outcomes (in seed order) into a [`CaseResult`]. The fold
/// accumulates in slice order, so feeding it outcomes in the same order the
/// serial loop produced them yields a bit-identical average.
pub fn fold_outcomes(outcomes: &[SeedOutcome]) -> CaseResult {
    assert!(!outcomes.is_empty(), "a case needs at least one seed");
    let mut intrepid = Vec::with_capacity(outcomes.len());
    let mut eureka = Vec::with_capacity(outcomes.len());
    let mut sync_ok = true;
    let mut deadlocked = false;
    let mut forced = 0;
    let mut paired_share = 0.0;
    let mut rendezvous = (0usize, 0usize, 0usize);
    for o in outcomes {
        paired_share += o.paired_share;
        sync_ok &= o.sync_ok;
        deadlocked |= o.deadlocked;
        forced += o.forced_releases;
        rendezvous.0 += o.rendezvous.0;
        rendezvous.1 += o.rendezvous.1;
        rendezvous.2 += o.rendezvous.2;
        intrepid.push(o.intrepid.clone());
        eureka.push(o.eureka.clone());
    }
    CaseResult {
        intrepid: MachineSummary::average(&intrepid),
        eureka: MachineSummary::average(&eureka),
        sync_ok,
        deadlocked,
        forced_releases: forced,
        paired_share: paired_share / outcomes.len() as f64,
        rendezvous,
    }
}

/// Run a case across `scale.seeds` seeds and average. `mk_traces` builds the
/// per-seed traces (seed is passed in).
pub fn run_case<F>(combo: Option<SchemeCombo>, scale: Scale, mut mk_traces: F) -> CaseResult
where
    F: FnMut(u64) -> [Trace; 2],
{
    let outcomes: Vec<SeedOutcome> = (0..scale.seeds)
        .map(|seed| {
            let traces = mk_traces(seed + 1);
            eprintln!(
                "  case combo={} seed={}/{} …",
                combo.map_or("baseline".to_string(), |c| c.label()),
                seed + 1,
                scale.seeds
            );
            run_seed(combo, traces)
        })
        .collect();
    fold_outcomes(&outcomes)
}

/// One sweep grid point: the x-axis value (utilization or proportion), the
/// no-coscheduling baseline, and the four scheme-combination results.
pub type SweepPoint = (f64, CaseResult, Vec<(SchemeCombo, CaseResult)>);

/// Results of the Eureka-load sweep (Figs. 3–6): for each utilization, the
/// baseline and the four scheme combinations.
#[derive(Debug, Clone)]
pub struct LoadSweep {
    /// `(eureka_util, baseline, [HH, HY, YH, YY])` per grid point.
    pub points: Vec<SweepPoint>,
    /// Scale the sweep ran at.
    pub scale: Scale,
}

/// Run the full load sweep.
pub fn load_sweep(scale: Scale) -> LoadSweep {
    let points = EUREKA_UTILS
        .iter()
        .map(|&util| {
            let base = run_case(None, scale, |seed| anl_load_traces(seed, scale.days, util));
            let combos = SchemeCombo::ALL
                .iter()
                .map(|&c| {
                    (
                        c,
                        run_case(Some(c), scale, |seed| {
                            anl_load_traces(seed, scale.days, util)
                        }),
                    )
                })
                .collect();
            (util, base, combos)
        })
        .collect();
    LoadSweep { points, scale }
}

/// Results of the paired-proportion sweep (Figs. 7–10).
#[derive(Debug, Clone)]
pub struct PropSweep {
    /// `(proportion, baseline, [HH, HY, YH, YY])` per grid point.
    pub points: Vec<SweepPoint>,
    /// Scale the sweep ran at.
    pub scale: Scale,
}

/// Run the full proportion sweep.
pub fn prop_sweep(scale: Scale) -> PropSweep {
    let points = PROPORTIONS
        .iter()
        .map(|&p| {
            let base = run_case(None, scale, |seed| {
                anl_proportion_traces(seed, scale.days, p)
            });
            let combos = SchemeCombo::ALL
                .iter()
                .map(|&c| {
                    (
                        c,
                        run_case(Some(c), scale, |seed| {
                            anl_proportion_traces(seed, scale.days, p)
                        }),
                    )
                })
                .collect();
            (p, base, combos)
        })
        .collect();
    PropSweep { points, scale }
}

/// A paper-faithful ANL configuration with the coscheduling settings
/// overridden — used by the ablation harness.
pub fn anl_with(combo: SchemeCombo, edit: impl Fn(&mut CoschedConfig)) -> CoupledConfig {
    let mut cfg = CoupledConfig::anl(combo);
    for c in &mut cfg.cosched {
        edit(c);
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_quick() {
        // Note: avoids mutating the environment (tests run in parallel);
        // just checks the default path when the var is absent or unknown.
        let s = Scale::from_env();
        assert!(s.days >= 3 && s.seeds >= 1);
    }

    #[test]
    fn load_traces_have_expected_shape() {
        let [i, e] = anl_load_traces(1, 5, 0.5);
        assert_eq!(i.machine(), MachineId(0));
        assert_eq!(e.machine(), MachineId(1));
        assert!(i.len() > 100, "intrepid jobs {}", i.len());
        assert!((e.offered_utilization(100) - 0.5).abs() < 0.05);
        let share = (i.paired_count() + e.paired_count()) as f64 / (i.len() + e.len()) as f64;
        assert!(share > 0.01 && share < 0.4, "paired share {share}");
        pairing::validate_pairing(&i, &e).unwrap();
    }

    #[test]
    fn proportion_traces_hit_exact_proportion() {
        let [i, e] = anl_proportion_traces(2, 5, 0.20);
        assert_eq!(i.len(), e.len());
        let expect = (0.20 * i.len() as f64).round() as usize;
        assert_eq!(i.paired_count(), expect);
        assert_eq!(e.paired_count(), expect);
        // Eureka util should land near 0.5.
        let util = e.offered_utilization(100);
        assert!((util - 0.5).abs() < 0.15, "eureka util {util}");
        pairing::validate_pairing(&i, &e).unwrap();
    }

    #[test]
    fn smoke_case_runs_and_synchronizes() {
        let scale = Scale::smoke();
        let case = run_case(Some(SchemeCombo::YY), scale, |seed| {
            anl_load_traces(seed, scale.days, 0.5)
        });
        assert!(case.sync_ok);
        assert!(!case.deadlocked);
        assert!(case.intrepid.jobs > 50);
    }

    #[test]
    fn baseline_case_has_no_holds() {
        let scale = Scale::smoke();
        let case = run_case(None, scale, |seed| anl_load_traces(seed, scale.days, 0.25));
        assert_eq!(case.intrepid.total_holds, 0);
        assert_eq!(case.eureka.total_holds, 0);
        assert_eq!(case.intrepid.lost_node_hours, 0.0);
    }
}
