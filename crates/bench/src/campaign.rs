//! Parallel simulation campaign runner.
//!
//! Every paper figure (Figs. 3–10) is a sweep of (scheme combo × grid
//! point × seed) cases, and each *cell* of that grid is an independent
//! simulation — it owns its RNG seed, its traces, and its machines, and
//! shares nothing with any other cell. The campaign exploits exactly that:
//! cells are enumerated in a fixed **submission order**, fanned out over a
//! pool of scoped worker threads (the `crossbeam` shim: a pre-filled
//! multi-consumer channel as the work queue), and their outcomes are
//! reassembled by submission index before folding.
//!
//! # Determinism invariant
//!
//! A parallel campaign is **byte-identical** to the serial one. Two things
//! make this hold, and both are load-bearing:
//!
//! * each cell's [`SeedOutcome`] is a pure function of `(combo, traces)` —
//!   no shared mutable state, no wall-clock input;
//! * [`fold_outcomes`] accumulates floats in seed order, and the campaign
//!   always folds outcomes in submission order regardless of completion
//!   order.
//!
//! The invariant is pinned by a tier-1 integration test
//! (`tests/campaign.rs`) comparing serialized bytes of serial and parallel
//! sweeps.

use crate::harness::{
    anl_load_traces, anl_proportion_traces, fold_outcomes, run_seed, LoadSweep, PropSweep, Scale,
    SeedOutcome, SweepPoint, EUREKA_UTILS, PROPORTIONS,
};
use cosched_core::{CoupledConfig, CoupledSimulation, SchemeCombo};
use cosched_obs::PhaseSnapshot;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Which sweep a campaign covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepKind {
    /// Eureka-utilization load sweep (Figs. 3–6).
    Load,
    /// Paired-proportion sweep (Figs. 7–10).
    Proportion,
}

impl SweepKind {
    /// The sweep's x-axis grid.
    pub fn grid(self) -> &'static [f64] {
        match self {
            SweepKind::Load => &EUREKA_UTILS,
            SweepKind::Proportion => &PROPORTIONS,
        }
    }

    /// Stable machine-readable name.
    pub fn label(self) -> &'static str {
        match self {
            SweepKind::Load => "load",
            SweepKind::Proportion => "prop",
        }
    }
}

/// One independent unit of campaign work: a `(grid point, combo, seed)`
/// triple, self-describing enough to build its traces and run.
#[derive(Debug, Clone, Copy)]
pub struct CampaignCell {
    /// Which sweep the cell belongs to.
    pub kind: SweepKind,
    /// Grid-point value (Eureka utilization or paired proportion).
    pub x: f64,
    /// Scheme combination; `None` is the no-coscheduling baseline.
    pub combo: Option<SchemeCombo>,
    /// Trace seed (1-based, matching the serial harness).
    pub seed: u64,
    /// Trace span in days.
    pub days: u64,
}

impl CampaignCell {
    /// Build this cell's traces.
    pub fn traces(&self) -> [cosched_workload::Trace; 2] {
        match self.kind {
            SweepKind::Load => anl_load_traces(self.seed, self.days, self.x),
            SweepKind::Proportion => anl_proportion_traces(self.seed, self.days, self.x),
        }
    }

    /// Run the cell to its outcome.
    pub fn run(&self) -> SeedOutcome {
        run_seed(self.combo, self.traces())
    }
}

/// Enumerate a sweep's cells in submission order: for each grid point, the
/// baseline then the four combos (the order [`SchemeCombo::ALL`] lists
/// them), each across all seeds — exactly the order the serial
/// `load_sweep` / `prop_sweep` loops visit.
pub fn sweep_cells(kind: SweepKind, scale: Scale) -> Vec<CampaignCell> {
    let mut cells = Vec::new();
    for &x in kind.grid() {
        let combos = std::iter::once(None).chain(SchemeCombo::ALL.iter().copied().map(Some));
        for combo in combos {
            for seed in 0..scale.seeds {
                cells.push(CampaignCell {
                    kind,
                    x,
                    combo,
                    seed: seed + 1,
                    days: scale.days,
                });
            }
        }
    }
    cells
}

/// Run `cells` on a pool of `threads` workers, returning outcomes in
/// submission order.
///
/// The pool pre-fills an unbounded channel with every `(index, cell)` task
/// and drops the sender before spawning workers, so the shim's
/// mutex-guarded receiver is only ever polled non-blockingly (`try_recv`)
/// on a closed, fully loaded queue — `Empty` means the campaign is drained,
/// never "wait for more". Results come back tagged with their submission
/// index and are slotted into place.
///
/// # Panics
/// Panics if any worker panics (a cell failure is a simulation bug, not a
/// recoverable condition) or if `threads` is zero.
pub fn run_cells(cells: &[CampaignCell], threads: usize) -> Vec<SeedOutcome> {
    assert!(threads > 0, "campaign needs at least one worker");
    if threads == 1 || cells.len() <= 1 {
        // The serial reference path: no pool, same fold order.
        return cells.iter().map(CampaignCell::run).collect();
    }
    let (task_tx, task_rx) = crossbeam::channel::unbounded();
    for (i, cell) in cells.iter().enumerate() {
        task_tx.send((i, *cell)).expect("receiver held open below");
    }
    drop(task_tx);
    let (out_tx, out_rx) = crossbeam::channel::unbounded();
    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(cells.len()) {
            let rx = task_rx.clone();
            let tx = out_tx.clone();
            s.spawn(move || {
                while let Ok((i, cell)) = rx.try_recv() {
                    tx.send((i, cell.run()))
                        .expect("collector outlives workers");
                }
            });
        }
    })
    .expect("campaign worker panicked");
    drop(out_tx);
    let mut out: Vec<Option<SeedOutcome>> = Vec::new();
    out.resize_with(cells.len(), || None);
    while let Ok((i, outcome)) = out_rx.recv() {
        debug_assert!(out[i].is_none(), "cell {i} produced twice");
        out[i] = Some(outcome);
    }
    out.into_iter()
        .map(|o| o.expect("every submitted cell produces an outcome"))
        .collect()
}

/// Fold submission-ordered outcomes back into sweep points. Consumes the
/// outcomes in the same nested order [`sweep_cells`] emitted them.
pub fn assemble_points(kind: SweepKind, scale: Scale, outcomes: &[SeedOutcome]) -> Vec<SweepPoint> {
    let seeds = scale.seeds as usize;
    assert_eq!(
        outcomes.len(),
        kind.grid().len() * (1 + SchemeCombo::ALL.len()) * seeds,
        "outcome count must match the sweep grid"
    );
    let mut chunks = outcomes.chunks_exact(seeds);
    kind.grid()
        .iter()
        .map(|&x| {
            let base = fold_outcomes(chunks.next().expect("sized above"));
            let combos = SchemeCombo::ALL
                .iter()
                .map(|&c| (c, fold_outcomes(chunks.next().expect("sized above"))))
                .collect();
            (x, base, combos)
        })
        .collect()
}

/// Parallel equivalent of `harness::load_sweep`: same points, computed on
/// `threads` workers.
pub fn parallel_load_sweep(scale: Scale, threads: usize) -> LoadSweep {
    let cells = sweep_cells(SweepKind::Load, scale);
    let outcomes = run_cells(&cells, threads);
    LoadSweep {
        points: assemble_points(SweepKind::Load, scale, &outcomes),
        scale,
    }
}

/// Parallel equivalent of `harness::prop_sweep`.
pub fn parallel_prop_sweep(scale: Scale, threads: usize) -> PropSweep {
    let cells = sweep_cells(SweepKind::Proportion, scale);
    let outcomes = run_cells(&cells, threads);
    PropSweep {
        points: assemble_points(SweepKind::Proportion, scale, &outcomes),
        scale,
    }
}

/// One timed execution of the cell set at a given worker count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignTiming {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock for the whole cell set, seconds.
    pub wall_clock_secs: f64,
    /// Throughput in cells per second.
    pub cells_per_sec: f64,
    /// Serial (1-thread) wall-clock divided by this run's.
    pub speedup_vs_serial: f64,
}

/// Machine-readable benchmark record of one campaign — the unit committed
/// to `BENCH_sim.json` so later changes have a perf trajectory to regress
/// against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampaignReport {
    /// Sweep name (`"load"` / `"prop"`).
    pub sweep: String,
    /// Trace span in days.
    pub days: u64,
    /// Seeds per case.
    pub seeds: u64,
    /// Total cells in the campaign.
    pub cells: usize,
    /// Wall-clock timings, serial first.
    pub timings: Vec<CampaignTiming>,
    /// Every parallel run's outcomes equalled the serial run's.
    pub deterministic: bool,
    /// Wall-clock phase profile (scheduler iteration, release sweep, RPC,
    /// event dispatch) of one representative traced cell — the serial
    /// hot-path breakdown parallelism cannot hide.
    pub phase_profile: Vec<PhaseSnapshot>,
}

/// Run a campaign at 1 thread (the reference) and at each requested worker
/// count, timing each pass, verifying parallel outcomes equal serial ones,
/// and profiling one representative cell. Returns the sweep points (from
/// the serial pass) alongside the benchmark report.
pub fn bench_campaign(
    kind: SweepKind,
    scale: Scale,
    thread_counts: &[usize],
) -> (Vec<SweepPoint>, CampaignReport) {
    let cells = sweep_cells(kind, scale);
    let started = Instant::now();
    let serial = run_cells(&cells, 1);
    let serial_secs = started.elapsed().as_secs_f64();
    let mut timings = vec![CampaignTiming {
        threads: 1,
        wall_clock_secs: serial_secs,
        cells_per_sec: cells.len() as f64 / serial_secs.max(1e-9),
        speedup_vs_serial: 1.0,
    }];
    let mut deterministic = true;
    for &threads in thread_counts {
        if threads <= 1 {
            continue;
        }
        let started = Instant::now();
        let parallel = run_cells(&cells, threads);
        let secs = started.elapsed().as_secs_f64();
        deterministic &= parallel == serial;
        timings.push(CampaignTiming {
            threads,
            wall_clock_secs: secs,
            cells_per_sec: cells.len() as f64 / secs.max(1e-9),
            speedup_vs_serial: serial_secs / secs.max(1e-9),
        });
    }
    let phase_profile = phase_profile_of(&cells[0]);
    let report = CampaignReport {
        sweep: kind.label().to_string(),
        days: scale.days,
        seeds: scale.seeds,
        cells: cells.len(),
        timings,
        deterministic,
        phase_profile,
    };
    (assemble_points(kind, scale, &serial), report)
}

/// Compare a freshly measured campaign against a committed baseline.
///
/// Hard failures:
/// * the current run was **not deterministic** (a parallel pass diverged
///   from serial) — never tolerated, whatever the timing;
/// * the sweeps are not comparable (different sweep name or cell count);
/// * either report lacks a serial (1-thread) timing;
/// * the serial wall-clock regressed beyond `tolerance` × baseline.
///
/// On success returns the serial wall-clock ratio (current / baseline) for
/// reporting. Wall-clock is compared with a generous tolerance because CI
/// hosts are noisy and heterogeneous; determinism is compared exactly.
pub fn check_campaign(
    baseline: &CampaignReport,
    current: &CampaignReport,
    tolerance: f64,
) -> Result<f64, String> {
    if !current.deterministic {
        return Err(format!(
            "campaign {}: parallel outcomes diverged from serial (determinism regression)",
            current.sweep
        ));
    }
    if baseline.sweep != current.sweep {
        return Err(format!(
            "sweep mismatch: baseline is {:?}, current is {:?}",
            baseline.sweep, current.sweep
        ));
    }
    if baseline.cells != current.cells {
        return Err(format!(
            "campaign {}: cell count changed ({} baseline vs {} current) — \
             regenerate the baseline at this scale",
            current.sweep, baseline.cells, current.cells
        ));
    }
    let serial_secs = |r: &CampaignReport| {
        r.timings
            .iter()
            .find(|t| t.threads == 1)
            .map(|t| t.wall_clock_secs)
            .ok_or_else(|| format!("campaign {}: no serial (1-thread) timing", r.sweep))
    };
    let base = serial_secs(baseline)?;
    let cur = serial_secs(current)?;
    let ratio = cur / base.max(1e-9);
    if ratio > tolerance {
        return Err(format!(
            "campaign {}: serial wall-clock regressed {ratio:.2}x over baseline \
             ({cur:.2}s vs {base:.2}s, tolerance {tolerance:.1}x)",
            current.sweep
        ));
    }
    Ok(ratio)
}

/// Wall-clock phase profile of one cell, run traced.
fn phase_profile_of(cell: &CampaignCell) -> Vec<PhaseSnapshot> {
    let config = match cell.combo {
        Some(c) => CoupledConfig::anl(c),
        None => CoupledConfig::anl_baseline(),
    };
    CoupledSimulation::new(config, cell.traces())
        .run_traced()
        .profile
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { days: 2, seeds: 2 }
    }

    #[test]
    fn cells_enumerate_in_serial_sweep_order() {
        let cells = sweep_cells(SweepKind::Load, tiny());
        assert_eq!(cells.len(), EUREKA_UTILS.len() * 5 * 2);
        // First grid point: baseline seeds 1..=2, then HH seeds 1..=2.
        assert_eq!(cells[0].x, EUREKA_UTILS[0]);
        assert_eq!(cells[0].combo, None);
        assert_eq!(cells[0].seed, 1);
        assert_eq!(cells[1].seed, 2);
        assert_eq!(cells[2].combo, Some(SchemeCombo::HH));
        // Last cell: last grid point, YY, last seed.
        let last = cells.last().unwrap();
        assert_eq!(last.x, *EUREKA_UTILS.last().unwrap());
        assert_eq!(last.combo, Some(SchemeCombo::YY));
        assert_eq!(last.seed, 2);
    }

    #[test]
    fn parallel_outcomes_equal_serial() {
        // A small real slice of the proportion sweep, 1 vs 3 workers.
        let cells: Vec<CampaignCell> = sweep_cells(SweepKind::Proportion, tiny())
            .into_iter()
            .take(6)
            .collect();
        let serial = run_cells(&cells, 1);
        let parallel = run_cells(&cells, 3);
        assert_eq!(serial, parallel, "fan-out must not change outcomes");
    }

    #[test]
    fn assemble_points_matches_grid_shape() {
        let scale = tiny();
        let cells = sweep_cells(SweepKind::Load, scale);
        // Synthesize outcomes cheaply: run only the first cell and clone it
        // into every slot (assembly only cares about order and shape).
        let one = cells[0].run();
        let outcomes = vec![one; cells.len()];
        let points = assemble_points(SweepKind::Load, scale, &outcomes);
        assert_eq!(points.len(), EUREKA_UTILS.len());
        for (x, _base, combos) in &points {
            assert!(EUREKA_UTILS.contains(x));
            assert_eq!(combos.len(), SchemeCombo::ALL.len());
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let cells = sweep_cells(SweepKind::Load, tiny());
        let _ = run_cells(&cells, 0);
    }

    fn report(sweep: &str, cells: usize, serial_secs: f64, deterministic: bool) -> CampaignReport {
        CampaignReport {
            sweep: sweep.to_string(),
            days: 2,
            seeds: 2,
            cells,
            timings: vec![CampaignTiming {
                threads: 1,
                wall_clock_secs: serial_secs,
                cells_per_sec: cells as f64 / serial_secs.max(1e-9),
                speedup_vs_serial: 1.0,
            }],
            deterministic,
            phase_profile: Vec::new(),
        }
    }

    #[test]
    fn check_passes_within_tolerance_and_reports_ratio() {
        let base = report("load", 10, 2.0, true);
        let cur = report("load", 10, 4.0, true);
        let ratio = check_campaign(&base, &cur, 3.0).unwrap();
        assert!((ratio - 2.0).abs() < 1e-9);
    }

    #[test]
    fn check_fails_on_wall_clock_regression() {
        let base = report("load", 10, 1.0, true);
        let cur = report("load", 10, 5.0, true);
        let err = check_campaign(&base, &cur, 3.0).unwrap_err();
        assert!(err.contains("regressed 5.00x"), "{err}");
    }

    #[test]
    fn check_hard_fails_on_determinism_even_when_fast() {
        let base = report("load", 10, 2.0, true);
        let cur = report("load", 10, 0.5, false);
        let err = check_campaign(&base, &cur, 3.0).unwrap_err();
        assert!(err.contains("determinism regression"), "{err}");
    }

    #[test]
    fn check_rejects_incomparable_reports() {
        let base = report("load", 10, 2.0, true);
        let err = check_campaign(&base, &report("prop", 10, 2.0, true), 3.0).unwrap_err();
        assert!(err.contains("sweep mismatch"), "{err}");
        let err = check_campaign(&base, &report("load", 20, 2.0, true), 3.0).unwrap_err();
        assert!(err.contains("cell count changed"), "{err}");
    }

    #[test]
    fn campaign_report_roundtrips_through_json() {
        let base = report("load", 10, 2.0, true);
        let json = serde_json::to_string(&base).unwrap();
        let back: CampaignReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.sweep, "load");
        assert_eq!(back.cells, 10);
        assert_eq!(back.timings.len(), 1);
        assert!(back.deterministic);
    }
}
