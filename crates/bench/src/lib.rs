//! Experiment harnesses reproducing the paper's evaluation (§V).
//!
//! Each figure of the paper has a binary in `src/bin/` that regenerates its
//! rows/series; they all share the scenario builders and sweep runners in
//! [`harness`]. Criterion benches (in `benches/`) measure the simulator's
//! own performance and the cost of design alternatives.
//!
//! Scale control: the full paper-scale runs (one month, 10 seeds per case)
//! take minutes; set `COSCHED_SCALE=full` for them. The default `quick`
//! scale (10 days, 3 seeds) preserves every qualitative shape the paper
//! reports while keeping each figure binary under a minute; `smoke` (3
//! days, 1 seed) is for CI.

pub mod campaign;
pub mod figures;
pub mod harness;

pub use campaign::{
    bench_campaign, check_campaign, parallel_load_sweep, parallel_prop_sweep, CampaignCell,
    CampaignReport, CampaignTiming, SweepKind,
};
pub use harness::{CaseResult, LoadSweep, PropSweep, Scale, SeedOutcome};
