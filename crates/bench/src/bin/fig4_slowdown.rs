//! Fig. 4 — average slowdown by Eureka system load (a: Intrepid,
//! b: Eureka), per scheme combination, with the no-coscheduling baseline.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running load sweep at {scale:?}…");
    let sweep = harness::load_sweep(scale);
    let pts = figures::load_points(&sweep);
    print!(
        "{}",
        figures::fig_slowdown(
            &pts,
            0,
            "Fig. 4(a) Intrepid avg slowdown by Eureka sys. util."
        )
    );
    print!(
        "{}",
        figures::fig_slowdown(
            &pts,
            1,
            "Fig. 4(b) Eureka avg slowdown by Eureka sys. util."
        )
    );
}
