//! §V-B capability validation: every scheme combination, load, and paired
//! proportion must (1) start all pairs simultaneously and (2) never
//! deadlock with the release enhancement on. Also demonstrates that
//! hold-hold *does* deadlock with the enhancement off.
use cosched_bench::{figures, harness, Scale};
use cosched_core::{CoupledSimulation, SchemeCombo};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running validation sweeps at {scale:?}…");
    let load = harness::load_sweep(scale);
    let prop = harness::prop_sweep(scale);
    print!(
        "{}",
        figures::validation_table(&figures::load_points(&load), "Validation — load sweep (Eureka util.)")
    );
    print!(
        "{}",
        figures::validation_table(&figures::prop_points(&prop), "Validation — proportion sweep (paired share)")
    );

    // Deadlock demonstration: HH without the release enhancement.
    let cfg = harness::anl_with(SchemeCombo::HH, |c| c.release_period = None);
    let traces = harness::anl_load_traces(1, scale.days, 0.50);
    let report = CoupledSimulation::new(cfg, traces).run();
    println!();
    println!(
        "HH without release enhancement: deadlocked = {}, unfinished jobs = {:?} (paper: \"deadlocks are highly likely … when the simulation time span [is] more than 10 days\")",
        report.deadlocked, report.unfinished
    );
    let cfg = cosched_core::CoupledConfig::anl(SchemeCombo::HH);
    let report = CoupledSimulation::new(cfg, harness::anl_load_traces(1, scale.days, 0.50)).run();
    println!(
        "HH with 20-minute release enhancement: deadlocked = {}, unfinished jobs = {:?}",
        report.deadlocked, report.unfinished
    );
}
