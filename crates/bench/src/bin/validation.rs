//! §V-B capability validation: every scheme combination, load, and paired
//! proportion must (1) start all pairs simultaneously and (2) never
//! deadlock with the release enhancement on. Also demonstrates that
//! hold-hold *does* deadlock with the enhancement off.
use cosched_bench::{figures, harness, Scale};
use cosched_core::{CoupledSimulation, SchemeCombo};
use cosched_obs::{SinkObserver, VecSink};
use cosched_trace::{AttributionReport, CriticalPathReport, LifecycleSet};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running validation sweeps at {scale:?}…");
    let load = harness::load_sweep(scale);
    let prop = harness::prop_sweep(scale);
    print!(
        "{}",
        figures::validation_table(
            &figures::load_points(&load),
            "Validation — load sweep (Eureka util.)"
        )
    );
    print!(
        "{}",
        figures::validation_table(
            &figures::prop_points(&prop),
            "Validation — proportion sweep (paired share)"
        )
    );

    // Deadlock demonstration: HH without the release enhancement.
    let cfg = harness::anl_with(SchemeCombo::HH, |c| c.release_period = None);
    let traces = harness::anl_load_traces(1, scale.days, 0.50);
    let report = CoupledSimulation::new(cfg, traces).run();
    println!();
    println!(
        "HH without release enhancement: deadlocked = {}, unfinished jobs = {:?} (paper: \"deadlocks are highly likely … when the simulation time span [is] more than 10 days\")",
        report.deadlocked, report.unfinished
    );
    // Same run with the release enhancement on, fully traced so the trace
    // analysis layer can attribute wait time afterwards (the report must be
    // identical to an untraced run).
    let cfg = cosched_core::CoupledConfig::anl(SchemeCombo::HH);
    let observer = SinkObserver::new(VecSink::default());
    let arts = CoupledSimulation::with_observer(
        cfg,
        harness::anl_load_traces(1, scale.days, 0.50),
        observer,
    )
    .run_traced();
    let report = &arts.report;
    println!(
        "HH with 20-minute release enhancement: deadlocked = {}, unfinished jobs = {:?}",
        report.deadlocked, report.unfinished
    );
    println!();
    let records = &arts.observer.sink().records;
    println!(
        "observability: {} trace records, {} rpc calls, {} release sweeps",
        records.len(),
        report.stats.rpc_calls,
        report.stats.release_sweeps,
    );
    match LifecycleSet::from_records(records) {
        Ok(set) => print!("\n{}", AttributionReport::from_lifecycles(&set)),
        Err(e) => eprintln!("trace reconstruction failed: {e}"),
    }
    match CriticalPathReport::from_records(records) {
        Ok(cp) => {
            println!("rendezvous critical paths (per scheme combo):");
            print!("{cp}");
            println!();
        }
        Err(e) => eprintln!("critical-path reconstruction failed: {e}"),
    }
    println!("wall-clock profile:");
    for ph in &arts.profile {
        println!(
            "  {:<22} calls {:>8}  total {:>9}us  mean {:>7}ns  max {:>9}ns",
            ph.phase,
            ph.calls,
            ph.total_ns / 1_000,
            ph.mean_ns,
            ph.max_ns
        );
    }
    println!(
        "  {:<22} count {:>8}  mean {:>7.0}ns  max {:>9}ns",
        "rpc latency",
        arts.rpc_latency_ns.count,
        arts.rpc_latency_ns.mean(),
        arts.rpc_latency_ns.max
    );
}
