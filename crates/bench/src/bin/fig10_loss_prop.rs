//! Fig. 10 — service-unit loss by paired-job proportion, for local-hold
//! configurations.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running proportion sweep at {scale:?}…");
    let sweep = harness::prop_sweep(scale);
    let pts = figures::prop_points(&sweep);
    print!(
        "{}",
        figures::fig_loss(
            &pts,
            0,
            "Fig. 10(a) Intrepid loss of service unit (proportion/remote scheme)"
        )
    );
    print!(
        "{}",
        figures::fig_loss(
            &pts,
            1,
            "Fig. 10(b) Eureka loss of service unit (proportion/remote scheme)"
        )
    );
}
