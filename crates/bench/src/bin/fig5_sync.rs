//! Fig. 5 — average paired-job synchronization time by Eureka system load,
//! grouped by remote scheme, local hold vs yield.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running load sweep at {scale:?}…");
    let sweep = harness::load_sweep(scale);
    let pts = figures::load_points(&sweep);
    print!(
        "{}",
        figures::fig_sync(
            &pts,
            0,
            "Fig. 5(a) Intrepid avg job sync time (util/remote scheme)"
        )
    );
    print!(
        "{}",
        figures::fig_sync(
            &pts,
            1,
            "Fig. 5(b) Eureka avg job sync time (util/remote scheme)"
        )
    );
}
