//! Ablations of the design choices DESIGN.md calls out:
//!
//! * release-period sweep (deadlock breaker granularity),
//! * maximum held-node fraction (hold → yield degradation),
//! * maximum yields before escalating to hold,
//! * scheduling policy (WFP vs FCFS) under coscheduling,
//! * backfilling on/off.
//!
//! Each ablation runs the HH (most sensitive) configuration on the standard
//! load-sweep workload at Eureka utilization 0.50.
use cosched_bench::{harness, Scale};
use cosched_core::{CoupledConfig, CoupledSimulation, SchemeCombo};
use cosched_metrics::table::{num, pct, Table};
use cosched_sched::PolicyKind;
use cosched_sim::SimDuration;

fn run_with(cfg: CoupledConfig, scale: Scale) -> (f64, f64, f64, f64, bool) {
    // Average over seeds: (intrepid wait, eureka wait, sync avg, loss rate I, sync_ok)
    let mut iw = 0.0;
    let mut ew = 0.0;
    let mut sync = 0.0;
    let mut loss = 0.0;
    let mut ok = true;
    for seed in 0..scale.seeds {
        let traces = harness::anl_load_traces(seed + 1, scale.days, 0.50);
        let r = CoupledSimulation::new(cfg.clone(), traces).run();
        iw += r.summaries[0].avg_wait_mins;
        ew += r.summaries[1].avg_wait_mins;
        sync += (r.summaries[0].avg_sync_mins + r.summaries[1].avg_sync_mins) / 2.0;
        loss += r.summaries[0].lost_util_rate;
        ok &= r.all_pairs_synchronized() && !r.deadlocked;
    }
    let n = scale.seeds as f64;
    (iw / n, ew / n, sync / n, loss / n, ok)
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("running ablations at {scale:?}…");

    let mut t = Table::new(
        "Ablation — release period (HH, Eureka util 0.50)",
        &[
            "release period",
            "I wait (min)",
            "E wait (min)",
            "avg sync (min)",
            "I loss rate",
            "ok",
        ],
    );
    for mins in [5u64, 10, 20, 40, 80] {
        let cfg = harness::anl_with(SchemeCombo::HH, |c| {
            c.release_period = Some(SimDuration::from_mins(mins));
        });
        let (iw, ew, sy, lo, ok) = run_with(cfg, scale);
        t.row(&[
            format!("{mins} min"),
            num(iw, 1),
            num(ew, 1),
            num(sy, 1),
            pct(lo),
            ok.to_string(),
        ]);
    }
    print!("{t}");

    let mut t = Table::new(
        "Ablation — max held-node fraction (HH)",
        &[
            "held cap",
            "I wait (min)",
            "E wait (min)",
            "avg sync (min)",
            "I loss rate",
            "ok",
        ],
    );
    for cap in [Some(0.1), Some(0.25), Some(0.5), None] {
        let cfg = harness::anl_with(SchemeCombo::HH, |c| c.max_held_fraction = cap);
        let (iw, ew, sy, lo, ok) = run_with(cfg, scale);
        let label = cap.map_or("off".to_string(), pct);
        t.row(&[
            label,
            num(iw, 1),
            num(ew, 1),
            num(sy, 1),
            pct(lo),
            ok.to_string(),
        ]);
    }
    print!("{t}");

    let mut t = Table::new(
        "Ablation — max yields before hold (YY)",
        &[
            "yield cap",
            "I wait (min)",
            "E wait (min)",
            "avg sync (min)",
            "I loss rate",
            "ok",
        ],
    );
    for cap in [Some(3u32), Some(10), Some(50), None] {
        let cfg = harness::anl_with(SchemeCombo::YY, |c| c.max_yields_before_hold = cap);
        let (iw, ew, sy, lo, ok) = run_with(cfg, scale);
        let label = cap.map_or("off".to_string(), |c| c.to_string());
        t.row(&[
            label,
            num(iw, 1),
            num(ew, 1),
            num(sy, 1),
            pct(lo),
            ok.to_string(),
        ]);
    }
    print!("{t}");

    let mut t = Table::new(
        "Ablation — queue policy under coscheduling (HH)",
        &[
            "policy",
            "I wait (min)",
            "E wait (min)",
            "avg sync (min)",
            "I loss rate",
            "ok",
        ],
    );
    for policy in [PolicyKind::Wfp, PolicyKind::Fcfs] {
        let mut cfg = CoupledConfig::anl(SchemeCombo::HH);
        cfg.machines[0].policy = policy;
        cfg.machines[1].policy = policy;
        let (iw, ew, sy, lo, ok) = run_with(cfg, scale);
        t.row(&[
            format!("{policy:?}"),
            num(iw, 1),
            num(ew, 1),
            num(sy, 1),
            pct(lo),
            ok.to_string(),
        ]);
    }
    print!("{t}");

    let mut t = Table::new(
        "Ablation — EASY backfilling (HH)",
        &[
            "backfill",
            "I wait (min)",
            "E wait (min)",
            "avg sync (min)",
            "I loss rate",
            "ok",
        ],
    );
    for bf in [true, false] {
        let mut cfg = CoupledConfig::anl(SchemeCombo::HH);
        cfg.machines[0].backfill = bf;
        cfg.machines[1].backfill = bf;
        let (iw, ew, sy, lo, ok) = run_with(cfg, scale);
        t.row(&[
            bf.to_string(),
            num(iw, 1),
            num(ew, 1),
            num(sy, 1),
            pct(lo),
            ok.to_string(),
        ]);
    }
    print!("{t}");
}
