//! Fig. 8 — average slowdown by paired-job proportion (a: Intrepid,
//! b: Eureka), per scheme combination, with the no-coscheduling baseline.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running proportion sweep at {scale:?}…");
    let sweep = harness::prop_sweep(scale);
    let pts = figures::prop_points(&sweep);
    print!(
        "{}",
        figures::fig_slowdown(
            &pts,
            0,
            "Fig. 8(a) Intrepid avg slowdown by paired-job proportion"
        )
    );
    print!(
        "{}",
        figures::fig_slowdown(
            &pts,
            1,
            "Fig. 8(b) Eureka avg slowdown by paired-job proportion"
        )
    );
}
