//! Fig. 3 — average waiting time by Eureka system load (a: Intrepid,
//! b: Eureka), per scheme combination, with the no-coscheduling baseline.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running load sweep at {scale:?}…");
    let sweep = harness::load_sweep(scale);
    let pts = figures::load_points(&sweep);
    print!(
        "{}",
        figures::fig_wait(&pts, 0, "Fig. 3(a) Intrepid avg wait by Eureka sys. util.")
    );
    print!(
        "{}",
        figures::fig_wait(&pts, 1, "Fig. 3(b) Eureka avg wait by Eureka sys. util.")
    );
}
