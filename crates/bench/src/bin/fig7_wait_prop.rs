//! Fig. 7 — average waiting time by paired-job proportion (a: Intrepid,
//! b: Eureka), per scheme combination, with the no-coscheduling baseline.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running proportion sweep at {scale:?}…");
    let sweep = harness::prop_sweep(scale);
    let pts = figures::prop_points(&sweep);
    print!(
        "{}",
        figures::fig_wait(
            &pts,
            0,
            "Fig. 7(a) Intrepid avg wait by paired-job proportion"
        )
    );
    print!(
        "{}",
        figures::fig_wait(
            &pts,
            1,
            "Fig. 7(b) Eureka avg wait by paired-job proportion"
        )
    );
}
