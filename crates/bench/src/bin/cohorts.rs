//! Cohort analysis: who pays for coscheduling?
//!
//! The paper attributes the hold scheme's overall-average degradation to
//! *regular* jobs ("when the nodes are held by a job, they cannot be used
//! by other jobs … other regular jobs will suffer more waiting time",
//! §V-D). This harness splits each machine's records into paired and
//! regular cohorts and size classes under every scheme combination.
use cosched_bench::{harness, Scale};
use cosched_core::SchemeCombo;
use cosched_metrics::table::{num, Table};
use cosched_metrics::CohortBreakdown;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running cohort analysis at {scale:?}…");

    for (m, name, capacity) in [(0usize, "Intrepid", 40_960u64), (1, "Eureka", 100)] {
        let mut t = Table::new(
            format!("{name} cohorts (Eureka util 0.50, pair share 7.5 %)"),
            &[
                "combo",
                "paired n",
                "paired wait (min)",
                "regular n",
                "regular wait (min)",
                "regular − paired",
                "narrow wait",
                "medium wait",
                "wide wait",
            ],
        );
        for combo in [
            None,
            Some(SchemeCombo::HH),
            Some(SchemeCombo::HY),
            Some(SchemeCombo::YH),
            Some(SchemeCombo::YY),
        ] {
            // Average the cohort stats across seeds.
            let mut acc = [0.0f64; 6];
            let mut counts = [0usize; 2];
            for seed in 1..=scale.seeds {
                let traces = harness::anl_load_traces(seed, scale.days, 0.50);
                let report = harness::run_one(combo, traces);
                let b = CohortBreakdown::of(&report.records[m], capacity);
                counts[0] += b.paired.count;
                counts[1] += b.regular.count;
                acc[0] += b.paired.avg_wait_mins;
                acc[1] += b.regular.avg_wait_mins;
                acc[2] += b.regular_penalty_mins();
                for (i, c) in b.size_classes.iter().enumerate() {
                    acc[3 + i] += c.stats.avg_wait_mins;
                }
            }
            let n = scale.seeds as f64;
            t.row(&[
                combo.map_or("baseline".into(), |c| c.label()),
                (counts[0] / scale.seeds as usize).to_string(),
                num(acc[0] / n, 1),
                (counts[1] / scale.seeds as usize).to_string(),
                num(acc[1] / n, 1),
                num(acc[2] / n, 1),
                num(acc[3] / n, 1),
                num(acc[4] / n, 1),
                num(acc[5] / n, 1),
            ]);
        }
        print!("{t}");
        println!();
    }
}
