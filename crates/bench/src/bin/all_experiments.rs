//! Run every experiment of the paper's evaluation section and print all
//! figure tables (Figs. 3–10 plus the §V-B validation). Writing the output
//! to EXPERIMENTS.md documents a full reproduction pass:
//!
//! ```text
//! COSCHED_SCALE=full cargo run --release -p cosched-bench --bin all_experiments
//! ```
use cosched_bench::{figures, harness, Scale};
use cosched_core::{CoupledSimulation, SchemeCombo};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running all experiments at {scale:?} (set COSCHED_SCALE=full for paper scale)…");
    let t0 = std::time::Instant::now();

    let load = harness::load_sweep(scale);
    eprintln!("load sweep done in {:?}", t0.elapsed());
    let prop = harness::prop_sweep(scale);
    eprintln!("both sweeps done in {:?}", t0.elapsed());

    let lp = figures::load_points(&load);
    let pp = figures::prop_points(&prop);

    println!("# Reproduction run — all experiments");
    println!();
    println!(
        "Scale: {} days per trace, {} seeds per case.",
        scale.days, scale.seeds
    );
    println!();
    print!(
        "{}",
        figures::validation_table(&lp, "Validation — load sweep")
    );
    println!();
    print!(
        "{}",
        figures::validation_table(&pp, "Validation — proportion sweep")
    );
    println!();
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_wait(
                &lp,
                m,
                &format!(
                    "Fig. 3({}) {name} avg wait by Eureka sys. util.",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_slowdown(
                &lp,
                m,
                &format!(
                    "Fig. 4({}) {name} avg slowdown by Eureka sys. util.",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_sync(
                &lp,
                m,
                &format!(
                    "Fig. 5({}) {name} avg job sync time by Eureka sys. util.",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_loss(
                &lp,
                m,
                &format!(
                    "Fig. 6({}) {name} service-unit loss by Eureka sys. util.",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_wait(
                &pp,
                m,
                &format!(
                    "Fig. 7({}) {name} avg wait by paired proportion",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_slowdown(
                &pp,
                m,
                &format!(
                    "Fig. 8({}) {name} avg slowdown by paired proportion",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_sync(
                &pp,
                m,
                &format!(
                    "Fig. 9({}) {name} avg job sync time by paired proportion",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }
    for (m, name) in [(0, "Intrepid"), (1, "Eureka")] {
        print!(
            "{}",
            figures::fig_loss(
                &pp,
                m,
                &format!(
                    "Fig. 10({}) {name} service-unit loss by paired proportion",
                    if m == 0 { 'a' } else { 'b' }
                )
            )
        );
        println!();
    }

    // Deadlock demonstration (§V-B).
    let cfg = harness::anl_with(SchemeCombo::HH, |c| c.release_period = None);
    let without = CoupledSimulation::new(cfg, harness::anl_load_traces(1, scale.days, 0.50)).run();
    let with = CoupledSimulation::new(
        cosched_core::CoupledConfig::anl(SchemeCombo::HH),
        harness::anl_load_traces(1, scale.days, 0.50),
    )
    .run();
    println!("## Deadlock (§V-B)");
    println!();
    println!("| configuration | deadlocked | unfinished jobs |");
    println!("|---------------|------------|-----------------|");
    println!(
        "| HH, release enhancement off | {} | {:?} |",
        without.deadlocked, without.unfinished
    );
    println!(
        "| HH, 20-minute release       | {} | {:?} |",
        with.deadlocked, with.unfinished
    );
    eprintln!("total {:?}", t0.elapsed());
}
