//! Fig. 9 — average paired-job synchronization time by paired-job
//! proportion, grouped by remote scheme, local hold vs yield.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running proportion sweep at {scale:?}…");
    let sweep = harness::prop_sweep(scale);
    let pts = figures::prop_points(&sweep);
    print!(
        "{}",
        figures::fig_sync(
            &pts,
            0,
            "Fig. 9(a) Intrepid avg job sync time (proportion/remote scheme)"
        )
    );
    print!(
        "{}",
        figures::fig_sync(
            &pts,
            1,
            "Fig. 9(b) Eureka avg job sync time (proportion/remote scheme)"
        )
    );
}
