//! Protocol coscheduling versus advance co-reservation (the §III
//! comparator) on identical workloads.
//!
//! The paper argues co-reservation is unsuitable for coupled HEC systems
//! because fixed walltime-sized slots leave temporal fragmentation that
//! hurts regular jobs. This harness measures that argument: the same
//! paired workloads run through (a) the no-coordination baseline, (b) the
//! protocol coscheduler under YY and HH, and (c) the reservation-based
//! coupled scheduler from `cosched-resv`.
//!
//! Expected shape: both (b) and (c) synchronize all pairs; the reservation
//! scheduler pays a markedly higher regular-job waiting cost and loses far
//! more service units (entire walltime tails instead of hold windows).
use cosched_bench::{harness, Scale};
use cosched_core::SchemeCombo;
use cosched_metrics::table::{num, pct, Table};
use cosched_resv::ReservationSimulation;

fn main() {
    let scale = Scale::from_env();
    eprintln!("running reservation comparison at {scale:?}…");

    let mut table = Table::new(
        format!(
            "Coscheduling vs advance co-reservation ({} days, {} seeds, Eureka util 0.50)",
            scale.days, scale.seeds
        ),
        &[
            "scheduler",
            "I wait (min)",
            "I slowdown",
            "E wait (min)",
            "E slowdown",
            "I loss rate",
            "E loss rate",
            "pairs sync'd",
        ],
    );

    // Accumulators: [intrepid wait, intrepid slow, eureka wait, eureka slow,
    // loss0, loss1], plus sync flag.
    let mut rows: Vec<(String, [f64; 6], bool)> = vec![
        ("baseline (no coordination)".into(), [0.0; 6], true),
        ("protocol cosched YY".into(), [0.0; 6], true),
        ("protocol cosched HH".into(), [0.0; 6], true),
        ("advance co-reservation".into(), [0.0; 6], true),
    ];

    for seed in 1..=scale.seeds {
        let traces = harness::anl_load_traces(seed, scale.days, 0.50);

        let add = |row: &mut (String, [f64; 6], bool),
                   s0: &cosched_metrics::MachineSummary,
                   s1: &cosched_metrics::MachineSummary,
                   sync: bool| {
            row.1[0] += s0.avg_wait_mins;
            row.1[1] += s0.avg_slowdown;
            row.1[2] += s1.avg_wait_mins;
            row.1[3] += s1.avg_slowdown;
            row.1[4] += s0.lost_util_rate;
            row.1[5] += s1.lost_util_rate;
            row.2 &= sync;
        };

        let r = harness::run_one(None, traces.clone());
        add(&mut rows[0], &r.summaries[0], &r.summaries[1], true);
        let r = harness::run_one(Some(SchemeCombo::YY), traces.clone());
        add(
            &mut rows[1],
            &r.summaries[0],
            &r.summaries[1],
            r.all_pairs_synchronized(),
        );
        let r = harness::run_one(Some(SchemeCombo::HH), traces.clone());
        add(
            &mut rows[2],
            &r.summaries[0],
            &r.summaries[1],
            r.all_pairs_synchronized(),
        );
        let r = ReservationSimulation::new(["Intrepid", "Eureka"], [40_960, 100], traces).run();
        add(
            &mut rows[3],
            &r.summaries[0],
            &r.summaries[1],
            r.all_pairs_synchronized(),
        );
    }

    let n = scale.seeds as f64;
    for (label, acc, sync) in rows {
        table.row(&[
            label.clone(),
            num(acc[0] / n, 1),
            num(acc[1] / n, 2),
            num(acc[2] / n, 1),
            num(acc[3] / n, 2),
            pct(acc[4] / n),
            pct(acc[5] / n),
            if label.starts_with("baseline") {
                "n/a".into()
            } else {
                sync.to_string()
            },
        ]);
    }
    print!("{table}");
}
