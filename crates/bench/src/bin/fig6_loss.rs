//! Fig. 6 — service-unit loss (node-hours, lost utilization rate) by Eureka
//! system load, for local-hold configurations.
use cosched_bench::{figures, harness, Scale};

fn main() {
    let scale = Scale::from_env();
    eprintln!("running load sweep at {scale:?}…");
    let sweep = harness::load_sweep(scale);
    let pts = figures::load_points(&sweep);
    print!(
        "{}",
        figures::fig_loss(
            &pts,
            0,
            "Fig. 6(a) Intrepid loss of service unit (util/remote scheme)"
        )
    );
    print!(
        "{}",
        figures::fig_loss(
            &pts,
            1,
            "Fig. 6(b) Eureka loss of service unit (util/remote scheme)"
        )
    );
}
