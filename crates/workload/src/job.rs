//! The job record shared by every component of the simulator.

use cosched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a job uniquely *within one machine's trace*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// Identifies one of the coupled machines (scheduling domains).
///
/// The paper couples exactly two systems; the type is an index rather than a
/// two-variant enum because the future-work section contemplates N-way
/// coscheduling, and nothing in the algorithm is binary-specific.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct MachineId(pub usize);

/// Cross-domain reference to a job's *mate*: the associated job on the other
/// machine that must start at the same instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MateRef {
    /// Which machine the mate was submitted to.
    pub machine: MachineId,
    /// The mate's id on that machine.
    pub job: JobId,
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

impl fmt::Display for MachineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

impl fmt::Display for MateRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.machine, self.job)
    }
}

/// One batch job as recorded in (or synthesised into) a trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Job {
    /// Trace-local identifier.
    pub id: JobId,
    /// The machine this job was submitted to.
    pub machine: MachineId,
    /// Submission instant.
    pub submit: SimTime,
    /// Number of nodes requested.
    pub size: u64,
    /// Actual runtime (known to the simulator, not to the scheduler).
    pub runtime: SimDuration,
    /// User-requested walltime (the scheduler's runtime estimate; always
    /// ≥ `runtime` in well-formed traces, enforced by [`Job::new`]).
    pub walltime: SimDuration,
    /// The associated job on the other machine, if this job is paired.
    pub mate: Option<MateRef>,
}

impl Job {
    /// Construct a job, clamping `walltime` up to at least `runtime` (a
    /// scheduler must never see an estimate below the true runtime, or a
    /// "running job overran its walltime" state the simulator does not
    /// model would result).
    ///
    /// # Panics
    /// Panics if `size == 0` or `runtime` is zero: zero-width or zero-length
    /// jobs are trace corruption.
    pub fn new(
        id: JobId,
        machine: MachineId,
        submit: SimTime,
        size: u64,
        runtime: SimDuration,
        walltime: SimDuration,
    ) -> Self {
        assert!(size > 0, "job {id} requests zero nodes");
        assert!(!runtime.is_zero(), "job {id} has zero runtime");
        Job {
            id,
            machine,
            submit,
            size,
            runtime,
            walltime: walltime.max(runtime),
            mate: None,
        }
    }

    /// Builder-style mate assignment.
    pub fn with_mate(mut self, mate: MateRef) -> Self {
        self.mate = Some(mate);
        self
    }

    /// True if this job is half of an associated pair.
    pub fn is_paired(&self) -> bool {
        self.mate.is_some()
    }

    /// The work this job represents, in node-seconds.
    pub fn node_seconds(&self) -> u64 {
        self.size.saturating_mul(self.runtime.as_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(0),
            SimTime::from_secs(100),
            64,
            SimDuration::from_secs(3600),
            SimDuration::from_secs(7200),
        )
    }

    #[test]
    fn walltime_clamped_to_runtime() {
        let j = Job::new(
            JobId(1),
            MachineId(0),
            SimTime::ZERO,
            8,
            SimDuration::from_secs(500),
            SimDuration::from_secs(100), // below runtime: must be raised
        );
        assert_eq!(j.walltime, SimDuration::from_secs(500));
    }

    #[test]
    fn walltime_above_runtime_kept() {
        let j = job(1);
        assert_eq!(j.walltime, SimDuration::from_secs(7200));
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn rejects_zero_size() {
        Job::new(
            JobId(1),
            MachineId(0),
            SimTime::ZERO,
            0,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        );
    }

    #[test]
    #[should_panic(expected = "zero runtime")]
    fn rejects_zero_runtime() {
        Job::new(
            JobId(1),
            MachineId(0),
            SimTime::ZERO,
            4,
            SimDuration::ZERO,
            SimDuration::from_secs(10),
        );
    }

    #[test]
    fn mate_assignment() {
        let mate = MateRef {
            machine: MachineId(1),
            job: JobId(77),
        };
        let j = job(1).with_mate(mate);
        assert!(j.is_paired());
        assert_eq!(j.mate, Some(mate));
        assert!(!job(2).is_paired());
    }

    #[test]
    fn node_seconds() {
        assert_eq!(job(1).node_seconds(), 64 * 3600);
    }

    #[test]
    fn display_forms() {
        assert_eq!(JobId(5).to_string(), "j5");
        assert_eq!(MachineId(1).to_string(), "m1");
        let m = MateRef {
            machine: MachineId(1),
            job: JobId(5),
        };
        assert_eq!(m.to_string(), "m1/j5");
    }

    #[test]
    fn serde_roundtrip() {
        let j = job(9).with_mate(MateRef {
            machine: MachineId(1),
            job: JobId(3),
        });
        let s = serde_json::to_string(&j).unwrap();
        let back: Job = serde_json::from_str(&s).unwrap();
        assert_eq!(j, back);
    }
}
