//! Synthetic workload models for the coupled Argonne machines.
//!
//! The paper's traces (production Intrepid and Eureka logs from 2010) are not
//! public, so we synthesise statistically similar workloads. The published
//! characteristics we calibrate against:
//!
//! * Intrepid: 40,960 nodes; job sizes 512–32,768 nodes (Blue Gene/P
//!   partition sizes, heavily skewed toward 512); a month-long trace holds
//!   9,219 jobs; load is "high and stable".
//! * Eureka: 100 nodes; job sizes 1–100; load is "low and unstable", and the
//!   evaluation repacks it to offered utilizations 0.25 / 0.50 / 0.75 by
//!   scaling arrival intervals.
//!
//! Job sizes come from an empirical discrete histogram, runtimes from a
//! log-normal (the standard parallel-workload runtime model), walltime
//! estimates from runtime times a uniform user-overestimate factor, and
//! arrivals from a Poisson process whose rate is derived from the target
//! utilization. After generation the trace is optionally re-scaled with
//! [`Trace::scale_to_utilization`], exactly like the paper's half-synthetic
//! traces, to nail the target despite clamping effects.

use crate::job::{Job, JobId, MachineId};
use crate::trace::Trace;
use cosched_sim::dist::{sample_clamped_u64, DiscreteWeighted, Distribution, LogNormal};
use cosched_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Arrival-process shape.
///
/// Production traces are not time-homogeneous: submissions peak during
/// working hours. The paper's half-synthetic construction deliberately
/// preserves "the shape of job arrival distribution"; the diurnal option
/// lets experiments check that the coscheduling results are not an artifact
/// of flat Poisson arrivals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalPattern {
    /// Time-homogeneous Poisson process.
    Poisson,
    /// Poisson process with a sinusoidal daily rate modulation:
    /// `rate(t) = base × (1 + amplitude × sin(2πt/day))`, thinned from the
    /// peak rate. `amplitude` in `[0, 1)`; 0 degenerates to Poisson.
    Diurnal {
        /// Relative swing of the daily rate, `0.0 ≤ amplitude < 1.0`.
        amplitude: f64,
    },
}

/// Statistical description of one machine's workload.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Human-readable machine name (also used in reports).
    pub name: String,
    /// Number of schedulable nodes.
    pub nodes: u64,
    /// Job-size histogram (values are node counts).
    pub size_dist: DiscreteWeighted,
    /// Runtime distribution, seconds.
    pub runtime_dist: LogNormal,
    /// Runtime clamp, seconds.
    pub runtime_bounds: (u64, u64),
    /// Walltime = runtime × Uniform[lo, hi] overestimate factor.
    pub walltime_factor: (f64, f64),
    /// Hard cap on requested walltime, seconds.
    pub max_walltime: u64,
}

impl MachineModel {
    /// The Intrepid (Blue Gene/P) workload model. Size histogram follows the
    /// power-of-two partition sizes with mass concentrated at 512 nodes;
    /// runtime calibrated so a month at the default utilization holds
    /// roughly the paper's 9,219 jobs.
    pub fn intrepid() -> Self {
        MachineModel {
            name: "Intrepid".to_string(),
            nodes: 40_960,
            size_dist: DiscreteWeighted::new(&[
                (512.0, 40.0),
                (1_024.0, 24.0),
                (2_048.0, 14.0),
                (4_096.0, 10.0),
                (8_192.0, 7.0),
                (16_384.0, 4.0),
                (32_768.0, 1.0),
            ]),
            runtime_dist: LogNormal::from_mean_cv(3_000.0, 1.6),
            runtime_bounds: (300, 12 * 3_600),
            walltime_factor: (1.2, 3.0),
            max_walltime: 24 * 3_600,
        }
    }

    /// The Eureka (analysis cluster) workload model: 100 nodes, small jobs
    /// (the paper: sizes range 1–100), shorter runtimes.
    pub fn eureka() -> Self {
        MachineModel {
            name: "Eureka".to_string(),
            nodes: 100,
            size_dist: DiscreteWeighted::new(&[
                (1.0, 30.0),
                (2.0, 12.0),
                (4.0, 14.0),
                (8.0, 14.0),
                (16.0, 12.0),
                (32.0, 10.0),
                (64.0, 6.0),
                (100.0, 2.0),
            ]),
            runtime_dist: LogNormal::from_mean_cv(2_400.0, 1.5),
            runtime_bounds: (60, 8 * 3_600),
            walltime_factor: (1.2, 3.0),
            max_walltime: 12 * 3_600,
        }
    }

    /// Replace the runtime distribution (used by harnesses that need a
    /// specific work-per-job to hit a utilization target at a fixed job
    /// count, as in the paired-proportion experiments).
    pub fn with_runtime(mut self, mean_secs: f64, cv: f64) -> Self {
        self.runtime_dist = LogNormal::from_mean_cv(mean_secs, cv);
        self
    }

    /// Mean job size implied by the histogram, in nodes.
    pub fn mean_size(&self) -> f64 {
        self.size_dist.mean()
    }

    /// Mean runtime implied by the (unclamped) distribution, seconds.
    pub fn mean_runtime(&self) -> f64 {
        self.runtime_dist.mean()
    }

    /// Mean arrival interval (seconds) that offers `utilization` on this
    /// machine: `mean_size × mean_runtime / (nodes × utilization)`.
    pub fn interarrival_for_utilization(&self, utilization: f64) -> f64 {
        assert!(utilization > 0.0, "utilization must be positive");
        self.mean_size() * self.mean_runtime() / (self.nodes as f64 * utilization)
    }
}

/// Builder that synthesises a [`Trace`] from a [`MachineModel`].
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    model: MachineModel,
    machine: MachineId,
    span: SimDuration,
    target_utilization: Option<f64>,
    job_count: Option<usize>,
    arrivals: ArrivalPattern,
}

impl TraceGenerator {
    /// Start building a trace for `machine` using `model`. Defaults: 30-day
    /// span, utilization 0.5, arrival rate derived from utilization.
    pub fn new(model: MachineModel, machine: MachineId) -> Self {
        TraceGenerator {
            model,
            machine,
            span: SimDuration::from_days(30),
            target_utilization: Some(0.5),
            job_count: None,
            arrivals: ArrivalPattern::Poisson,
        }
    }

    /// Select the arrival-process shape (default: homogeneous Poisson).
    /// A diurnal pattern with amplitude 0 is normalised to plain Poisson.
    pub fn arrivals(mut self, pattern: ArrivalPattern) -> Self {
        self.arrivals = match pattern {
            ArrivalPattern::Diurnal { amplitude } => {
                assert!(
                    (0.0..1.0).contains(&amplitude),
                    "diurnal amplitude {amplitude} outside [0,1)"
                );
                if amplitude == 0.0 {
                    ArrivalPattern::Poisson
                } else {
                    pattern
                }
            }
            ArrivalPattern::Poisson => pattern,
        };
        self
    }

    /// Set the submission span.
    pub fn span(mut self, span: SimDuration) -> Self {
        assert!(!span.is_zero(), "span must be positive");
        self.span = span;
        self
    }

    /// Target offered utilization; with Poisson arrivals the generated
    /// trace is post-scaled to hit it within 0.5 %, with diurnal arrivals
    /// the rate is corrected by regeneration (approximate, within a few
    /// per cent).
    pub fn target_utilization(mut self, u: f64) -> Self {
        assert!(u > 0.0 && u <= 1.5, "unreasonable utilization target {u}");
        self.target_utilization = Some(u);
        self
    }

    /// Fix the number of jobs instead of deriving it from the utilization
    /// target (paper §V-E generates an Eureka workload "that has the same
    /// number of jobs and is within the same time span as the Intrepid
    /// trace"). Disables post-scaling so the span is preserved.
    pub fn job_count(mut self, n: usize) -> Self {
        assert!(n >= 2, "need at least two jobs");
        self.job_count = Some(n);
        self.target_utilization = None;
        self
    }

    /// Access the underlying model.
    pub fn model(&self) -> &MachineModel {
        &self.model
    }

    /// Synthesise the trace. Deterministic in `rng`.
    pub fn generate(&self, rng: &mut SimRng) -> Trace {
        let mut trace = self.generate_once(1.0, rng);
        if let Some(u) = self.target_utilization {
            if trace.len() >= 2 {
                match self.arrivals {
                    // Homogeneous arrivals: the paper's interval scaling.
                    ArrivalPattern::Poisson => {
                        trace.scale_to_utilization(self.model.nodes, u);
                    }
                    // Diurnal arrivals: interval scaling would stretch the
                    // 24-hour period, smearing the daily phase. Correct the
                    // arrival rate and regenerate instead.
                    ArrivalPattern::Diurnal { .. } => {
                        let mut rate = 1.0;
                        for _ in 0..4 {
                            let got = trace.offered_utilization(self.model.nodes);
                            if (got - u).abs() / u < 0.02 {
                                break;
                            }
                            rate *= (got / u).clamp(0.1, 10.0);
                            trace = self.generate_once(rate, rng);
                        }
                    }
                }
            }
        }
        trace
    }

    /// One generation pass at `rate_factor ×` the utilization-derived mean
    /// interarrival (no post-correction).
    fn generate_once(&self, rate_factor: f64, rng: &mut SimRng) -> Trace {
        // Arrival instants. With a fixed job count we draw exactly n uniform
        // points over the span (the order statistics of a Poisson process
        // conditioned on its count — still "Poisson-shaped", but the count
        // is exact, which §V-E's same-count construction requires).
        // Otherwise, a (possibly rate-modulated) Poisson process at the
        // utilization-derived rate.
        let submits: Vec<u64> = match (self.job_count, self.target_utilization) {
            (Some(n), _) => {
                let mut s: Vec<u64> = (0..n)
                    .map(|_| (rng.uniform() * self.span.as_secs() as f64).round() as u64)
                    .collect();
                s.sort_unstable();
                s
            }
            (None, target) => {
                let u = target.unwrap_or(0.5);
                let base = self.model.interarrival_for_utilization(u).max(1.0);
                self.arrival_instants(base * rate_factor, rng)
            }
        };
        self.build_jobs(submits, rng)
    }

    /// Draw arrival instants at the given mean interarrival, honouring the
    /// configured [`ArrivalPattern`] via Lewis–Shedler thinning (exact for
    /// inhomogeneous Poisson processes; degenerates to the plain process at
    /// amplitude 0).
    fn arrival_instants(&self, mean_interarrival: f64, rng: &mut SimRng) -> Vec<u64> {
        let amplitude = match self.arrivals {
            ArrivalPattern::Poisson => 0.0,
            ArrivalPattern::Diurnal { amplitude } => amplitude,
        };
        let peak_interarrival = mean_interarrival / (1.0 + amplitude);
        let interarrival = cosched_sim::dist::Exponential::new(peak_interarrival.max(1.0));
        let day = 86_400.0;
        let mut s = Vec::new();
        let mut clock = 0.0_f64;
        loop {
            clock += interarrival.sample(rng);
            let submit = clock.round() as u64;
            if submit > self.span.as_secs() {
                break;
            }
            let rate_frac =
                (1.0 + amplitude * (std::f64::consts::TAU * clock / day).sin()) / (1.0 + amplitude);
            if amplitude == 0.0 || rng.chance(rate_frac) {
                s.push(submit);
            }
        }
        s
    }

    /// Attach sizes, runtimes, and walltimes to arrival instants.
    fn build_jobs(&self, submits: Vec<u64>, rng: &mut SimRng) -> Trace {
        let m = &self.model;
        let max_size = m.size_dist.values().iter().fold(0.0f64, |a, &b| a.max(b)) as u64;
        let mut jobs = Vec::new();
        for (next_id, submit) in submits.into_iter().enumerate() {
            let next_id = next_id as u64;
            let size = sample_clamped_u64(&m.size_dist, rng, 1, max_size.min(m.nodes));
            let runtime =
                sample_clamped_u64(&m.runtime_dist, rng, m.runtime_bounds.0, m.runtime_bounds.1);
            let (flo, fhi) = m.walltime_factor;
            let factor = flo + (fhi - flo) * rng.uniform();
            let walltime = ((runtime as f64 * factor).round() as u64).min(m.max_walltime);
            jobs.push(Job::new(
                JobId(next_id),
                self.machine,
                SimTime::from_secs(submit),
                size,
                SimDuration::from_secs(runtime),
                SimDuration::from_secs(walltime),
            ));
        }
        Trace::from_jobs(self.machine, jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> SimRng {
        SimRng::seed_from_u64(seed)
    }

    #[test]
    fn intrepid_sizes_stay_in_published_range() {
        let gen = TraceGenerator::new(MachineModel::intrepid(), MachineId(0))
            .span(SimDuration::from_days(7));
        let trace = gen.generate(&mut rng(1));
        assert!(!trace.is_empty());
        for j in trace.jobs() {
            assert!((512..=32_768).contains(&j.size), "size {}", j.size);
            assert!(j.walltime >= j.runtime);
        }
    }

    #[test]
    fn eureka_sizes_stay_in_published_range() {
        let gen = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
            .span(SimDuration::from_days(7));
        let trace = gen.generate(&mut rng(2));
        assert!(!trace.is_empty());
        for j in trace.jobs() {
            assert!((1..=100).contains(&j.size), "size {}", j.size);
        }
    }

    #[test]
    fn hits_utilization_targets() {
        for &target in &[0.25, 0.5, 0.75] {
            let gen = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
                .span(SimDuration::from_days(30))
                .target_utilization(target);
            let trace = gen.generate(&mut rng(3));
            let got = trace.offered_utilization(100);
            assert!(
                (got - target).abs() / target < 0.02,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn month_of_intrepid_is_thousands_of_jobs() {
        // The paper's month trace holds 9,219 jobs; our calibration should
        // land in the same order of magnitude at high utilization.
        let gen = TraceGenerator::new(MachineModel::intrepid(), MachineId(0))
            .span(SimDuration::from_days(30))
            .target_utilization(0.68);
        let trace = gen.generate(&mut rng(4));
        assert!(
            (4_000..=20_000).contains(&trace.len()),
            "job count {}",
            trace.len()
        );
    }

    #[test]
    fn job_count_mode_fixes_count_and_span() {
        let gen = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
            .span(SimDuration::from_days(30))
            .job_count(500);
        let trace = gen.generate(&mut rng(5));
        assert_eq!(trace.len(), 500, "job-count mode is exact");
        assert!(trace.last_submit().unwrap().as_secs() <= SimDuration::from_days(30).as_secs());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
            .span(SimDuration::from_days(3));
        let a = gen.generate(&mut rng(7));
        let b = gen.generate(&mut rng(7));
        assert_eq!(a, b);
        let c = gen.generate(&mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn interarrival_formula() {
        let m = MachineModel::eureka();
        let ia = m.interarrival_for_utilization(0.5);
        let expect = m.mean_size() * m.mean_runtime() / (100.0 * 0.5);
        assert!((ia - expect).abs() < 1e-9);
    }

    #[test]
    fn with_runtime_overrides_distribution() {
        let m = MachineModel::eureka().with_runtime(100.0, 0.1);
        assert!((m.mean_runtime() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_arrivals_cycle_daily() {
        let gen = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
            .span(SimDuration::from_days(20))
            .arrivals(ArrivalPattern::Diurnal { amplitude: 0.9 });
        let trace = gen.generate(&mut rng(20));
        // Bucket submissions into quarter-days; the peak quarter (around
        // hour 6, where sin is maximal) must clearly dominate the trough
        // (around hour 18).
        let mut quarters = [0usize; 4];
        for j in trace.jobs() {
            quarters[((j.submit.as_secs() % 86_400) / 21_600) as usize] += 1;
        }
        assert!(
            quarters[0] > quarters[2] * 2,
            "expected strong diurnal signal, got {quarters:?}"
        );
    }

    #[test]
    fn diurnal_amplitude_zero_equals_poisson() {
        let base = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
            .span(SimDuration::from_days(3));
        let a = base.clone().generate(&mut rng(21));
        let b = base
            .arrivals(ArrivalPattern::Diurnal { amplitude: 0.0 })
            .generate(&mut rng(21));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "outside [0,1)")]
    fn diurnal_rejects_bad_amplitude() {
        let _ = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
            .arrivals(ArrivalPattern::Diurnal { amplitude: 1.0 });
    }

    #[test]
    fn diurnal_still_hits_utilization_target() {
        let gen = TraceGenerator::new(MachineModel::eureka(), MachineId(1))
            .span(SimDuration::from_days(20))
            .target_utilization(0.5)
            .arrivals(ArrivalPattern::Diurnal { amplitude: 0.6 });
        let trace = gen.generate(&mut rng(22));
        // Diurnal correction regenerates rather than rescales, so the
        // target is approximate (sampling noise per regeneration).
        let got = trace.offered_utilization(100);
        assert!((got - 0.5).abs() < 0.06, "got {got}");
    }

    #[test]
    fn runtimes_respect_bounds() {
        let model = MachineModel::eureka();
        let (lo, hi) = model.runtime_bounds;
        let gen = TraceGenerator::new(model, MachineId(1)).span(SimDuration::from_days(10));
        let trace = gen.generate(&mut rng(9));
        for j in trace.jobs() {
            let r = j.runtime.as_secs();
            assert!((lo..=hi).contains(&r), "runtime {r}");
        }
    }
}
