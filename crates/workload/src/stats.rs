//! Workload characterization: the summary statistics used to sanity-check
//! synthetic traces against published machine descriptions (and to inspect
//! real SWF logs before plugging them in).

use crate::trace::Trace;
use cosched_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Five-number-ish summary of a sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSummary {
    /// Sample size.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl SampleSummary {
    /// Summarise a sample; all-zero for an empty one.
    pub fn of(mut xs: Vec<f64>) -> Self {
        if xs.is_empty() {
            return SampleSummary {
                count: 0,
                min: 0.0,
                mean: 0.0,
                median: 0.0,
                p95: 0.0,
                max: 0.0,
            };
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in workload stats"));
        let count = xs.len();
        let mean = xs.iter().sum::<f64>() / count as f64;
        let q = |p: f64| {
            let pos = p * (count - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            if lo == hi {
                xs[lo]
            } else {
                xs[lo] * (hi as f64 - pos) + xs[hi] * (pos - lo as f64)
            }
        };
        SampleSummary {
            count,
            min: xs[0],
            mean,
            median: q(0.5),
            p95: q(0.95),
            max: xs[count - 1],
        }
    }
}

/// Characterization of one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Number of jobs.
    pub jobs: usize,
    /// Span of submissions, seconds.
    pub span_secs: u64,
    /// Job sizes (nodes).
    pub sizes: SampleSummary,
    /// Runtimes (seconds).
    pub runtimes: SampleSummary,
    /// Requested walltimes (seconds).
    pub walltimes: SampleSummary,
    /// Walltime / runtime overestimation factors.
    pub overestimate: SampleSummary,
    /// Interarrival gaps (seconds).
    pub interarrivals: SampleSummary,
    /// Jobs submitted per hour-of-day bucket (UTC-like, from t=0), length 24.
    pub hourly_arrivals: Vec<usize>,
    /// Fraction of jobs carrying a mate reference.
    pub paired_fraction: f64,
}

/// Compute [`TraceStats`] for a trace.
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let jobs = trace.jobs();
    let sizes = SampleSummary::of(jobs.iter().map(|j| j.size as f64).collect());
    let runtimes = SampleSummary::of(jobs.iter().map(|j| j.runtime.as_secs() as f64).collect());
    let walltimes = SampleSummary::of(jobs.iter().map(|j| j.walltime.as_secs() as f64).collect());
    let overestimate = SampleSummary::of(
        jobs.iter()
            .map(|j| j.walltime.as_secs() as f64 / j.runtime.as_secs().max(1) as f64)
            .collect(),
    );
    let interarrivals = SampleSummary::of(
        jobs.windows(2)
            .map(|w| (w[1].submit - w[0].submit).as_secs() as f64)
            .collect(),
    );
    let mut hourly = vec![0usize; 24];
    for j in jobs {
        let hour = (j.submit.as_secs() / 3_600) % 24;
        hourly[hour as usize] += 1;
    }
    TraceStats {
        jobs: jobs.len(),
        span_secs: trace.span().as_secs(),
        sizes,
        runtimes,
        walltimes,
        overestimate,
        interarrivals,
        hourly_arrivals: hourly,
        paired_fraction: trace.paired_proportion(),
    }
}

/// Histogram of job sizes with the given bucket edges (left-inclusive;
/// values ≥ the last edge land in the final bucket).
pub fn size_histogram(trace: &Trace, edges: &[u64]) -> Vec<usize> {
    assert!(!edges.is_empty(), "histogram needs at least one edge");
    assert!(
        edges.windows(2).all(|w| w[0] < w[1]),
        "edges must be strictly increasing"
    );
    let mut counts = vec![0usize; edges.len()];
    for j in trace.jobs() {
        let bucket = edges.iter().rposition(|&e| j.size >= e).unwrap_or(0);
        counts[bucket] += 1;
    }
    counts
}

/// Offered load per day (node-seconds demanded by jobs submitted that day),
/// a quick stability check across the trace span.
pub fn daily_offered_node_seconds(trace: &Trace) -> Vec<u64> {
    let Some(last) = trace.last_submit() else {
        return Vec::new();
    };
    let days = (last.as_secs() / 86_400 + 1) as usize;
    let mut out = vec![0u64; days];
    for j in trace.jobs() {
        out[(j.submit.as_secs() / 86_400) as usize] += j.node_seconds();
    }
    out
}

/// Mean absolute deviation of daily offered load relative to its mean —
/// 0 for perfectly even load, larger for burstier traces.
pub fn daily_load_unevenness(trace: &Trace) -> f64 {
    let daily = daily_offered_node_seconds(trace);
    if daily.is_empty() {
        return 0.0;
    }
    let mean = daily.iter().sum::<u64>() as f64 / daily.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    daily.iter().map(|&d| (d as f64 - mean).abs()).sum::<f64>() / daily.len() as f64 / mean
}

/// Human-readable rendering of [`TraceStats`].
pub fn render_stats(name: &str, s: &TraceStats) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let dur = |secs: f64| SimDuration::from_secs(secs.round() as u64).to_string();
    let _ = writeln!(
        out,
        "{name}: {} jobs over {}",
        s.jobs,
        SimDuration::from_secs(s.span_secs)
    );
    let _ = writeln!(
        out,
        "  sizes (nodes):  min {:.0}  mean {:.1}  median {:.0}  p95 {:.0}  max {:.0}",
        s.sizes.min, s.sizes.mean, s.sizes.median, s.sizes.p95, s.sizes.max
    );
    let _ = writeln!(
        out,
        "  runtimes:       min {}  mean {}  median {}  p95 {}  max {}",
        dur(s.runtimes.min),
        dur(s.runtimes.mean),
        dur(s.runtimes.median),
        dur(s.runtimes.p95),
        dur(s.runtimes.max)
    );
    let _ = writeln!(
        out,
        "  walltime overestimate: mean {:.2}×  median {:.2}×  p95 {:.2}×",
        s.overestimate.mean, s.overestimate.median, s.overestimate.p95
    );
    let _ = writeln!(
        out,
        "  interarrival:   mean {}  median {}",
        dur(s.interarrivals.mean),
        dur(s.interarrivals.median)
    );
    let _ = writeln!(out, "  paired fraction: {:.1}%", s.paired_fraction * 100.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId, MachineId};
    use cosched_sim::SimTime;

    fn mk(id: u64, submit: u64, size: u64, runtime: u64, walltime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(0),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(walltime),
        )
    }

    fn trace(jobs: Vec<Job>) -> Trace {
        Trace::from_jobs(MachineId(0), jobs)
    }

    #[test]
    fn sample_summary_known_values() {
        let s = SampleSummary::of(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn sample_summary_empty_is_zero() {
        let s = SampleSummary::of(vec![]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn trace_stats_basics() {
        let t = trace(vec![
            mk(1, 0, 10, 600, 1_200),
            mk(2, 3_600, 20, 600, 600),
            mk(3, 7_200, 30, 1_200, 2_400),
        ]);
        let s = trace_stats(&t);
        assert_eq!(s.jobs, 3);
        assert_eq!(s.span_secs, 7_200);
        assert_eq!(s.sizes.mean, 20.0);
        assert_eq!(s.interarrivals.mean, 3_600.0);
        assert_eq!(s.hourly_arrivals[0], 1);
        assert_eq!(s.hourly_arrivals[1], 1);
        assert_eq!(s.hourly_arrivals[2], 1);
        assert_eq!(s.paired_fraction, 0.0);
        // Overestimate: 2.0, 1.0, 2.0 → mean 5/3.
        assert!((s.overestimate.mean - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let t = trace(vec![
            mk(1, 0, 1, 60, 60),
            mk(2, 1, 4, 60, 60),
            mk(3, 2, 16, 60, 60),
            mk(4, 3, 64, 60, 60),
            mk(5, 4, 100, 60, 60),
        ]);
        // Buckets: [1,8), [8,32), [32,∞)
        let h = size_histogram(&t, &[1, 8, 32]);
        assert_eq!(h, vec![2, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_bad_edges() {
        size_histogram(&trace(vec![mk(1, 0, 1, 60, 60)]), &[8, 8]);
    }

    #[test]
    fn daily_load_profile() {
        let t = trace(vec![
            mk(1, 0, 10, 3_600, 3_600),          // day 0: 36_000
            mk(2, 86_400 + 5, 20, 3_600, 3_600), // day 1: 72_000
        ]);
        assert_eq!(daily_offered_node_seconds(&t), vec![36_000, 72_000]);
        let unevenness = daily_load_unevenness(&t);
        assert!((unevenness - (18_000.0 / 54_000.0)).abs() < 1e-12);
    }

    #[test]
    fn unevenness_zero_for_flat_load() {
        let t = trace(vec![
            mk(1, 0, 10, 3_600, 3_600),
            mk(2, 86_400, 10, 3_600, 3_600),
        ]);
        assert_eq!(daily_load_unevenness(&t), 0.0);
    }

    #[test]
    fn render_contains_key_lines() {
        let t = trace(vec![mk(1, 0, 10, 600, 1_200), mk(2, 60, 10, 600, 1_200)]);
        let out = render_stats("Test", &trace_stats(&t));
        assert!(out.contains("Test: 2 jobs"));
        assert!(out.contains("sizes (nodes)"));
        assert!(out.contains("paired fraction: 0.0%"));
    }

    #[test]
    fn generated_traces_match_published_shape() {
        use crate::generator::{MachineModel, TraceGenerator};
        use cosched_sim::SimRng;
        let mut rng = SimRng::seed_from_u64(1);
        let t = TraceGenerator::new(MachineModel::intrepid(), MachineId(0))
            .span(SimDuration::from_days(7))
            .target_utilization(0.55)
            .generate(&mut rng);
        let s = trace_stats(&t);
        assert!(s.sizes.min >= 512.0);
        assert!(s.sizes.max <= 32_768.0);
        assert!(s.overestimate.mean > 1.0 && s.overestimate.mean < 3.5);
        // Poisson arrivals: daily load unevenness stays moderate.
        assert!(
            daily_load_unevenness(&t) < 0.5,
            "unevenness {}",
            daily_load_unevenness(&t)
        );
    }
}
