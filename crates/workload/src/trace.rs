//! Ordered job collections with workload statistics.
//!
//! A [`Trace`] is the unit the simulator replays: all jobs submitted to one
//! machine over an evaluation window, sorted by submission time. The module
//! also implements the paper's *half-synthetic* trace manipulation: scaling
//! every arrival interval by a constant factor so the packed workload hits a
//! target utilization while preserving the shape of the arrival distribution
//! (§V-D: "we multiplied a same fraction to each job arrival interval in the
//! real Eureka trace, so that the shape of job arrival distribution was the
//! same with the real trace").

use crate::job::{Job, JobId, MachineId};
use cosched_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A machine's workload: jobs sorted by `(submit, id)`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Trace {
    machine: MachineId,
    jobs: Vec<Job>,
}

impl Trace {
    /// An empty trace for `machine`.
    pub fn new(machine: MachineId) -> Self {
        Trace {
            machine,
            jobs: Vec::new(),
        }
    }

    /// Build from a job list; sorts by `(submit, id)` and verifies every job
    /// belongs to `machine` and ids are unique.
    ///
    /// # Panics
    /// Panics on a foreign `machine` field or duplicate [`JobId`].
    pub fn from_jobs(machine: MachineId, mut jobs: Vec<Job>) -> Self {
        jobs.sort_by_key(|j| (j.submit, j.id));
        let mut seen = std::collections::HashSet::with_capacity(jobs.len());
        for j in &jobs {
            assert_eq!(j.machine, machine, "job {} belongs to {}", j.id, j.machine);
            assert!(seen.insert(j.id), "duplicate job id {}", j.id);
        }
        Trace { machine, jobs }
    }

    /// The machine this trace targets.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Jobs in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Mutable access, for pairing passes. Callers must preserve submit
    /// order or call [`Trace::resort`] afterwards.
    pub fn jobs_mut(&mut self) -> &mut [Job] {
        &mut self.jobs
    }

    /// Re-establish `(submit, id)` order after in-place edits.
    pub fn resort(&mut self) {
        self.jobs.sort_by_key(|j| (j.submit, j.id));
    }

    /// Append a job (keeps order if appended in order; otherwise call
    /// [`Trace::resort`]).
    pub fn push(&mut self, job: Job) {
        debug_assert_eq!(job.machine, self.machine);
        self.jobs.push(job);
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True if the trace holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Look up a job by id (linear; traces are replayed, not queried, in the
    /// hot path).
    pub fn get(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// First submission instant, if any.
    pub fn first_submit(&self) -> Option<SimTime> {
        self.jobs.first().map(|j| j.submit)
    }

    /// Last submission instant, if any.
    pub fn last_submit(&self) -> Option<SimTime> {
        self.jobs.last().map(|j| j.submit)
    }

    /// Submission span: last submit − first submit.
    pub fn span(&self) -> SimDuration {
        match (self.first_submit(), self.last_submit()) {
            (Some(a), Some(b)) => b - a,
            _ => SimDuration::ZERO,
        }
    }

    /// Total work in node-seconds.
    pub fn total_node_seconds(&self) -> u64 {
        self.jobs.iter().map(|j| j.node_seconds()).sum()
    }

    /// Offered utilization against a machine of `capacity` nodes: total work
    /// divided by `capacity × span`. This is the "system utilization rate"
    /// knob of the paper's evaluation (0.25 / 0.50 / 0.75). Returns 0 for
    /// traces whose span is zero.
    pub fn offered_utilization(&self, capacity: u64) -> f64 {
        let span = self.span().as_secs();
        if span == 0 || capacity == 0 {
            return 0.0;
        }
        self.total_node_seconds() as f64 / (capacity as f64 * span as f64)
    }

    /// Number of paired jobs (jobs carrying a mate reference).
    pub fn paired_count(&self) -> usize {
        self.jobs.iter().filter(|j| j.is_paired()).count()
    }

    /// Fraction of jobs that are paired, in `[0, 1]`.
    pub fn paired_proportion(&self) -> f64 {
        if self.jobs.is_empty() {
            0.0
        } else {
            self.paired_count() as f64 / self.jobs.len() as f64
        }
    }

    /// Largest job size in the trace (0 if empty).
    pub fn max_size(&self) -> u64 {
        self.jobs.iter().map(|j| j.size).max().unwrap_or(0)
    }

    /// Scale every arrival interval by `factor`, anchoring the first
    /// submission in place. `factor < 1` packs the workload tighter (raising
    /// offered utilization by ≈ 1/factor); `factor > 1` spreads it out.
    ///
    /// This is exactly the paper's half-synthetic trace construction.
    ///
    /// # Panics
    /// Panics if `factor` is not finite and positive.
    pub fn scale_intervals(&mut self, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "bad interval scale factor {factor}"
        );
        if self.jobs.len() < 2 {
            return;
        }
        let base = self.jobs[0].submit;
        // Accumulate scaled intervals in f64 to avoid drift from per-interval
        // rounding (a month of 10k intervals would otherwise wander by hours).
        let mut prev_orig = base;
        let mut acc = 0.0_f64;
        for j in self.jobs.iter_mut().skip(1) {
            let interval = (j.submit - prev_orig).as_secs() as f64;
            prev_orig = j.submit;
            acc += interval * factor;
            j.submit = base + SimDuration::from_secs(acc.round() as u64);
        }
        // Equal original submit times stay equal, so order is preserved; the
        // resort is belt-and-braces for the id tie-break.
        self.resort();
    }

    /// Rescale arrival intervals so offered utilization against `capacity`
    /// approaches `target`. Iterates the closed-form correction a few times
    /// because the span itself moves when intervals stretch. Returns the
    /// achieved utilization.
    ///
    /// # Panics
    /// Panics if `target` is not in `(0, 1.5]` (beyond-saturation targets are
    /// almost certainly configuration errors) or the trace has < 2 jobs.
    pub fn scale_to_utilization(&mut self, capacity: u64, target: f64) -> f64 {
        assert!(
            target > 0.0 && target <= 1.5,
            "unreasonable utilization target {target}"
        );
        assert!(self.jobs.len() >= 2, "need at least two jobs to rescale");
        for _ in 0..8 {
            let current = self.offered_utilization(capacity);
            if (current - target).abs() / target < 0.005 {
                break;
            }
            // Utilization is inversely proportional to span ≈ intervals.
            self.scale_intervals(current / target);
        }
        self.offered_utilization(capacity)
    }

    /// Shift all submissions so the first job arrives at `origin`.
    pub fn rebase(&mut self, origin: SimTime) {
        let Some(first) = self.first_submit() else {
            return;
        };
        if first == origin {
            return;
        }
        for j in &mut self.jobs {
            let offset = j.submit - first;
            j.submit = origin + offset;
        }
    }

    /// Consume into the underlying job vector.
    pub fn into_jobs(self) -> Vec<Job> {
        self.jobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::MateRef;

    fn mk(id: u64, submit: u64, size: u64, runtime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(0),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(runtime * 2),
        )
    }

    fn trace(jobs: Vec<Job>) -> Trace {
        Trace::from_jobs(MachineId(0), jobs)
    }

    #[test]
    fn from_jobs_sorts_by_submit_then_id() {
        let t = trace(vec![mk(2, 50, 1, 10), mk(1, 50, 1, 10), mk(3, 10, 1, 10)]);
        let ids: Vec<_> = t.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "duplicate job id")]
    fn rejects_duplicate_ids() {
        trace(vec![mk(1, 0, 1, 1), mk(1, 5, 1, 1)]);
    }

    #[test]
    #[should_panic(expected = "belongs to")]
    fn rejects_foreign_machine() {
        let mut j = mk(1, 0, 1, 1);
        j.machine = MachineId(9);
        Trace::from_jobs(MachineId(0), vec![j]);
    }

    #[test]
    fn span_and_work() {
        let t = trace(vec![mk(1, 100, 4, 50), mk(2, 400, 2, 100)]);
        assert_eq!(t.span(), SimDuration::from_secs(300));
        assert_eq!(t.total_node_seconds(), 4 * 50 + 2 * 100);
        assert_eq!(t.first_submit(), Some(SimTime::from_secs(100)));
        assert_eq!(t.last_submit(), Some(SimTime::from_secs(400)));
    }

    #[test]
    fn empty_trace_stats() {
        let t = Trace::new(MachineId(0));
        assert!(t.is_empty());
        assert_eq!(t.span(), SimDuration::ZERO);
        assert_eq!(t.offered_utilization(100), 0.0);
        assert_eq!(t.paired_proportion(), 0.0);
        assert_eq!(t.max_size(), 0);
    }

    #[test]
    fn offered_utilization_formula() {
        // 2 jobs × 10 nodes × 500 s = 10_000 node-s over span 1000 s on a
        // 100-node machine → 10000 / (100 × 1000) = 0.1
        let t = trace(vec![mk(1, 0, 10, 500), mk(2, 1000, 10, 500)]);
        assert!((t.offered_utilization(100) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn scale_intervals_doubles_span() {
        let mut t = trace(vec![
            mk(1, 100, 1, 10),
            mk(2, 200, 1, 10),
            mk(3, 400, 1, 10),
        ]);
        t.scale_intervals(2.0);
        let submits: Vec<_> = t.jobs().iter().map(|j| j.submit.as_secs()).collect();
        assert_eq!(submits, vec![100, 300, 700]); // first anchored, gaps doubled
    }

    #[test]
    fn scale_intervals_preserves_simultaneous_submits() {
        let mut t = trace(vec![mk(1, 0, 1, 10), mk(2, 60, 1, 10), mk(3, 60, 1, 10)]);
        t.scale_intervals(3.0);
        assert_eq!(t.jobs()[1].submit, t.jobs()[2].submit);
    }

    #[test]
    fn scale_to_utilization_converges() {
        let jobs: Vec<Job> = (0..200).map(|i| mk(i, i * 600, 10, 300)).collect();
        let mut t = trace(jobs);
        let achieved = t.scale_to_utilization(100, 0.5);
        assert!((achieved - 0.5).abs() < 0.01, "achieved {achieved}");
        // Order preserved.
        assert!(t.jobs().windows(2).all(|w| w[0].submit <= w[1].submit));
    }

    #[test]
    fn scale_accumulates_without_drift() {
        // 10_000 intervals of 100 s scaled by 1/3: accumulated f64 rounding
        // must keep the final submit within a second of the exact value.
        let jobs: Vec<Job> = (0..10_000).map(|i| mk(i, i * 100, 1, 10)).collect();
        let mut t = trace(jobs);
        t.scale_intervals(1.0 / 3.0);
        let last = t.last_submit().unwrap().as_secs();
        let exact = (9_999.0_f64 * 100.0 / 3.0).round() as u64;
        assert!(last.abs_diff(exact) <= 1, "last {last} vs exact {exact}");
    }

    #[test]
    fn rebase_shifts_all_jobs() {
        let mut t = trace(vec![mk(1, 500, 1, 10), mk(2, 800, 1, 10)]);
        t.rebase(SimTime::from_secs(0));
        let submits: Vec<_> = t.jobs().iter().map(|j| j.submit.as_secs()).collect();
        assert_eq!(submits, vec![0, 300]);
    }

    #[test]
    fn paired_accounting() {
        let mut jobs = vec![
            mk(1, 0, 1, 10),
            mk(2, 5, 1, 10),
            mk(3, 9, 1, 10),
            mk(4, 12, 1, 10),
        ];
        jobs[1].mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(7),
        });
        let t = trace(jobs);
        assert_eq!(t.paired_count(), 1);
        assert!((t.paired_proportion() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn get_and_max_size() {
        let t = trace(vec![mk(1, 0, 64, 10), mk(2, 5, 512, 10)]);
        assert_eq!(t.get(JobId(2)).unwrap().size, 512);
        assert!(t.get(JobId(99)).is_none());
        assert_eq!(t.max_size(), 512);
    }
}
