//! Job model, trace I/O, synthetic workload generation, and paired-job
//! association for the coupled-system coscheduling reproduction.
//!
//! The paper evaluates on real 2010 traces from Intrepid (40,960-node Blue
//! Gene/P) and Eureka (100-node analysis cluster) at Argonne. Those traces
//! are not public, so this crate provides:
//!
//! * [`job`] — the [`job::Job`] record shared by the whole workspace,
//!   including the *mate* cross-reference that marks associated job pairs;
//! * [`trace`] — ordered job collections with workload statistics and the
//!   arrival-interval scaling the paper uses to retarget utilization;
//! * [`swf`] — Standard Workload Format reader/writer so real traces can be
//!   substituted back in;
//! * [`generator`] — statistical models of the Intrepid and Eureka workloads
//!   calibrated to the characteristics published in the paper (job-size
//!   ranges, ~9,219 jobs/month, month-long span);
//! * [`pairing`] — the two association rules from the evaluation: the
//!   2-minute submission-window rule (§V-D) and exact-proportion pairing
//!   (§V-E).

pub mod generator;
pub mod job;
pub mod pairing;
pub mod stats;
pub mod swf;
pub mod trace;

pub use generator::{ArrivalPattern, MachineModel, TraceGenerator};
pub use job::{Job, JobId, MachineId, MateRef};
pub use trace::Trace;
