//! Associating jobs across the two machines ("mates").
//!
//! The paper's evaluation builds paired workloads two ways:
//!
//! * **Window rule** (§V-D): "we associated the two jobs on different
//!   machines if their submission times were within 2 minutes", yielding a
//!   pair proportion between 5 % and 10 % on the production traces.
//!   [`pair_by_window`] reproduces this with a greedy, order-preserving,
//!   one-to-one matching.
//! * **Exact proportion** (§V-E): a synthetic Eureka workload with the same
//!   job count and span as the Intrepid trace, letting the pair proportion
//!   be "conveniently tuned" to 2.5 / 5 / 10 / 20 / 33 %.
//!   [`pair_exact_proportion`] picks a uniform random subset of that size
//!   and aligns each mate's submission within the window.
//!
//! Pairing is always *mutual*: if `a` references `b` then `b` references
//! `a`. [`validate_pairing`] checks that invariant and is used by the
//! property tests.

use crate::job::MateRef;
use crate::trace::Trace;
use cosched_sim::{SimDuration, SimRng};

/// Greedily associate unpaired jobs whose submissions fall within `window`
/// of each other, one-to-one and in submission order. Returns the number of
/// pairs created.
pub fn pair_by_window(a: &mut Trace, b: &mut Trace, window: SimDuration) -> usize {
    let mut pairs = Vec::new();
    {
        let aj = a.jobs();
        let bj = b.jobs();
        let mut bi = 0usize;
        let mut b_taken = vec![false; bj.len()];
        for ja in aj.iter().filter(|j| !j.is_paired()) {
            // Advance past b-jobs that are too early to ever match again.
            while bi < bj.len() && bj[bi].submit + window < ja.submit {
                bi += 1;
            }
            // Scan the candidate window for the first free, unpaired b-job.
            let mut k = bi;
            while k < bj.len() && bj[k].submit <= ja.submit + window {
                if !b_taken[k] && !bj[k].is_paired() {
                    b_taken[k] = true;
                    pairs.push((ja.id, bj[k].id));
                    break;
                }
                k += 1;
            }
        }
    }
    apply_pairs(a, b, &pairs);
    pairs.len()
}

/// Pair an exact proportion of jobs. `proportion` is interpreted against the
/// smaller trace; the subset is sampled uniformly at random. Each chosen
/// `b`-mate's submission is moved to within `window` of its `a`-mate
/// (uniform jitter), mimicking the two-minute co-submission behaviour the
/// window rule would observe. Returns the number of pairs created.
///
/// # Panics
/// Panics if `proportion` is outside `[0, 1]`.
pub fn pair_exact_proportion(
    a: &mut Trace,
    b: &mut Trace,
    proportion: f64,
    window: SimDuration,
    rng: &mut SimRng,
) -> usize {
    assert!(
        (0.0..=1.0).contains(&proportion),
        "pair proportion {proportion} outside [0,1]"
    );
    let n_max = a.len().min(b.len());
    let want = (proportion * n_max as f64).round() as usize;
    if want == 0 {
        return 0;
    }

    // Sample `want` distinct ranks via a partial Fisher–Yates over indices.
    let mut ranks: Vec<usize> = (0..n_max).collect();
    for i in 0..want {
        let j = rng.int_in(i as u64, (n_max - 1) as u64) as usize;
        ranks.swap(i, j);
    }
    let mut chosen: Vec<usize> = ranks[..want].to_vec();
    chosen.sort_unstable();

    let mut pairs = Vec::with_capacity(want);
    for &rank in &chosen {
        let ja = &a.jobs()[rank];
        let jb = &b.jobs()[rank];
        pairs.push((ja.id, jb.id));
    }
    // Move each chosen b-job's submission next to its mate, then restore
    // order. Done before apply_pairs so that id-based mate refs stay valid
    // regardless of resorting.
    {
        let submit_of_a: Vec<_> = chosen.iter().map(|&r| a.jobs()[r].submit).collect();
        let ids_of_b: Vec<_> = chosen.iter().map(|&r| b.jobs()[r].id).collect();
        let jitters: Vec<u64> = (0..chosen.len())
            .map(|_| rng.int_in(0, window.as_secs()))
            .collect();
        for j in b.jobs_mut() {
            if let Some(pos) = ids_of_b.iter().position(|&id| id == j.id) {
                j.submit = submit_of_a[pos] + SimDuration::from_secs(jitters[pos]);
            }
        }
        b.resort();
    }
    apply_pairs(a, b, &pairs);
    pairs.len()
}

/// Reduce pairing density to `target_share` (paired jobs as a fraction of
/// all jobs on both machines) by unpairing uniformly random pairs. Used by
/// the load-sweep harness: with dense Poisson arrivals the 2-minute window
/// matches far more submissions than the paper's production traces did, so
/// after matching we thin down to the published 5–10 % share. Returns the
/// number of pairs remaining.
///
/// # Panics
/// Panics if `target_share` is outside `[0, 1]`.
pub fn thin_pairs_to_share(
    a: &mut Trace,
    b: &mut Trace,
    target_share: f64,
    rng: &mut SimRng,
) -> usize {
    assert!(
        (0.0..=1.0).contains(&target_share),
        "share {target_share} outside [0,1]"
    );
    let total_jobs = a.len() + b.len();
    let current: Vec<(crate::job::JobId, crate::job::JobId)> = a
        .jobs()
        .iter()
        .filter_map(|j| j.mate.map(|m| (j.id, m.job)))
        .collect();
    let target_pairs = ((target_share * total_jobs as f64) / 2.0).round() as usize;
    if current.len() <= target_pairs {
        return current.len();
    }
    // Partial Fisher–Yates to pick the pairs to KEEP.
    let mut idx: Vec<usize> = (0..current.len()).collect();
    for i in 0..target_pairs {
        let j = rng.int_in(i as u64, (current.len() - 1) as u64) as usize;
        idx.swap(i, j);
    }
    let keep: std::collections::HashSet<usize> = idx[..target_pairs].iter().copied().collect();
    for (pos, &(ida, idb)) in current.iter().enumerate() {
        if keep.contains(&pos) {
            continue;
        }
        for j in a.jobs_mut() {
            if j.id == ida {
                j.mate = None;
            }
        }
        for j in b.jobs_mut() {
            if j.id == idb {
                j.mate = None;
            }
        }
    }
    target_pairs
}

fn apply_pairs(a: &mut Trace, b: &mut Trace, pairs: &[(crate::job::JobId, crate::job::JobId)]) {
    let (ma, mb) = (a.machine(), b.machine());
    for &(ida, idb) in pairs {
        for j in a.jobs_mut() {
            if j.id == ida {
                j.mate = Some(MateRef {
                    machine: mb,
                    job: idb,
                });
            }
        }
        for j in b.jobs_mut() {
            if j.id == idb {
                j.mate = Some(MateRef {
                    machine: ma,
                    job: ida,
                });
            }
        }
    }
}

/// Verify that every mate reference resolves to a job on the other trace and
/// that pairing is mutual and one-to-one.
pub fn validate_pairing(a: &Trace, b: &Trace) -> Result<(), String> {
    for (x, y) in [(a, b), (b, a)] {
        for j in x.jobs().iter().filter(|j| j.is_paired()) {
            let m = j.mate.expect("filtered to paired");
            if m.machine != y.machine() {
                return Err(format!(
                    "{}/{} points at machine {}",
                    x.machine(),
                    j.id,
                    m.machine
                ));
            }
            let Some(mate) = y.get(m.job) else {
                return Err(format!(
                    "{}/{} points at missing job {}",
                    x.machine(),
                    j.id,
                    m.job
                ));
            };
            let back = mate
                .mate
                .ok_or_else(|| format!("{}/{} is not mutual", y.machine(), mate.id))?;
            if back.job != j.id || back.machine != x.machine() {
                return Err(format!(
                    "{}/{} ↔ {}/{} mate refs are not symmetric",
                    x.machine(),
                    j.id,
                    y.machine(),
                    mate.id
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, JobId, MachineId};
    use cosched_sim::SimTime;

    fn mk(machine: usize, id: u64, submit: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            4,
            SimDuration::from_secs(600),
            SimDuration::from_secs(1200),
        )
    }

    fn traces(a_submits: &[u64], b_submits: &[u64]) -> (Trace, Trace) {
        let a = Trace::from_jobs(
            MachineId(0),
            a_submits
                .iter()
                .enumerate()
                .map(|(i, &s)| mk(0, i as u64, s))
                .collect(),
        );
        let b = Trace::from_jobs(
            MachineId(1),
            b_submits
                .iter()
                .enumerate()
                .map(|(i, &s)| mk(1, i as u64, s))
                .collect(),
        );
        (a, b)
    }

    #[test]
    fn window_rule_pairs_close_submissions() {
        let (mut a, mut b) = traces(&[0, 1_000, 5_000], &[60, 4_000, 5_100]);
        let n = pair_by_window(&mut a, &mut b, SimDuration::from_mins(2));
        // a0↔b0 (diff 60), a1 has no b within 120, a2↔b2 (diff 100).
        assert_eq!(n, 2);
        assert_eq!(a.paired_count(), 2);
        assert_eq!(b.paired_count(), 2);
        assert!(a.get(JobId(1)).unwrap().mate.is_none());
        assert!(b.get(JobId(1)).unwrap().mate.is_none());
        validate_pairing(&a, &b).unwrap();
    }

    #[test]
    fn window_rule_is_one_to_one() {
        // Three a-jobs cluster around one b-job: only one pair may form.
        let (mut a, mut b) = traces(&[0, 10, 20], &[15]);
        let n = pair_by_window(&mut a, &mut b, SimDuration::from_mins(2));
        assert_eq!(n, 1);
        assert_eq!(b.paired_count(), 1);
        validate_pairing(&a, &b).unwrap();
    }

    #[test]
    fn window_rule_skips_already_paired() {
        let (mut a, mut b) = traces(&[0], &[30]);
        a.jobs_mut()[0].mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(0),
        });
        b.jobs_mut()[0].mate = Some(MateRef {
            machine: MachineId(0),
            job: JobId(0),
        });
        let n = pair_by_window(&mut a, &mut b, SimDuration::from_mins(2));
        assert_eq!(n, 0);
    }

    #[test]
    fn window_boundary_is_inclusive() {
        let (mut a, mut b) = traces(&[0], &[120]);
        assert_eq!(pair_by_window(&mut a, &mut b, SimDuration::from_mins(2)), 1);
        let (mut a, mut b) = traces(&[0], &[121]);
        assert_eq!(pair_by_window(&mut a, &mut b, SimDuration::from_mins(2)), 0);
    }

    #[test]
    fn exact_proportion_hits_requested_count() {
        let submits: Vec<u64> = (0..200).map(|i| i * 300).collect();
        let (mut a, mut b) = traces(&submits, &submits);
        let mut rng = SimRng::seed_from_u64(1);
        let n = pair_exact_proportion(&mut a, &mut b, 0.2, SimDuration::from_mins(2), &mut rng);
        assert_eq!(n, 40);
        assert_eq!(a.paired_count(), 40);
        assert_eq!(b.paired_count(), 40);
        assert!((a.paired_proportion() - 0.2).abs() < 1e-9);
        validate_pairing(&a, &b).unwrap();
    }

    #[test]
    fn exact_proportion_mates_within_window() {
        let submits: Vec<u64> = (0..100).map(|i| i * 500).collect();
        let (mut a, mut b) = traces(&submits, &submits);
        let mut rng = SimRng::seed_from_u64(2);
        let window = SimDuration::from_mins(2);
        pair_exact_proportion(&mut a, &mut b, 0.33, window, &mut rng);
        for ja in a.jobs().iter().filter(|j| j.is_paired()) {
            let mate = b.get(ja.mate.unwrap().job).unwrap();
            assert!(
                mate.submit.abs_diff(ja.submit) <= window,
                "mate submitted {} apart",
                mate.submit.abs_diff(ja.submit)
            );
        }
    }

    #[test]
    fn exact_proportion_zero_and_full() {
        let submits: Vec<u64> = (0..50).map(|i| i * 100).collect();
        let (mut a, mut b) = traces(&submits, &submits);
        let mut rng = SimRng::seed_from_u64(3);
        assert_eq!(
            pair_exact_proportion(&mut a, &mut b, 0.0, SimDuration::from_mins(2), &mut rng),
            0
        );
        assert_eq!(
            pair_exact_proportion(&mut a, &mut b, 1.0, SimDuration::from_mins(2), &mut rng),
            50
        );
        assert_eq!(a.paired_count(), 50);
        validate_pairing(&a, &b).unwrap();
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn exact_proportion_rejects_bad_fraction() {
        let (mut a, mut b) = traces(&[0, 1], &[0, 1]);
        let mut rng = SimRng::seed_from_u64(4);
        pair_exact_proportion(&mut a, &mut b, 1.5, SimDuration::from_mins(2), &mut rng);
    }

    #[test]
    fn thinning_hits_target_share() {
        let submits: Vec<u64> = (0..100).map(|i| i * 60).collect();
        let (mut a, mut b) = traces(&submits, &submits);
        let mut rng = SimRng::seed_from_u64(9);
        pair_exact_proportion(&mut a, &mut b, 1.0, SimDuration::from_mins(2), &mut rng);
        assert_eq!(a.paired_count(), 100);
        let kept = thin_pairs_to_share(&mut a, &mut b, 0.10, &mut rng);
        // 10 % of 200 jobs = 20 paired jobs = 10 pairs.
        assert_eq!(kept, 10);
        assert_eq!(a.paired_count(), 10);
        assert_eq!(b.paired_count(), 10);
        validate_pairing(&a, &b).unwrap();
    }

    #[test]
    fn thinning_below_target_is_noop() {
        let submits: Vec<u64> = (0..100).map(|i| i * 60).collect();
        let (mut a, mut b) = traces(&submits, &submits);
        let mut rng = SimRng::seed_from_u64(10);
        pair_exact_proportion(&mut a, &mut b, 0.05, SimDuration::from_mins(2), &mut rng);
        let before = a.paired_count();
        let kept = thin_pairs_to_share(&mut a, &mut b, 0.5, &mut rng);
        assert_eq!(kept, before);
        assert_eq!(a.paired_count(), before);
    }

    #[test]
    fn validate_detects_asymmetry() {
        let (mut a, b) = traces(&[0], &[0]);
        a.jobs_mut()[0].mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(0),
        });
        let err = validate_pairing(&a, &b).unwrap_err();
        assert!(err.contains("not mutual"), "{err}");
    }

    #[test]
    fn validate_detects_dangling_ref() {
        let (mut a, b) = traces(&[0], &[0]);
        a.jobs_mut()[0].mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(99),
        });
        let err = validate_pairing(&a, &b).unwrap_err();
        assert!(err.contains("missing job"), "{err}");
    }
}
