//! Standard Workload Format (SWF) reader and writer.
//!
//! SWF is the de-facto interchange format of the Parallel Workloads Archive;
//! Cobalt/Qsim traces are routinely converted to it. Supporting it means a
//! site with the real Intrepid/Eureka logs can drop them straight into this
//! reproduction. Each record is one whitespace-separated line of 18 fields;
//! comment lines start with `;`.
//!
//! Fields used here (1-based SWF indices):
//!
//! | # | field              | mapping                                    |
//! |---|--------------------|--------------------------------------------|
//! | 1 | job number         | [`Job::id`]                                |
//! | 2 | submit time        | [`Job::submit`]                            |
//! | 4 | run time           | [`Job::runtime`]                           |
//! | 5 | allocated procs    | [`Job::size`] fallback                     |
//! | 8 | requested procs    | [`Job::size`] when positive                |
//! | 9 | requested time     | [`Job::walltime`] (falls back to runtime)  |
//!
//! Remaining fields are preserved as `-1` (unknown) on write, per the SWF
//! convention.

use crate::job::{Job, JobId, MachineId};
use crate::trace::Trace;
use cosched_sim::{SimDuration, SimTime};
use std::io::{BufRead, Write};

/// Errors arising while parsing SWF input.
#[derive(Debug)]
pub enum SwfError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record line that could not be interpreted.
    Malformed {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for SwfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwfError::Io(e) => write!(f, "I/O error reading SWF: {e}"),
            SwfError::Malformed { line, reason } => {
                write!(f, "malformed SWF record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for SwfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwfError::Io(e) => Some(e),
            SwfError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for SwfError {
    fn from(e: std::io::Error) -> Self {
        SwfError::Io(e)
    }
}

fn field_i64(fields: &[&str], idx0: usize, line: usize) -> Result<i64, SwfError> {
    let raw = fields.get(idx0).ok_or_else(|| SwfError::Malformed {
        line,
        reason: format!("missing field {}", idx0 + 1),
    })?;
    raw.parse::<i64>().map_err(|_| SwfError::Malformed {
        line,
        reason: format!("field {} is not an integer: {raw:?}", idx0 + 1),
    })
}

/// Parse an SWF stream into a [`Trace`] for `machine`.
///
/// Records with non-positive runtime or without any processor count are
/// skipped (cancelled jobs in SWF carry `-1` fields); the count of skipped
/// records is returned alongside the trace.
pub fn read_swf<R: BufRead>(reader: R, machine: MachineId) -> Result<(Trace, usize), SwfError> {
    let mut jobs = Vec::new();
    let mut skipped = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = lineno + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with(';') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        let id = field_i64(&fields, 0, lineno)?;
        let submit = field_i64(&fields, 1, lineno)?;
        let runtime = field_i64(&fields, 3, lineno)?;
        let alloc_procs = field_i64(&fields, 4, lineno)?;
        let req_procs = field_i64(&fields, 7, lineno).unwrap_or(-1);
        let req_time = field_i64(&fields, 8, lineno).unwrap_or(-1);

        if id < 0 || submit < 0 {
            return Err(SwfError::Malformed {
                line: lineno,
                reason: format!("negative job number or submit time ({id}, {submit})"),
            });
        }
        let size = if req_procs > 0 {
            req_procs
        } else {
            alloc_procs
        };
        if runtime <= 0 || size <= 0 {
            skipped += 1;
            continue;
        }
        let runtime = SimDuration::from_secs(runtime as u64);
        let walltime = if req_time > 0 {
            SimDuration::from_secs(req_time as u64)
        } else {
            runtime
        };
        jobs.push(Job::new(
            JobId(id as u64),
            machine,
            SimTime::from_secs(submit as u64),
            size as u64,
            runtime,
            walltime,
        ));
    }
    Ok((Trace::from_jobs(machine, jobs), skipped))
}

/// Serialise a [`Trace`] as SWF. Unknown fields are written as `-1`.
pub fn write_swf<W: Write>(mut writer: W, trace: &Trace) -> std::io::Result<()> {
    writeln!(
        writer,
        "; SWF export of {} ({} jobs)",
        trace.machine(),
        trace.len()
    )?;
    writeln!(writer, "; fields: id submit wait runtime procs avgcpu mem reqprocs reqtime reqmem status uid gid exe queue part prev think")?;
    for j in trace.jobs() {
        writeln!(
            writer,
            "{} {} -1 {} {} -1 -1 {} {} -1 1 -1 -1 -1 -1 -1 -1 -1",
            j.id.0,
            j.submit.as_secs(),
            j.runtime.as_secs(),
            j.size,
            j.size,
            j.walltime.as_secs(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const SAMPLE: &str = "\
; comment header
; another

1 0 5 3600 64 -1 -1 64 7200 -1 1 -1 -1 -1 -1 -1 -1 -1
2 120 9 60 -1 -1 -1 128 -1 -1 1 -1 -1 -1 -1 -1 -1 -1
3 240 -1 -1 32 -1 -1 32 600 -1 0 -1 -1 -1 -1 -1 -1 -1
";

    #[test]
    fn parses_records_and_skips_cancelled() {
        let (trace, skipped) = read_swf(Cursor::new(SAMPLE), MachineId(0)).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(skipped, 1); // job 3 has runtime -1
        let j1 = trace.get(JobId(1)).unwrap();
        assert_eq!(j1.submit.as_secs(), 0);
        assert_eq!(j1.size, 64);
        assert_eq!(j1.runtime.as_secs(), 3600);
        assert_eq!(j1.walltime.as_secs(), 7200);
    }

    #[test]
    fn requested_procs_preferred_and_walltime_falls_back() {
        let (trace, _) = read_swf(Cursor::new(SAMPLE), MachineId(0)).unwrap();
        let j2 = trace.get(JobId(2)).unwrap();
        assert_eq!(j2.size, 128); // requested procs wins over allocated -1
        assert_eq!(j2.walltime, j2.runtime); // reqtime -1 → runtime
    }

    #[test]
    fn rejects_short_record() {
        let err = read_swf(Cursor::new("1 0 5\n"), MachineId(0)).unwrap_err();
        assert!(matches!(err, SwfError::Malformed { line: 1, .. }), "{err}");
    }

    #[test]
    fn rejects_non_numeric_field() {
        let err = read_swf(Cursor::new("x 0 5 10 4 -1 -1 4 10 -1 1\n"), MachineId(0)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("not an integer"), "{msg}");
    }

    #[test]
    fn rejects_negative_submit() {
        let err = read_swf(Cursor::new("1 -5 5 10 4 -1 -1 4 10 -1 1\n"), MachineId(0)).unwrap_err();
        assert!(err.to_string().contains("negative"), "{err}");
    }

    #[test]
    fn roundtrip_through_swf() {
        let (trace, _) = read_swf(Cursor::new(SAMPLE), MachineId(1)).unwrap();
        let mut buf = Vec::new();
        write_swf(&mut buf, &trace).unwrap();
        let (back, skipped) = read_swf(Cursor::new(buf), MachineId(1)).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(trace, back);
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let (trace, skipped) = read_swf(Cursor::new(";\n\n"), MachineId(0)).unwrap();
        assert!(trace.is_empty());
        assert_eq!(skipped, 0);
    }
}
