//! Inter-job temporal constraints — the paper's §VI future work:
//! "we plan to extend our coscheduling mechanism to support more
//! sophisticated inter-job temporal constraints."
//!
//! Besides the exact co-start the paper implements, coupled workflows want:
//!
//! * [`TemporalConstraint::CoStart`] — start simultaneously (the base
//!   mechanism, delegated to the hold/yield rendezvous);
//! * [`TemporalConstraint::StartWithin`] — a *soft* co-start: the pair
//!   should start within a window of each other. The first-ready job does
//!   not block on the rendezvous — if the mate cannot start now, the job
//!   runs and the mate inherits a deadline;
//! * [`TemporalConstraint::StartAfter`] — ordered execution: the successor
//!   may start no earlier than `min_delay` after the predecessor starts and
//!   should start within `max_delay` (e.g. an analysis job that must begin
//!   once the simulation has produced its first checkpoint, but soon enough
//!   to co-execute).
//!
//! Constraints are *monitored* as well as enforced: the report grades every
//! constraint instance, because `StartWithin`/`StartAfter` upper bounds are
//! best-effort under load (the lower bound of `StartAfter` is hard — the
//! driver simply does not release the successor earlier).

use crate::config::{CoschedConfig, Scheme};
use cosched_metrics::{JobRecord, MachineSummary};
use cosched_sched::{JobStatus, Machine, MachineConfig};
use cosched_sim::{EventQueue, SimDuration, SimTime};
use cosched_workload::{Job, JobId, Trace};
use std::collections::HashMap;

/// A temporal relation between two jobs on opposite machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TemporalConstraint {
    /// Start at exactly the same instant.
    CoStart,
    /// Start within `window` of each other (soft co-start).
    StartWithin {
        /// Maximum allowed |start(a) − start(b)|.
        window: SimDuration,
    },
    /// `b` starts within `[start(a) + min_delay, start(a) + max_delay]`.
    /// The lower bound is enforced (the successor is withheld); the upper
    /// bound is monitored.
    StartAfter {
        /// Earliest allowed successor start, relative to the predecessor.
        min_delay: SimDuration,
        /// Latest desired successor start, relative to the predecessor.
        max_delay: SimDuration,
    },
}

/// One constraint instance binding job `a` on machine 0 and job `b` on
/// machine 1 (for `StartAfter`, `a` is the predecessor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintInstance {
    /// Job on machine 0.
    pub a: JobId,
    /// Job on machine 1.
    pub b: JobId,
    /// The relation.
    pub constraint: TemporalConstraint,
}

/// Outcome of one constraint instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConstraintOutcome {
    /// The instance.
    pub instance: ConstraintInstance,
    /// Observed `start(b) − start(a)` (saturating for CoStart/Within where
    /// order is irrelevant, signedness is reported via `b_before_a`).
    pub offset: SimDuration,
    /// Whether `b` started before `a`.
    pub b_before_a: bool,
    /// Whether the constraint held.
    pub satisfied: bool,
}

/// Events of the temporal simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival {
        m: usize,
        idx: usize,
    },
    JobEnd {
        m: usize,
        job: JobId,
    },
    ReleaseSweep {
        m: usize,
    },
    /// A gated successor becomes eligible for submission.
    ReleaseSuccessor {
        job: JobId,
    },
}

/// Report of a temporal-constraint run.
#[derive(Debug, Clone)]
pub struct TemporalReport {
    /// Per-machine job records.
    pub records: [Vec<JobRecord>; 2],
    /// Per-machine summaries.
    pub summaries: [MachineSummary; 2],
    /// One outcome per constraint instance (only for instances whose jobs
    /// both completed).
    pub outcomes: Vec<ConstraintOutcome>,
    /// Whether the run wedged.
    pub deadlocked: bool,
    /// Events dispatched.
    pub events: u64,
}

impl TemporalReport {
    /// All constraints satisfied.
    pub fn all_satisfied(&self) -> bool {
        self.outcomes.iter().all(|o| o.satisfied)
    }

    /// Count of violated constraints.
    pub fn violations(&self) -> usize {
        self.outcomes.iter().filter(|o| !o.satisfied).count()
    }
}

/// Two-machine simulator with temporal constraints between jobs.
pub struct TemporalSimulation {
    machines: [Machine; 2],
    cosched: [CoschedConfig; 2],
    capacities: [u64; 2],
    names: [String; 2],
    jobs: [Vec<Job>; 2],
    constraints: Vec<ConstraintInstance>,
    /// (machine, job) → indices of constraints the job participates in. A
    /// job may anchor several `StartAfter` successors, but at most one
    /// *decision-driving* role (CoStart / StartWithin on either side, or
    /// being a StartAfter successor).
    by_job: HashMap<(usize, JobId), Vec<usize>>,
    /// Successors gated by an unstarted predecessor: b-job → trace index.
    gated: HashMap<JobId, usize>,
    queue: EventQueue<Event>,
    now: SimTime,
    events: u64,
    sweep_armed: [bool; 2],
    max_events: u64,
}

impl TemporalSimulation {
    /// Build from machine configs, the per-machine coscheduling settings
    /// (used for CoStart waits), traces, and constraint instances.
    ///
    /// # Panics
    /// Panics if a constraint references a missing job or a job carries two
    /// constraints.
    pub fn new(
        machines: [MachineConfig; 2],
        cosched: [CoschedConfig; 2],
        traces: [Trace; 2],
        constraints: Vec<ConstraintInstance>,
    ) -> Self {
        let mut by_job: HashMap<(usize, JobId), Vec<usize>> = HashMap::new();
        let mut driving: std::collections::HashSet<(usize, JobId)> =
            std::collections::HashSet::new();
        for (i, c) in constraints.iter().enumerate() {
            assert!(
                traces[0].get(c.a).is_some(),
                "constraint references missing job {} on machine 0",
                c.a
            );
            assert!(
                traces[1].get(c.b).is_some(),
                "constraint references missing job {} on machine 1",
                c.b
            );
            by_job.entry((0, c.a)).or_default().push(i);
            by_job.entry((1, c.b)).or_default().push(i);
            // At most one decision-driving role per job.
            let drivers: Vec<(usize, JobId)> = match c.constraint {
                TemporalConstraint::CoStart | TemporalConstraint::StartWithin { .. } => {
                    vec![(0, c.a), (1, c.b)]
                }
                TemporalConstraint::StartAfter { .. } => vec![(1, c.b)],
            };
            for d in drivers {
                assert!(
                    driving.insert(d),
                    "job {} on machine {} has two decision-driving constraints",
                    d.1,
                    d.0
                );
            }
        }
        let capacities = [machines[0].capacity, machines[1].capacity];
        let names = [machines[0].name.clone(), machines[1].name.clone()];
        let [ta, tb] = traces;
        TemporalSimulation {
            machines: [
                Machine::new(machines[0].clone()),
                Machine::new(machines[1].clone()),
            ],
            cosched,
            capacities,
            names,
            jobs: [ta.into_jobs(), tb.into_jobs()],
            constraints,
            by_job,
            gated: HashMap::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events: 0,
            sweep_armed: [false, false],
            max_events: 10_000_000,
        }
    }

    /// All constraints `job` on machine `m` participates in.
    fn constraints_of(&self, m: usize, job: JobId) -> impl Iterator<Item = &ConstraintInstance> {
        self.by_job
            .get(&(m, job))
            .into_iter()
            .flatten()
            .map(|&i| &self.constraints[i])
    }

    /// The decision-driving constraint of `job` on `m`, if any: CoStart /
    /// StartWithin (either side) or StartAfter (successor side only).
    fn driving_constraint(&self, m: usize, job: JobId) -> Option<ConstraintInstance> {
        self.constraints_of(m, job)
            .find(|c| match c.constraint {
                TemporalConstraint::CoStart | TemporalConstraint::StartWithin { .. } => true,
                TemporalConstraint::StartAfter { .. } => m == 1 && c.b == job,
            })
            .copied()
    }

    /// Run to completion.
    pub fn run(mut self) -> TemporalReport {
        for m in 0..2 {
            for idx in 0..self.jobs[m].len() {
                let t = self.jobs[m][idx].submit;
                self.queue.push(t, Event::Arrival { m, idx });
            }
        }
        let mut aborted = false;
        while let Some(ev) = self.queue.pop() {
            if self.events >= self.max_events {
                aborted = true;
                break;
            }
            self.now = ev.time;
            self.events += 1;
            match ev.event {
                Event::Arrival { m, idx } => self.arrive(m, idx),
                Event::JobEnd { m, job } => {
                    self.machines[m].finish(job, self.now);
                    self.iterate(m);
                }
                Event::ReleaseSweep { m } => self.sweep(m),
                Event::ReleaseSuccessor { job } => {
                    if let Some(idx) = self.gated.remove(&job) {
                        let j = self.jobs[1][idx].clone();
                        self.machines[1].submit(j, self.now);
                        self.iterate(1);
                    }
                }
            }
        }
        self.report(aborted)
    }

    fn arrive(&mut self, m: usize, idx: usize) {
        let job = self.jobs[m][idx].clone();
        // Successors of StartAfter constraints are gated until the
        // predecessor starts (plus min_delay).
        if m == 1 {
            let gate = self
                .driving_constraint(1, job.id)
                .and_then(|c| match c.constraint {
                    TemporalConstraint::StartAfter { min_delay, .. } => Some((c.a, min_delay)),
                    _ => None,
                });
            if let Some((pred, min_delay)) = gate {
                match self.machines[0].status(pred) {
                    JobStatus::Running | JobStatus::Finished => {
                        let pred_start = self.machines[0]
                            .start_of(pred)
                            .expect("running/finished job has a start");
                        let eligible = pred_start + min_delay;
                        if eligible > self.now {
                            self.gated.insert(job.id, idx);
                            self.queue
                                .push(eligible, Event::ReleaseSuccessor { job: job.id });
                            return;
                        }
                    }
                    _ => {
                        // Predecessor not started yet: park until its
                        // start (handled in `on_started`).
                        self.gated.insert(job.id, idx);
                        return;
                    }
                }
            }
        }
        self.machines[m].submit(job, self.now);
        self.iterate(m);
    }

    /// Called whenever a machine-0 job starts: release gated successors.
    fn on_started(&mut self, m: usize, job: JobId) {
        if m != 0 {
            return;
        }
        let releases: Vec<(JobId, SimDuration)> = self
            .constraints_of(0, job)
            .filter_map(|c| match c.constraint {
                TemporalConstraint::StartAfter { min_delay, .. } => Some((c.b, min_delay)),
                _ => None,
            })
            .collect();
        for (succ, min_delay) in releases {
            if self.gated.contains_key(&succ) {
                self.queue
                    .push(self.now + min_delay, Event::ReleaseSuccessor { job: succ });
            }
        }
    }

    fn iterate(&mut self, m: usize) {
        self.machines[m].begin_iteration();
        while let Some(cand) = self.machines[m].pick_next(self.now) {
            let job_id = cand.job_id;
            let decision = self.decide(m, job_id, cand.charged);
            match decision {
                TDecision::Start => {
                    let end = self.machines[m].start(cand, self.now);
                    self.queue.push(end, Event::JobEnd { m, job: job_id });
                    self.on_started(m, job_id);
                }
                TDecision::Wait(Scheme::Hold) => self.machines[m].hold(cand, self.now),
                TDecision::Wait(Scheme::Yield) => self.machines[m].yield_job(cand, self.now),
            }
        }
        self.arm_sweep_if_needed(m);
    }

    fn decide(&mut self, m: usize, job: JobId, charged: u64) -> TDecision {
        let Some(c) = self.driving_constraint(m, job) else {
            return TDecision::Start;
        };
        let other_m = 1 - m;
        let other_id = if m == 0 { c.b } else { c.a };
        match c.constraint {
            TemporalConstraint::CoStart => {
                // The 2-way rendezvous, inline: mate holding → start both;
                // mate queued and startable → start both; else wait.
                match self.machines[other_m].status(other_id) {
                    JobStatus::Held => {
                        if let Some(end) = self.machines[other_m].start_held(other_id, self.now) {
                            self.queue.push(
                                end,
                                Event::JobEnd {
                                    m: other_m,
                                    job: other_id,
                                },
                            );
                            self.on_started(other_m, other_id);
                        }
                        TDecision::Start
                    }
                    JobStatus::Queued | JobStatus::Unsubmitted => {
                        if let Some(end) =
                            self.machines[other_m].try_start_direct(other_id, self.now)
                        {
                            self.queue.push(
                                end,
                                Event::JobEnd {
                                    m: other_m,
                                    job: other_id,
                                },
                            );
                            self.on_started(other_m, other_id);
                            TDecision::Start
                        } else {
                            TDecision::Wait(self.effective_scheme(m, job, charged))
                        }
                    }
                    JobStatus::Running | JobStatus::Finished => TDecision::Start,
                }
            }
            TemporalConstraint::StartWithin { .. } => {
                // Soft co-start: try to bring the mate along, but never
                // block — the window gives slack, and the report grades it.
                if self.machines[other_m].status(other_id) == JobStatus::Held {
                    if let Some(end) = self.machines[other_m].start_held(other_id, self.now) {
                        self.queue.push(
                            end,
                            Event::JobEnd {
                                m: other_m,
                                job: other_id,
                            },
                        );
                        self.on_started(other_m, other_id);
                    }
                } else if let Some(end) =
                    self.machines[other_m].try_start_direct(other_id, self.now)
                {
                    self.queue.push(
                        end,
                        Event::JobEnd {
                            m: other_m,
                            job: other_id,
                        },
                    );
                    self.on_started(other_m, other_id);
                }
                TDecision::Start
            }
            TemporalConstraint::StartAfter { .. } => {
                // The lower bound was enforced by gating; at this point the
                // job just runs.
                TDecision::Start
            }
        }
    }

    fn effective_scheme(&self, m: usize, job: JobId, charged: u64) -> Scheme {
        let cfg = &self.cosched[m];
        match cfg.scheme {
            Scheme::Hold => {
                if let Some(cap) = cfg.max_held_fraction {
                    let would = (self.machines[m].held_nodes() + charged) as f64
                        / self.capacities[m] as f64;
                    if would > cap {
                        return Scheme::Yield;
                    }
                }
                Scheme::Hold
            }
            Scheme::Yield => {
                if let Some(max) = cfg.max_yields_before_hold {
                    if self.machines[m].yields_of(job) >= max {
                        return Scheme::Hold;
                    }
                }
                Scheme::Yield
            }
        }
    }

    fn sweep(&mut self, m: usize) {
        self.sweep_armed[m] = false;
        let Some(period) = self.cosched[m].release_period else {
            return;
        };
        let matured: Vec<JobId> = self.machines[m]
            .held_jobs()
            .iter()
            .filter(|&&job| {
                self.machines[m]
                    .hold_since(job)
                    .is_some_and(|since| since + period <= self.now)
            })
            .copied()
            .collect();
        for job in matured {
            self.machines[m].release_held(job, self.now);
        }
        self.iterate(m);
        self.arm_sweep_if_needed(m);
    }

    fn arm_sweep_if_needed(&mut self, m: usize) {
        if self.sweep_armed[m] {
            return;
        }
        let Some(period) = self.cosched[m].release_period else {
            return;
        };
        let oldest = self.machines[m]
            .held_jobs()
            .iter()
            .filter_map(|&job| self.machines[m].hold_since(job))
            .min();
        if let Some(since) = oldest {
            let at = (since + period).max(self.now);
            self.queue.push(at, Event::ReleaseSweep { m });
            self.sweep_armed[m] = true;
        }
    }

    fn report(mut self, aborted: bool) -> TemporalReport {
        let horizon = self.now.max(SimTime::from_secs(1));
        let held = [
            self.machines[0].held_node_seconds(horizon),
            self.machines[1].held_node_seconds(horizon),
        ];
        let unfinished = self.jobs[0].len() + self.jobs[1].len()
            - self.machines[0].records().len()
            - self.machines[1].records().len();
        let records = [
            self.machines[0].take_records(),
            self.machines[1].take_records(),
        ];
        let summaries = [
            MachineSummary::from_records(
                self.names[0].clone(),
                &records[0],
                self.capacities[0],
                horizon,
                held[0],
            ),
            MachineSummary::from_records(
                self.names[1].clone(),
                &records[1],
                self.capacities[1],
                horizon,
                held[1],
            ),
        ];
        let starts: [HashMap<JobId, SimTime>; 2] = [
            records[0].iter().map(|r| (r.id, r.start)).collect(),
            records[1].iter().map(|r| (r.id, r.start)).collect(),
        ];
        let mut outcomes = Vec::new();
        for c in &self.constraints {
            let (Some(&sa), Some(&sb)) = (starts[0].get(&c.a), starts[1].get(&c.b)) else {
                continue;
            };
            let offset = sa.abs_diff(sb);
            let b_before_a = sb < sa;
            let satisfied = match c.constraint {
                TemporalConstraint::CoStart => offset.is_zero(),
                TemporalConstraint::StartWithin { window } => offset <= window,
                TemporalConstraint::StartAfter {
                    min_delay,
                    max_delay,
                } => !b_before_a && offset >= min_delay && offset <= max_delay,
            };
            outcomes.push(ConstraintOutcome {
                instance: *c,
                offset,
                b_before_a,
                satisfied,
            });
        }
        TemporalReport {
            records,
            summaries,
            outcomes,
            deadlocked: !aborted && unfinished > 0,
            events: self.events,
        }
    }
}

/// Internal decision for the temporal driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TDecision {
    Start,
    Wait(Scheme),
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::MachineId;

    fn job(machine: usize, id: u64, submit: u64, size: u64, runtime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(runtime * 2),
        )
    }

    fn machines() -> [MachineConfig; 2] {
        [
            MachineConfig::flat("A", MachineId(0), 100),
            MachineConfig::flat("B", MachineId(1), 100),
        ]
    }

    fn cosched() -> [CoschedConfig; 2] {
        [
            CoschedConfig::paper(Scheme::Hold),
            CoschedConfig::paper(Scheme::Yield),
        ]
    }

    #[test]
    fn costart_constraint_behaves_like_coscheduling() {
        let traces = [
            Trace::from_jobs(MachineId(0), vec![job(0, 1, 0, 40, 600)]),
            Trace::from_jobs(
                MachineId(1),
                vec![job(1, 9, 0, 100, 300), job(1, 1, 30, 40, 600)],
            ),
        ];
        let report = TemporalSimulation::new(
            machines(),
            cosched(),
            traces,
            vec![ConstraintInstance {
                a: JobId(1),
                b: JobId(1),
                constraint: TemporalConstraint::CoStart,
            }],
        )
        .run();
        assert!(!report.deadlocked);
        assert!(report.all_satisfied(), "outcomes {:?}", report.outcomes);
        assert_eq!(report.outcomes[0].offset, SimDuration::ZERO);
    }

    #[test]
    fn start_within_lets_first_job_run_and_grades_the_window() {
        // B is blocked for 300 s; A's job starts immediately. Window 600 s
        // covers the gap ⇒ satisfied; window 100 s would not.
        let traces = || {
            [
                Trace::from_jobs(MachineId(0), vec![job(0, 1, 0, 40, 600)]),
                Trace::from_jobs(
                    MachineId(1),
                    vec![job(1, 9, 0, 100, 300), job(1, 1, 10, 40, 600)],
                ),
            ]
        };
        let run = |window| {
            TemporalSimulation::new(
                machines(),
                cosched(),
                traces(),
                vec![ConstraintInstance {
                    a: JobId(1),
                    b: JobId(1),
                    constraint: TemporalConstraint::StartWithin { window },
                }],
            )
            .run()
        };
        let wide = run(SimDuration::from_secs(600));
        assert!(!wide.deadlocked);
        assert_eq!(wide.records[0][0].start, SimTime::ZERO, "A does not block");
        assert!(wide.all_satisfied(), "{:?}", wide.outcomes);
        assert_eq!(wide.outcomes[0].offset, SimDuration::from_secs(300));

        let narrow = run(SimDuration::from_secs(100));
        assert_eq!(
            narrow.violations(),
            1,
            "window too small must be graded violated"
        );
    }

    #[test]
    fn start_after_enforces_lower_bound_and_grades_upper() {
        // A starts at 0 (free machine); B submitted immediately but must
        // wait min_delay = 500 s after A's start.
        let traces = [
            Trace::from_jobs(MachineId(0), vec![job(0, 1, 0, 40, 2_000)]),
            Trace::from_jobs(MachineId(1), vec![job(1, 1, 5, 40, 600)]),
        ];
        let report = TemporalSimulation::new(
            machines(),
            cosched(),
            traces,
            vec![ConstraintInstance {
                a: JobId(1),
                b: JobId(1),
                constraint: TemporalConstraint::StartAfter {
                    min_delay: SimDuration::from_secs(500),
                    max_delay: SimDuration::from_secs(1_000),
                },
            }],
        )
        .run();
        assert!(!report.deadlocked);
        let sb = report.records[1][0].start;
        assert_eq!(
            sb,
            SimTime::from_secs(500),
            "successor gated to start+min_delay"
        );
        assert!(report.all_satisfied(), "{:?}", report.outcomes);
        assert!(!report.outcomes[0].b_before_a);
    }

    #[test]
    fn start_after_with_busy_successor_machine_grades_upper_bound() {
        // Successor machine blocked for 2000 s ⇒ b starts at 2000, beyond
        // max_delay 1000 ⇒ violation (monitored, not fatal).
        let traces = [
            Trace::from_jobs(MachineId(0), vec![job(0, 1, 0, 40, 3_000)]),
            Trace::from_jobs(
                MachineId(1),
                vec![job(1, 9, 0, 100, 2_000), job(1, 1, 5, 40, 600)],
            ),
        ];
        let report = TemporalSimulation::new(
            machines(),
            cosched(),
            traces,
            vec![ConstraintInstance {
                a: JobId(1),
                b: JobId(1),
                constraint: TemporalConstraint::StartAfter {
                    min_delay: SimDuration::from_secs(100),
                    max_delay: SimDuration::from_secs(1_000),
                },
            }],
        )
        .run();
        assert!(!report.deadlocked);
        assert_eq!(report.violations(), 1);
        assert_eq!(
            report.records[1]
                .iter()
                .find(|r| r.id == JobId(1))
                .unwrap()
                .start,
            SimTime::from_secs(2_000)
        );
    }

    #[test]
    fn successor_arriving_after_predecessor_started_is_gated_correctly() {
        // A starts at 0; B arrives at t=800 with min_delay 500 — already
        // past the threshold, so B runs immediately.
        let traces = [
            Trace::from_jobs(MachineId(0), vec![job(0, 1, 0, 40, 3_000)]),
            Trace::from_jobs(MachineId(1), vec![job(1, 1, 800, 40, 600)]),
        ];
        let report = TemporalSimulation::new(
            machines(),
            cosched(),
            traces,
            vec![ConstraintInstance {
                a: JobId(1),
                b: JobId(1),
                constraint: TemporalConstraint::StartAfter {
                    min_delay: SimDuration::from_secs(500),
                    max_delay: SimDuration::from_secs(2_000),
                },
            }],
        )
        .run();
        assert_eq!(report.records[1][0].start, SimTime::from_secs(800));
        assert!(report.all_satisfied());
    }

    #[test]
    #[should_panic(expected = "missing job")]
    fn constraint_on_missing_job_is_rejected() {
        let traces = [
            Trace::from_jobs(MachineId(0), vec![job(0, 1, 0, 10, 100)]),
            Trace::from_jobs(MachineId(1), vec![job(1, 1, 0, 10, 100)]),
        ];
        TemporalSimulation::new(
            machines(),
            cosched(),
            traces,
            vec![ConstraintInstance {
                a: JobId(99),
                b: JobId(1),
                constraint: TemporalConstraint::CoStart,
            }],
        );
    }

    #[test]
    fn unconstrained_jobs_flow_through() {
        let traces = [
            Trace::from_jobs(
                MachineId(0),
                vec![job(0, 1, 0, 10, 100), job(0, 2, 5, 10, 100)],
            ),
            Trace::from_jobs(MachineId(1), vec![job(1, 1, 0, 10, 100)]),
        ];
        let report = TemporalSimulation::new(machines(), cosched(), traces, vec![]).run();
        assert!(!report.deadlocked);
        assert_eq!(report.records[0].len(), 2);
        assert_eq!(report.records[1].len(), 1);
        assert!(report.outcomes.is_empty());
    }
}
