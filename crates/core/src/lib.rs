//! Coscheduling of associated jobs on coupled high-end computing systems —
//! the primary contribution of Tang et al., ICPP 2011.
//!
//! Two machines with independent resource managers and policies run
//! workloads containing *associated pairs*: a compute job and its data
//! analysis/visualization mate that must start simultaneously. This crate
//! implements:
//!
//! * [`config`] — the hold/yield [`config::Scheme`]s, the four
//!   [`config::SchemeCombo`]s (HH/HY/YH/YY), and the enhancement knobs of
//!   §IV-E (hold-release period, maximum held-node fraction, maximum yields
//!   before escalating to hold, per-yield priority boost);
//! * [`registry`] — the mate registry mapping each paired job to its mate on
//!   the other domain;
//! * [`algorithm`] — Algorithm 1 (`Run_Job`) as a pure decision procedure
//!   over the protocol vocabulary, shared by the simulator and the live
//!   endpoint, including all fault-tolerance branches;
//! * [`driver`] — the coupled event-driven simulator (the Qsim extension of
//!   §V-A): both machines in one deterministic event loop, coordination
//!   routed through protocol messages, hold-release timers, deadlock
//!   detection, and a [`driver::SimulationReport`];
//! * [`live`] — a wall-clock domain wrapper that serves the protocol over a
//!   real [`cosched_proto::Transport`], demonstrating deployment outside
//!   the simulator.

pub mod algorithm;
pub mod config;
pub mod driver;
pub mod live;
pub mod nway;
pub mod registry;
pub mod temporal;

pub use algorithm::{run_job, run_job_traced, Decision, LocalContext};
pub use config::{CoschedConfig, CoupledConfig, Scheme, SchemeCombo};
pub use driver::{CoupledSimulation, RunArtifacts, RunStats, SimulationReport};
pub use nway::{GroupId, GroupRegistry, NwayConfig, NwayReport, NwaySimulation};
pub use registry::MateRegistry;
