//! The mate registry: which job on which machine is associated with which.
//!
//! In a deployment, users declare the association at submission (e.g. a
//! shared pair token in both job scripts); each domain records the pairs
//! that involve it. The simulator builds the registry from the paired
//! traces up front, which also lets it answer `get_mate_job` for jobs whose
//! mate has not been submitted yet — the `unsubmitted` case of Algorithm 1.

use cosched_workload::{JobId, MachineId, MateRef, Trace};
use std::collections::HashMap;

/// Bidirectional mate lookup across the coupled system.
#[derive(Debug, Clone, Default)]
pub struct MateRegistry {
    map: HashMap<(MachineId, JobId), MateRef>,
}

impl MateRegistry {
    /// An empty registry (no paired jobs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from the traces of both machines, validating mutuality.
    ///
    /// # Panics
    /// Panics if any mate reference is dangling or asymmetric — corrupt
    /// pairing must not silently produce a meaningless experiment.
    pub fn from_traces(a: &Trace, b: &Trace) -> Self {
        cosched_workload::pairing::validate_pairing(a, b)
            .unwrap_or_else(|e| panic!("invalid pairing: {e}"));
        let mut map = HashMap::new();
        for trace in [a, b] {
            for job in trace.jobs().iter().filter(|j| j.is_paired()) {
                map.insert((trace.machine(), job.id), job.mate.expect("filtered"));
            }
        }
        MateRegistry { map }
    }

    /// Register one pair explicitly (both directions).
    pub fn insert_pair(&mut self, a: (MachineId, JobId), b: (MachineId, JobId)) {
        self.map.insert(
            a,
            MateRef {
                machine: b.0,
                job: b.1,
            },
        );
        self.map.insert(
            b,
            MateRef {
                machine: a.0,
                job: a.1,
            },
        );
    }

    /// The mate of `job` on `machine`, if any.
    pub fn mate_of(&self, machine: MachineId, job: JobId) -> Option<MateRef> {
        self.map.get(&(machine, job)).copied()
    }

    /// Number of registered pairs.
    pub fn pair_count(&self) -> usize {
        self.map.len() / 2
    }

    /// Iterate over all pairs once (machine-0-first orientation not
    /// guaranteed; each pair appears exactly once, keyed by its
    /// lexicographically smaller endpoint).
    pub fn pairs(&self) -> impl Iterator<Item = ((MachineId, JobId), MateRef)> + '_ {
        self.map
            .iter()
            .filter(|(&(m, j), mate)| (m, j) < (mate.machine, mate.job))
            .map(|(&k, &v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_sim::{SimDuration, SimTime};
    use cosched_workload::{pairing, Job};

    fn mk(machine: usize, id: u64, submit: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            4,
            SimDuration::from_secs(600),
            SimDuration::from_secs(1200),
        )
    }

    fn paired_traces() -> (Trace, Trace) {
        let mut a = Trace::from_jobs(MachineId(0), vec![mk(0, 1, 0), mk(0, 2, 500)]);
        let mut b = Trace::from_jobs(MachineId(1), vec![mk(1, 1, 30), mk(1, 2, 5_000)]);
        pairing::pair_by_window(&mut a, &mut b, SimDuration::from_mins(2));
        (a, b)
    }

    #[test]
    fn builds_from_traces() {
        let (a, b) = paired_traces();
        let reg = MateRegistry::from_traces(&a, &b);
        assert_eq!(reg.pair_count(), 1);
        let mate = reg.mate_of(MachineId(0), JobId(1)).unwrap();
        assert_eq!(
            mate,
            MateRef {
                machine: MachineId(1),
                job: JobId(1)
            }
        );
        let back = reg.mate_of(MachineId(1), JobId(1)).unwrap();
        assert_eq!(
            back,
            MateRef {
                machine: MachineId(0),
                job: JobId(1)
            }
        );
        assert_eq!(reg.mate_of(MachineId(0), JobId(2)), None);
    }

    #[test]
    #[should_panic(expected = "invalid pairing")]
    fn rejects_asymmetric_traces() {
        let (mut a, b) = paired_traces();
        // Corrupt: point job 2 at a job that doesn't reciprocate.
        a.jobs_mut()[1].mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(2),
        });
        MateRegistry::from_traces(&a, &b);
    }

    #[test]
    fn insert_pair_is_bidirectional() {
        let mut reg = MateRegistry::new();
        reg.insert_pair((MachineId(0), JobId(7)), (MachineId(1), JobId(9)));
        assert_eq!(reg.pair_count(), 1);
        assert_eq!(
            reg.mate_of(MachineId(1), JobId(9)),
            Some(MateRef {
                machine: MachineId(0),
                job: JobId(7)
            })
        );
    }

    #[test]
    fn pairs_iterates_each_once() {
        let mut reg = MateRegistry::new();
        reg.insert_pair((MachineId(0), JobId(1)), (MachineId(1), JobId(2)));
        reg.insert_pair((MachineId(0), JobId(3)), (MachineId(1), JobId(4)));
        let pairs: Vec<_> = reg.pairs().collect();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn empty_registry() {
        let reg = MateRegistry::new();
        assert_eq!(reg.pair_count(), 0);
        assert_eq!(reg.mate_of(MachineId(0), JobId(1)), None);
    }
}
