//! Coscheduling configuration: schemes, combinations, and enhancements.

use cosched_sched::MachineConfig;
use cosched_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// The two basic coscheduling schemes of §IV-B. Each machine is configured
/// *locally* with one of them — §IV-E1: "an individual machine needs to be
/// configured only with its local scheme, without knowing the remote
/// configuration".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// A ready job whose mate is not ready keeps its nodes, blocking them
    /// from everyone else until the mate is ready. Minimises pair
    /// synchronization time; costs service units.
    Hold,
    /// A ready job whose mate is not ready gives the nodes back and lets the
    /// scheduler run something else. Gentle on utilization; the pair may
    /// yield alternately many times before aligning.
    Yield,
}

impl Scheme {
    /// One-letter label used in figure axes ("H"/"Y").
    pub fn letter(self) -> &'static str {
        match self {
            Scheme::Hold => "H",
            Scheme::Yield => "Y",
        }
    }
}

/// A combination of local schemes for the two machines — the four
/// configurations evaluated in §IV-D and throughout §V.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemeCombo(pub Scheme, pub Scheme);

impl SchemeCombo {
    /// Hold on both machines.
    pub const HH: SchemeCombo = SchemeCombo(Scheme::Hold, Scheme::Hold);
    /// Hold on machine 0, yield on machine 1.
    pub const HY: SchemeCombo = SchemeCombo(Scheme::Hold, Scheme::Yield);
    /// Yield on machine 0, hold on machine 1.
    pub const YH: SchemeCombo = SchemeCombo(Scheme::Yield, Scheme::Hold);
    /// Yield on both machines.
    pub const YY: SchemeCombo = SchemeCombo(Scheme::Yield, Scheme::Yield);

    /// All four combinations, in the order the paper's figures list them.
    pub const ALL: [SchemeCombo; 4] = [Self::HH, Self::HY, Self::YH, Self::YY];

    /// The figure label ("HH", "HY", "YH", "YY").
    pub fn label(self) -> String {
        format!("{}{}", self.0.letter(), self.1.letter())
    }

    /// Scheme of machine `m` (0 or 1).
    pub fn of(self, m: usize) -> Scheme {
        match m {
            0 => self.0,
            1 => self.1,
            _ => panic!("coupled systems have machines 0 and 1, not {m}"),
        }
    }
}

/// Per-machine coscheduling configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoschedConfig {
    /// Master switch (Algorithm 1, line 1). Disabled ⇒ every ready job
    /// starts normally; this is the paper's baseline.
    pub enabled: bool,
    /// The locally configured scheme.
    pub scheme: Scheme,
    /// Deadlock breaker (§IV-E1): a held job releases its nodes after this
    /// period, re-entering the queue demoted to lowest priority for that
    /// instant. `None` disables the breaker (used to demonstrate the
    /// hold-hold deadlock). The paper's experiments use 20 minutes.
    pub release_period: Option<SimDuration>,
    /// Utilization guard (§IV-E2): if holding this job would push the held
    /// fraction of capacity above the threshold, the job yields instead.
    pub max_held_fraction: Option<f64>,
    /// Starvation guard (§IV-E2): after this many yields a job escalates to
    /// hold.
    pub max_yields_before_hold: Option<u32>,
}

impl CoschedConfig {
    /// Coscheduling off — the baseline configuration.
    pub fn disabled() -> Self {
        CoschedConfig {
            enabled: false,
            scheme: Scheme::Yield,
            release_period: None,
            max_held_fraction: None,
            max_yields_before_hold: None,
        }
    }

    /// The paper's standard experimental configuration for `scheme`:
    /// coscheduling on, 20-minute hold-release period, and the deployed
    /// held-node threshold of §IV-E2 ("we enforce a maximum threshold for
    /// the proportion of nodes… the job will yield instead of hold"), set
    /// to half the machine so "the system can have at least a number of
    /// nodes able to be consumed normally". The yield-count escalation is
    /// left off ("the other enhancements turned out to be optional").
    pub fn paper(scheme: Scheme) -> Self {
        CoschedConfig {
            enabled: true,
            scheme,
            release_period: Some(SimDuration::from_mins(20)),
            max_held_fraction: Some(0.5),
            max_yields_before_hold: None,
        }
    }

    /// Builder: set or clear the hold-release period.
    pub fn with_release_period(mut self, period: Option<SimDuration>) -> Self {
        self.release_period = period;
        self
    }

    /// Builder: cap the held-node fraction.
    pub fn with_max_held_fraction(mut self, frac: Option<f64>) -> Self {
        if let Some(f) = frac {
            assert!(
                (0.0..=1.0).contains(&f),
                "held fraction cap {f} outside [0,1]"
            );
        }
        self.max_held_fraction = frac;
        self
    }

    /// Builder: cap yields before escalating to hold.
    pub fn with_max_yields(mut self, yields: Option<u32>) -> Self {
        self.max_yields_before_hold = yields;
        self
    }
}

/// Full configuration of a coupled system: two machines and their local
/// coscheduling settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoupledConfig {
    /// The two resource-manager configurations.
    pub machines: [MachineConfig; 2],
    /// Each machine's local coscheduling configuration.
    pub cosched: [CoschedConfig; 2],
    /// Safety valve for the event loop: abort after this many events
    /// (live-lock guard; generously above anything a month-long trace
    /// produces).
    pub max_events: u64,
}

impl CoupledConfig {
    /// The paper's §V-A setup: Intrepid (machine 0) coupled with Eureka
    /// (machine 1), WFP + backfilling on both, the given scheme combination,
    /// 20-minute hold release.
    pub fn anl(combo: SchemeCombo) -> Self {
        use cosched_workload::MachineId;
        CoupledConfig {
            machines: [
                MachineConfig::intrepid(MachineId(0)),
                MachineConfig::eureka(MachineId(1)),
            ],
            cosched: [
                CoschedConfig::paper(combo.of(0)),
                CoschedConfig::paper(combo.of(1)),
            ],
            max_events: 50_000_000,
        }
    }

    /// Same machines, coscheduling disabled — the baseline.
    pub fn anl_baseline() -> Self {
        let mut cfg = Self::anl(SchemeCombo::YY);
        cfg.cosched = [CoschedConfig::disabled(), CoschedConfig::disabled()];
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combo_labels() {
        assert_eq!(SchemeCombo::HH.label(), "HH");
        assert_eq!(SchemeCombo::HY.label(), "HY");
        assert_eq!(SchemeCombo::YH.label(), "YH");
        assert_eq!(SchemeCombo::YY.label(), "YY");
        assert_eq!(SchemeCombo::ALL.len(), 4);
    }

    #[test]
    fn combo_of_indexes_machines() {
        assert_eq!(SchemeCombo::HY.of(0), Scheme::Hold);
        assert_eq!(SchemeCombo::HY.of(1), Scheme::Yield);
    }

    #[test]
    #[should_panic(expected = "machines 0 and 1")]
    fn combo_of_rejects_third_machine() {
        SchemeCombo::HH.of(2);
    }

    #[test]
    fn paper_config_matches_section_v() {
        let c = CoschedConfig::paper(Scheme::Hold);
        assert!(c.enabled);
        assert_eq!(c.release_period, Some(SimDuration::from_mins(20)));
        assert_eq!(c.max_held_fraction, Some(0.5));
        assert_eq!(c.max_yields_before_hold, None);
    }

    #[test]
    fn disabled_config_is_off() {
        assert!(!CoschedConfig::disabled().enabled);
    }

    #[test]
    fn builders_set_enhancements() {
        let c = CoschedConfig::paper(Scheme::Yield)
            .with_max_held_fraction(Some(0.5))
            .with_max_yields(Some(10))
            .with_release_period(None);
        assert_eq!(c.max_held_fraction, Some(0.5));
        assert_eq!(c.max_yields_before_hold, Some(10));
        assert_eq!(c.release_period, None);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn held_fraction_cap_validated() {
        CoschedConfig::paper(Scheme::Hold).with_max_held_fraction(Some(1.5));
    }

    #[test]
    fn anl_config_shape() {
        let c = CoupledConfig::anl(SchemeCombo::HY);
        assert_eq!(c.machines[0].capacity, 40_960);
        assert_eq!(c.machines[1].capacity, 100);
        assert_eq!(c.cosched[0].scheme, Scheme::Hold);
        assert_eq!(c.cosched[1].scheme, Scheme::Yield);
        let b = CoupledConfig::anl_baseline();
        assert!(!b.cosched[0].enabled && !b.cosched[1].enabled);
    }
}
