//! The coupled event-driven simulator.
//!
//! Reproduces the evaluation vehicle of §V-A: Qsim (the event-driven
//! simulator shipped with Cobalt) "extended … to support multi-domain
//! coscheduling simulation". Both machines' resource managers run inside
//! one deterministic event loop; coordination between them goes through the
//! protocol vocabulary of `cosched-proto`, so the simulator exercises the
//! same `Run_Job` code path a live deployment uses.
//!
//! Events are job arrivals, job completions, and hold-release timers (the
//! deadlock breaker). Every event triggers a scheduling iteration on its
//! machine; each ready candidate passes through Algorithm 1, which may make
//! protocol calls that start jobs on the *other* machine (the simultaneous
//! pair start).
//!
//! Termination: the loop ends when the event queue drains. If jobs remain
//! unfinished at that point, the run **deadlocked** — exactly the
//! observable the paper reports for hold-hold without the release
//! enhancement ("the job queues on both machines keep growing, but no job
//! can start").

use crate::algorithm::{run_job_traced, Decision, LocalContext};
use crate::config::CoupledConfig;
use crate::registry::MateRegistry;
use cosched_metrics::{JobRecord, MachineSummary};
use cosched_obs::metrics::HistogramSnapshot;
use cosched_obs::trace::RpcKind;
use cosched_obs::{
    Histogram, MetricsRegistry, MetricsSnapshot, NoopObserver, Observer, Phase, PhaseProfiler,
    PhaseSnapshot, SpanKind, TraceEvent, GLOBAL, NO_JOB, NO_SPAN,
};
use cosched_proto::{MateStatus, ProtoError, Request, Response};
use cosched_sched::{JobStatus, Machine, SchedStats};
use cosched_sim::{EventQueue, SimDuration, SimTime};
use cosched_workload::{Job, JobId, Trace};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Events driving the coupled simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// Trace job `idx` arrives at machine `m`.
    Arrival { m: usize, idx: usize },
    /// A running job completes.
    JobEnd { m: usize, job: JobId },
    /// Deadlock-breaker sweep (§IV-E1): periodically force the holding jobs
    /// on machine `m` to release their resources. Releasing *all* holds at
    /// once is what lets freed capacity accumulate so that larger waiting
    /// mates can use it — a per-job timer would free and instantly re-grab
    /// the same nodes, and the circular wait would persist.
    ReleaseSweep { m: usize },
}

/// How the pairs that did synchronize committed their rendezvous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RendezvousCounts {
    /// The second-ready job found its mate *holding* and started it in
    /// place (Algorithm 1, lines 6–9) — the hold scheme's anchor working
    /// as designed.
    pub anchored: usize,
    /// The ready job direct-started its queued mate via `try_start_mate`
    /// (lines 10–15) — the yield scheme's (and unsubmitted-mate) path.
    pub direct: usize,
    /// Pair members started independently (fault tolerance, missed
    /// rendezvous); such pairs are typically not synchronized.
    pub independent: usize,
}

/// Deterministic activity counters for one coupled run: protocol traffic
/// plus Algorithm 1 transitions that do not already have a dedicated report
/// field. Collected unconditionally (no observer needed), so reports are
/// identical whether or not tracing is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct RunStats {
    /// Holds placed (Algorithm 1 lines 16–23, hold scheme).
    pub holds: u64,
    /// Yields taken (yield scheme).
    pub yields: u64,
    /// Hold→yield degradations forced by the held-capacity cap (§IV-E2).
    pub degradations: u64,
    /// Yield→hold escalations forced by the yield cap (§IV-E2).
    pub escalations: u64,
    /// Release sweeps that actually force-released holds (§IV-E1).
    pub release_sweeps: u64,
    /// Protocol requests issued between the two domains.
    pub rpc_calls: u64,
    /// Requests that failed with a transport error (down peer or injected
    /// timeout); the caller falls back to start-normally fault tolerance.
    pub rpc_timeouts: u64,
}

/// Everything a run produces: the deterministic report, the observer (to
/// read back a sink), and the wall-clock profile kept strictly outside the
/// report so same-seed runs stay byte-identical.
pub struct RunArtifacts<O> {
    /// The deterministic simulation outcome.
    pub report: SimulationReport,
    /// The observer handed to [`CoupledSimulation::with_observer`].
    pub observer: O,
    /// Wall-clock phase timings (scheduler iterations, release sweeps,
    /// RPCs). Never folded into `report`.
    pub profile: Vec<PhaseSnapshot>,
    /// Wall-clock latency distribution of in-process protocol calls, in
    /// nanoseconds. Never folded into `report`.
    pub rpc_latency_ns: HistogramSnapshot,
}

/// Outcome of a coupled simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Completed-job records per machine.
    pub records: [Vec<JobRecord>; 2],
    /// Aggregated metrics per machine.
    pub summaries: [MachineSummary; 2],
    /// Final simulation instant (metrics horizon).
    pub horizon: SimTime,
    /// True if the event queue drained with jobs still stuck (the hold-hold
    /// circular wait).
    pub deadlocked: bool,
    /// True if the run hit the `max_events` safety valve.
    pub aborted: bool,
    /// Jobs left unfinished per machine (non-zero only when deadlocked or
    /// aborted).
    pub unfinished: [usize; 2],
    /// How many holds the deadlock breaker force-released.
    pub forced_releases: u64,
    /// |start(a) − start(b)| for every pair in which both jobs completed.
    pub pair_offsets: Vec<SimDuration>,
    /// How the completed pairs committed their rendezvous.
    pub rendezvous: RendezvousCounts,
    /// Total events dispatched.
    pub events: u64,
    /// Largest number of events simultaneously pending in the queue.
    pub queue_high_water: usize,
    /// Events cancelled before dispatch (re-armed sweep timers etc.).
    pub events_cancelled: u64,
    /// Deterministic run activity counters.
    pub stats: RunStats,
    /// Per-machine scheduler activity counters.
    pub sched_stats: [SchedStats; 2],
    /// The counters above plus derived histograms (pair offsets, waits) in
    /// registry form, ready for serialization.
    pub metrics: MetricsSnapshot,
}

impl SimulationReport {
    /// The paper's capability claim: "all the paired jobs start at the same
    /// time with their own mate jobs no matter which one gets ready first".
    pub fn all_pairs_synchronized(&self) -> bool {
        self.pair_offsets.iter().all(|d| d.is_zero())
    }

    /// Largest observed pair start offset (zero when synchronized).
    pub fn max_pair_offset(&self) -> SimDuration {
        self.pair_offsets
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Open-span bookkeeping for causal tracing. Span ids are dense and
/// assigned in emission order from deterministic state only, so same-seed
/// runs produce byte-identical span records. Populated only while the
/// observer is active; with the no-op observer every map stays empty.
#[derive(Debug, Default)]
struct SpanBook {
    /// Last span id handed out (ids start at 1; 0 is [`NO_SPAN`]).
    next: u64,
    /// Pair root spans keyed by (machine-0 member id, machine-1 member id).
    pair_root: HashMap<(u64, u64), u64>,
    /// Which members of each open pair span have started.
    pair_started: HashMap<(u64, u64), [bool; 2]>,
    /// Open hold spans keyed by (machine, job).
    hold: HashMap<(usize, u64), u64>,
    /// Open yield-episode spans keyed by (machine, job).
    yielding: HashMap<(usize, u64), u64>,
}

impl SpanBook {
    fn alloc(&mut self) -> u64 {
        self.next += 1;
        self.next
    }
}

/// The coupled simulator: two machines, one event loop, protocol-mediated
/// coordination.
///
/// Generic over an [`Observer`] receiving the structured trace-event stream;
/// the default [`NoopObserver`] is zero-sized and compiles every tracing
/// path away. Observers are pure consumers: attaching one cannot change the
/// simulation outcome.
pub struct CoupledSimulation<O: Observer = NoopObserver> {
    config: CoupledConfig,
    machines: [Machine; 2],
    jobs: [Vec<Job>; 2],
    registry: MateRegistry,
    queue: EventQueue<Event>,
    now: SimTime,
    events: u64,
    forced_releases: u64,
    /// Fault injection: when false, protocol calls *to* machine `m` fail
    /// with a transport error.
    reachable: [bool; 2],
    /// Fault injection: jobs whose status reads back as `Unknown`
    /// ("the mate job fails alone").
    unknown_status: HashSet<(usize, JobId)>,
    /// Whether a release sweep is currently scheduled per machine. Sweeps
    /// self-re-arm only while holds exist, so the event loop terminates.
    sweep_armed: [bool; 2],
    /// Rendezvous audit: pairs committed via a hold anchor (`StartJob` on a
    /// held mate), keyed by the started job's `(machine, id)`.
    anchored_pairs: HashSet<(usize, JobId)>,
    /// Rendezvous audit: pairs committed via `TryStartMate`.
    direct_pairs: HashSet<(usize, JobId)>,
    /// Fault injection: `GetMateStatus` calls to machine `m` time out, so
    /// the caller sees `MateStatus::Unknown` and starts normally.
    status_timeout: [bool; 2],
    /// Deterministic run counters (always on).
    stats: RunStats,
    /// Wall-clock phase timings; never folded into the report.
    profiler: PhaseProfiler,
    /// Wall-clock in-process RPC latency; never folded into the report.
    rpc_latency: Histogram,
    /// Causal-span bookkeeping; empty unless the observer is active.
    spans: SpanBook,
    observer: O,
}

impl CoupledSimulation {
    /// Build a simulation from a coupled configuration and the two traces.
    ///
    /// # Panics
    /// Panics if a trace's machine id does not match its config slot or the
    /// pairing between the traces is invalid.
    pub fn new(config: CoupledConfig, traces: [Trace; 2]) -> Self {
        Self::with_observer(config, traces, NoopObserver)
    }
}

impl<O: Observer> CoupledSimulation<O> {
    /// Build a simulation whose trace-event stream feeds `observer`.
    ///
    /// # Panics
    /// Panics if a trace's machine id does not match its config slot or the
    /// pairing between the traces is invalid.
    pub fn with_observer(config: CoupledConfig, traces: [Trace; 2], observer: O) -> Self {
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(
                t.machine(),
                config.machines[i].machine,
                "trace {i} targets {}, config expects {}",
                t.machine(),
                config.machines[i].machine
            );
        }
        let registry = MateRegistry::from_traces(&traces[0], &traces[1]);
        let mut machines = [
            Machine::new(config.machines[0].clone()),
            Machine::new(config.machines[1].clone()),
        ];
        if observer.active() {
            for m in &mut machines {
                m.set_tracing(true);
            }
        }
        let [ta, tb] = traces;
        CoupledSimulation {
            config,
            machines,
            jobs: [ta.into_jobs(), tb.into_jobs()],
            registry,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events: 0,
            forced_releases: 0,
            reachable: [true, true],
            unknown_status: HashSet::new(),
            sweep_armed: [false, false],
            anchored_pairs: HashSet::new(),
            direct_pairs: HashSet::new(),
            status_timeout: [false, false],
            stats: RunStats::default(),
            profiler: PhaseProfiler::new(),
            rpc_latency: Histogram::new(),
            spans: SpanBook::default(),
            observer,
        }
    }

    /// Fault injection: make protocol calls to machine `m` fail (simulates
    /// the remote system being down).
    pub fn set_reachable(&mut self, m: usize, up: bool) {
        self.reachable[m] = up;
    }

    /// Fault injection: make `GetMateStatus` calls to machine `m` time out.
    /// Per Algorithm 1 lines 25–26 the caller treats the status as
    /// `Unknown` and starts the ready job normally.
    pub fn inject_status_timeout(&mut self, m: usize, on: bool) {
        self.status_timeout[m] = on;
    }

    /// Construct-then-record helper: skips event construction entirely when
    /// the observer is inactive (the no-op default).
    #[inline]
    fn emit(&mut self, machine: usize, make: impl FnOnce() -> TraceEvent) {
        if self.observer.active() {
            self.observer.record(self.now.as_secs(), machine, make());
        }
    }

    /// Forward trace events the scheduler logged during its last calls,
    /// stamped with the current instant.
    fn drain_machine_trace(&mut self, m: usize) {
        if !self.observer.active() {
            return;
        }
        for ev in self.machines[m].take_trace() {
            self.observer.record(self.now.as_secs(), m, ev);
        }
    }

    /// Canonical pair key for a paired job on machine `m`:
    /// (machine-0 member id, machine-1 member id).
    fn pair_key(&self, m: usize, job: &Job) -> Option<(u64, u64)> {
        let mate = job.mate.as_ref()?;
        Some(if m == 0 {
            (job.id.0, mate.job.0)
        } else {
            (mate.job.0, job.id.0)
        })
    }

    /// Open the pair's root span at the first submit of either member. The
    /// span belongs to no single machine ([`GLOBAL`]): the rendezvous is a
    /// cross-machine lifetime, closed only when both members have started.
    fn span_open_pair(&mut self, m: usize, job: &Job) {
        if !self.observer.active() {
            return;
        }
        let Some(key) = self.pair_key(m, job) else {
            return;
        };
        if self.spans.pair_root.contains_key(&key) {
            return;
        }
        let id = self.spans.alloc();
        self.spans.pair_root.insert(key, id);
        self.spans.pair_started.insert(key, [false, false]);
        self.observer.record(
            self.now.as_secs(),
            GLOBAL,
            TraceEvent::SpanOpen {
                span: id,
                parent: NO_SPAN,
                kind: SpanKind::PairRendezvous,
                job: key.0,
                mate: key.1,
            },
        );
    }

    /// The open pair-root span id for a job on machine `m` ([`NO_SPAN`]
    /// when untraced, unpaired, or already closed).
    fn pair_span_of(&self, m: usize, job: &Job) -> u64 {
        self.pair_key(m, job)
            .and_then(|key| self.spans.pair_root.get(&key).copied())
            .unwrap_or(NO_SPAN)
    }

    /// A job started on machine `m`: close its open yield/hold spans, mark
    /// its pair member as started, and close the pair root span once both
    /// members run.
    fn span_mark_started(&mut self, m: usize, job_id: JobId) {
        if !self.observer.active() {
            return;
        }
        let now = self.now.as_secs();
        if let Some(id) = self.spans.yielding.remove(&(m, job_id.0)) {
            self.observer
                .record(now, m, TraceEvent::SpanClose { span: id });
        }
        if let Some(id) = self.spans.hold.remove(&(m, job_id.0)) {
            self.observer
                .record(now, m, TraceEvent::SpanClose { span: id });
        }
        let Some(key) = self.machines[m]
            .job(job_id)
            .and_then(|job| self.pair_key(m, job))
        else {
            return;
        };
        if let Some(started) = self.spans.pair_started.get_mut(&key) {
            started[m] = true;
            if started[0] && started[1] {
                self.spans.pair_started.remove(&key);
                if let Some(root) = self.spans.pair_root.remove(&key) {
                    self.observer
                        .record(now, GLOBAL, TraceEvent::SpanClose { span: root });
                }
            }
        }
    }

    /// Fault injection: make machine `m` report `Unknown` for `job`'s
    /// status (simulates the mate job failing alone).
    pub fn mark_status_unknown(&mut self, m: usize, job: JobId) {
        self.unknown_status.insert((m, job));
    }

    /// Direct access to a machine (tests and examples).
    pub fn machine(&self, m: usize) -> &Machine {
        &self.machines[m]
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run to completion and build the report, invoking `observer` every
    /// `every` events — for long-run monitoring and diagnosis (the observer
    /// sees the live simulation state through the public accessors).
    pub fn run_observed(
        mut self,
        every: u64,
        mut observer: impl FnMut(&CoupledSimulation<O>),
    ) -> SimulationReport {
        for m in 0..2 {
            for idx in 0..self.jobs[m].len() {
                let t = self.jobs[m][idx].submit;
                self.queue.push(t, Event::Arrival { m, idx });
            }
        }
        let mut aborted = false;
        while let Some(ev) = self.queue.pop() {
            if self.events >= self.config.max_events {
                aborted = true;
                break;
            }
            self.now = ev.time;
            self.events += 1;
            if every > 0 && self.events.is_multiple_of(every) {
                observer(&self);
            }
            self.dispatch(ev.event);
        }
        self.report(aborted).report
    }

    /// Run to completion and build the report.
    pub fn run(self) -> SimulationReport {
        self.run_traced().report
    }

    /// Run to completion, returning the report together with the observer
    /// (to read back an attached sink) and the wall-clock profile.
    pub fn run_traced(mut self) -> RunArtifacts<O> {
        // Seed arrivals.
        for m in 0..2 {
            for idx in 0..self.jobs[m].len() {
                let t = self.jobs[m][idx].submit;
                self.queue.push(t, Event::Arrival { m, idx });
            }
        }
        let mut aborted = false;
        while let Some(ev) = self.queue.pop() {
            if self.events >= self.config.max_events {
                aborted = true;
                break;
            }
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            self.events += 1;
            self.dispatch(ev.event);
        }
        self.report(aborted)
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Arrival { m, idx } => {
                let job = self.jobs[m][idx].clone();
                self.span_open_pair(m, &job);
                self.emit(m, || TraceEvent::JobSubmitted {
                    job: job.id.0,
                    size: job.size,
                    paired: job.mate.is_some(),
                });
                self.machines[m].submit(job, self.now);
                self.iterate(m);
            }
            Event::JobEnd { m, job } => {
                self.emit(m, || TraceEvent::JobEnded { job: job.0 });
                self.machines[m].finish(job, self.now);
                self.iterate(m);
            }
            Event::ReleaseSweep { m } => {
                let sweep_t0 = Instant::now();
                self.sweep_armed[m] = false;
                let Some(period) = self.config.cosched[m].release_period else {
                    return;
                };
                // The release exists to let "other waiting jobs … use the
                // previously held resources" (§IV-E1). If no queued job is
                // blocked by the held nodes, the holds are harmless — keep
                // them (a held job starts the instant its mate is ready,
                // which is the whole point of the hold scheme).
                if !self.holds_block_someone(m) {
                    // Re-check one period from now (not from the oldest
                    // hold, which is already mature — that would spin).
                    if !self.machines[m].held_jobs().is_empty() {
                        self.queue
                            .push(self.now + period, Event::ReleaseSweep { m });
                        self.sweep_armed[m] = true;
                    }
                    return;
                }
                // Release EVERY hold, as one batch ("force the holding jobs
                // to release their resources", §IV-E1). A partial (e.g.
                // age-filtered) release livelocks: hold timestamps stagger
                // across events, each sweep frees only a subset, a large
                // blocked job never sees the full coalesced capacity, and
                // the released jobs instantly re-hold with fresh staggered
                // ages. Only the full batch lets the demoted-last iteration
                // hand the entire held capacity to the waiting jobs first.
                let sweep_span = if self.observer.active() {
                    let id = self.spans.alloc();
                    self.observer.record(
                        self.now.as_secs(),
                        m,
                        TraceEvent::SpanOpen {
                            span: id,
                            parent: NO_SPAN,
                            kind: SpanKind::ReleaseSweep,
                            job: NO_JOB,
                            mate: NO_JOB,
                        },
                    );
                    id
                } else {
                    NO_SPAN
                };
                let held: Vec<JobId> = self.machines[m].held_jobs().to_vec();
                let held_before = held.len();
                for job in held {
                    self.machines[m].release_held(job, self.now);
                    self.forced_releases += 1;
                    self.emit(m, || TraceEvent::CoschedDeadlockDemotion { job: job.0 });
                    // The demotion ends the job's hold interval.
                    if let Some(id) = self.spans.hold.remove(&(m, job.0)) {
                        self.observer.record(
                            self.now.as_secs(),
                            m,
                            TraceEvent::SpanClose { span: id },
                        );
                    }
                }
                self.stats.release_sweeps += 1;
                self.emit(m, || TraceEvent::CoschedReleaseSweep {
                    released: held_before,
                    held_before,
                });
                if sweep_span != NO_SPAN {
                    self.observer.record(
                        self.now.as_secs(),
                        m,
                        TraceEvent::SpanClose { span: sweep_span },
                    );
                }
                self.profiler
                    .record(Phase::ReleaseSweep, elapsed_ns(sweep_t0));
                self.iterate(m);
                // Re-arm for the re-created holds (they all begin at this
                // instant, so the next sweep is one full `period` away).
                self.arm_sweep_if_needed(m);
            }
        }
    }

    /// One scheduling iteration on machine `m`: drain ready candidates
    /// through Algorithm 1.
    fn iterate(&mut self, m: usize) {
        let iter_t0 = Instant::now();
        let (queued, running, free_nodes) = (
            self.machines[m].queued_jobs().len(),
            self.machines[m].running_jobs().len(),
            self.machines[m].free_nodes(),
        );
        self.emit(m, || TraceEvent::SchedIterationStart {
            queued,
            running,
            free_nodes,
        });
        self.machines[m].begin_iteration();
        let mut started = 0usize;
        // Lazily opened at the first mated pick: "a scheduler iteration
        // that touches a mated job" gets its own span.
        let mut iter_span = NO_SPAN;
        while let Some(cand) = self.machines[m].pick_next(self.now) {
            self.drain_machine_trace(m);
            if cand.paired && iter_span == NO_SPAN && self.observer.active() {
                iter_span = self.spans.alloc();
                self.observer.record(
                    self.now.as_secs(),
                    m,
                    TraceEvent::SpanOpen {
                        span: iter_span,
                        parent: NO_SPAN,
                        kind: SpanKind::SchedIteration,
                        job: NO_JOB,
                        mate: NO_JOB,
                    },
                );
            }
            self.emit(m, || TraceEvent::SchedPick {
                job: cand.job_id.0,
                size: cand.size,
                via_backfill: cand.via_backfill,
            });
            let cfg = self.config.cosched[m].clone();
            let job = self.machines[m]
                .job(cand.job_id)
                .expect("candidate exists")
                .clone();
            let ctx = LocalContext {
                job: &job,
                candidate_charged: cand.charged,
                capacity: self.machines[m].config().capacity,
                held_nodes: self.machines[m].held_nodes(),
                yields_so_far: self.machines[m].yields_of(cand.job_id),
            };
            let remote = 1 - m;
            // RPC spans for this decision parent under the pair root (the
            // span context a live transport would carry in its frames).
            let rpc_parent = if self.observer.active() {
                self.pair_span_of(m, &job)
            } else {
                NO_SPAN
            };
            // Algorithm-internal events (§IV-E2 scheme shifts) are staged in
            // a local buffer: the remote-call closure already borrows `self`.
            let mut shifts: Vec<TraceEvent> = Vec::new();
            let decision = {
                let this = &mut *self;
                run_job_traced(
                    &cfg,
                    &ctx,
                    |req| this.remote_call(remote, req, rpc_parent),
                    |ev| shifts.push(ev),
                )
            };
            for ev in shifts {
                match ev {
                    TraceEvent::CoschedHeldCapDegradation { .. } => self.stats.degradations += 1,
                    TraceEvent::CoschedYieldCapEscalation { .. } => self.stats.escalations += 1,
                    _ => {}
                }
                self.emit(m, || ev);
            }
            match decision {
                Decision::Start { mate_started } => {
                    started += 1;
                    if let Some(mate) = mate_started {
                        let anchored = self.anchored_pairs.contains(&(remote, mate));
                        self.emit(m, || TraceEvent::CoschedRendezvousCommit {
                            job: job.id.0,
                            mate: mate.0,
                            anchored,
                        });
                    }
                    self.emit(m, || TraceEvent::CoschedStart {
                        job: job.id.0,
                        with_mate: mate_started.is_some(),
                    });
                    let end = self.machines[m].start(cand, self.now);
                    let id = job.id;
                    self.queue.push(end, Event::JobEnd { m, job: id });
                    self.span_mark_started(m, id);
                }
                Decision::Hold => {
                    self.stats.holds += 1;
                    if self.observer.active() {
                        let parent = self.pair_span_of(m, &job);
                        let id = self.spans.alloc();
                        self.spans.hold.insert((m, job.id.0), id);
                        let mate = job.mate.as_ref().map_or(NO_JOB, |r| r.job.0);
                        self.observer.record(
                            self.now.as_secs(),
                            m,
                            TraceEvent::SpanOpen {
                                span: id,
                                parent,
                                kind: SpanKind::Hold,
                                job: job.id.0,
                                mate,
                            },
                        );
                    }
                    self.emit(m, || TraceEvent::CoschedHoldPlaced {
                        job: job.id.0,
                        nodes: cand.charged,
                    });
                    self.machines[m].hold(cand, self.now);
                }
                Decision::Yield => {
                    self.stats.yields += 1;
                    // A yield episode spans from the first yield to the
                    // job's eventual start; repeated yields stay inside it.
                    if self.observer.active() && !self.spans.yielding.contains_key(&(m, job.id.0)) {
                        let parent = self.pair_span_of(m, &job);
                        let id = self.spans.alloc();
                        self.spans.yielding.insert((m, job.id.0), id);
                        let mate = job.mate.as_ref().map_or(NO_JOB, |r| r.job.0);
                        self.observer.record(
                            self.now.as_secs(),
                            m,
                            TraceEvent::SpanOpen {
                                span: id,
                                parent,
                                kind: SpanKind::YieldWait,
                                job: job.id.0,
                                mate,
                            },
                        );
                    }
                    let yields_so_far = ctx.yields_so_far + 1;
                    self.emit(m, || TraceEvent::CoschedYield {
                        job: job.id.0,
                        yields_so_far,
                    });
                    self.machines[m].yield_job(cand, self.now);
                }
            }
        }
        self.drain_machine_trace(m);
        if iter_span != NO_SPAN {
            self.observer.record(
                self.now.as_secs(),
                m,
                TraceEvent::SpanClose { span: iter_span },
            );
        }
        self.emit(m, || TraceEvent::SchedIterationEnd { started });
        self.arm_sweep_if_needed(m);
        self.profiler
            .record(Phase::SchedulerIteration, elapsed_ns(iter_t0));
    }

    /// Is any queued job on machine `m` blocked by nodes that holds are
    /// sitting on? True when a queued job does not fit now but would fit
    /// (by node count) with the held nodes returned.
    fn holds_block_someone(&self, m: usize) -> bool {
        let held = self.machines[m].held_nodes();
        if held == 0 {
            return false;
        }
        let free = self.machines[m].free_nodes();
        self.machines[m].queued_jobs().iter().any(|&id| {
            let size = self.machines[m].job(id).map_or(0, |j| j.size);
            // Blocked now (by count or by fragmentation) but feasible once
            // the held nodes come back.
            size <= free + held && !self.machines[m].can_fit(size)
        })
    }

    /// Schedule the next release sweep for machine `m` if it has holds and
    /// no sweep pending. The sweep fires when the *oldest* hold reaches the
    /// release period.
    fn arm_sweep_if_needed(&mut self, m: usize) {
        if self.sweep_armed[m] {
            return;
        }
        let Some(period) = self.config.cosched[m].release_period else {
            return;
        };
        let oldest = self.machines[m]
            .held_jobs()
            .iter()
            .filter_map(|&job| self.machines[m].hold_since(job))
            .min();
        if let Some(since) = oldest {
            let at = (since + period).max(self.now);
            self.queue.push(at, Event::ReleaseSweep { m });
            self.sweep_armed[m] = true;
        }
    }

    /// Answer one protocol request against machine `m` — the simulator's
    /// in-process "wire". Starting side effects schedule the corresponding
    /// end events. `parent` is the caller-side span the RPC parents under
    /// (the pair root; [`NO_SPAN`] when untraced or unpaired) — the same
    /// context a live transport carries in its `TracedRequest` frames.
    fn remote_call(
        &mut self,
        m: usize,
        req: &Request,
        parent: u64,
    ) -> Result<Response, ProtoError> {
        let rpc_t0 = Instant::now();
        let kind = rpc_kind(req);
        self.stats.rpc_calls += 1;
        // Caller-side RPC span: opened on the calling machine (1 - m).
        let rpc_span = if self.observer.active() {
            let id = self.spans.alloc();
            self.observer.record(
                self.now.as_secs(),
                1 - m,
                TraceEvent::SpanOpen {
                    span: id,
                    parent,
                    kind: SpanKind::Rpc(kind),
                    job: req_job(req),
                    mate: NO_JOB,
                },
            );
            id
        } else {
            NO_SPAN
        };
        let result = self.remote_call_inner(m, req, rpc_span);
        let nanos = elapsed_ns(rpc_t0);
        self.rpc_latency.record(nanos);
        self.profiler.record(Phase::RpcCall, nanos);
        if result.is_err() {
            self.stats.rpc_timeouts += 1;
            self.emit(m, || TraceEvent::RpcTimeout { kind });
        } else {
            self.emit(m, || TraceEvent::RpcCall { kind, ok: true });
        }
        if rpc_span != NO_SPAN {
            self.observer.record(
                self.now.as_secs(),
                1 - m,
                TraceEvent::SpanClose { span: rpc_span },
            );
        }
        result
    }

    /// `ctx_span` is the caller's RPC span id, as it would arrive in a
    /// `TracedRequest` envelope; the handler's work parents under it.
    fn remote_call_inner(
        &mut self,
        m: usize,
        req: &Request,
        ctx_span: u64,
    ) -> Result<Response, ProtoError> {
        if !self.reachable[m] {
            return Err(ProtoError::Disconnected(format!(
                "machine {m} is down (fault injection)"
            )));
        }
        if self.status_timeout[m] && matches!(req, Request::GetMateStatus { .. }) {
            return Err(ProtoError::Timeout);
        }
        // The request reached the remote: its handler work gets a span
        // parented under the caller's RPC span (context propagation).
        let handler_span = if self.observer.active() {
            let id = self.spans.alloc();
            self.observer.record(
                self.now.as_secs(),
                m,
                TraceEvent::SpanOpen {
                    span: id,
                    parent: ctx_span,
                    kind: SpanKind::RpcHandler(rpc_kind(req)),
                    job: req_job(req),
                    mate: NO_JOB,
                },
            );
            id
        } else {
            NO_SPAN
        };
        let caller_machine = self.config.machines[1 - m].machine;
        let resp = match req {
            Request::GetMateJob { for_job } => {
                Response::MateJob(self.registry.mate_of(caller_machine, *for_job))
            }
            Request::GetMateStatus { job } => {
                if self.unknown_status.contains(&(m, *job)) {
                    Response::MateStatus(MateStatus::Unknown)
                } else {
                    Response::MateStatus(match self.machines[m].status(*job) {
                        JobStatus::Unsubmitted => MateStatus::Unsubmitted,
                        JobStatus::Queued => MateStatus::Queuing,
                        JobStatus::Held => MateStatus::Holding,
                        JobStatus::Running => MateStatus::Running,
                        JobStatus::Finished => MateStatus::Finished,
                    })
                }
            }
            Request::TryStartMate { job } => {
                match self.machines[m].try_start_direct(*job, self.now) {
                    Some(end) => {
                        self.queue.push(end, Event::JobEnd { m, job: *job });
                        self.direct_pairs.insert((m, *job));
                        // Lifecycle event for the remote-started mate: its
                        // own machine never passes it through `iterate`.
                        self.emit(m, || TraceEvent::CoschedStart {
                            job: job.0,
                            with_mate: true,
                        });
                        self.span_mark_started(m, *job);
                        Response::Started(true)
                    }
                    None => Response::Started(false),
                }
            }
            Request::StartJob { job } => {
                // Normal path: the mate is holding. Fall back to a direct
                // start if a release timer raced it back into the queue.
                let started = self.machines[m]
                    .start_held(*job, self.now)
                    .or_else(|| self.machines[m].try_start_direct(*job, self.now));
                match started {
                    Some(end) => {
                        self.queue.push(end, Event::JobEnd { m, job: *job });
                        self.anchored_pairs.insert((m, *job));
                        self.emit(m, || TraceEvent::CoschedStart {
                            job: job.0,
                            with_mate: true,
                        });
                        self.span_mark_started(m, *job);
                        Response::Started(true)
                    }
                    None => Response::Started(false),
                }
            }
            Request::Ping => Response::Pong,
            Request::CanStart { job } => {
                Response::CanStart(self.machines[m].can_start_direct(*job, self.now))
            }
        };
        if handler_span != NO_SPAN {
            self.observer.record(
                self.now.as_secs(),
                m,
                TraceEvent::SpanClose { span: handler_span },
            );
        }
        Ok(resp)
    }

    fn report(mut self, aborted: bool) -> RunArtifacts<O> {
        let horizon = self.now;
        let held_ns = [
            self.machines[0].held_node_seconds(horizon),
            self.machines[1].held_node_seconds(horizon),
        ];
        let unfinished = [
            self.jobs[0].len() - self.machines[0].records().len(),
            self.jobs[1].len() - self.machines[1].records().len(),
        ];
        let records = [
            self.machines[0].take_records(),
            self.machines[1].take_records(),
        ];
        let summaries = [
            MachineSummary::from_records(
                self.config.machines[0].name.clone(),
                &records[0],
                self.config.machines[0].capacity,
                horizon.max(SimTime::from_secs(1)),
                held_ns[0],
            ),
            MachineSummary::from_records(
                self.config.machines[1].name.clone(),
                &records[1],
                self.config.machines[1].capacity,
                horizon.max(SimTime::from_secs(1)),
                held_ns[1],
            ),
        ];
        // Pair start offsets.
        let mut starts: HashMap<(usize, JobId), SimTime> = HashMap::new();
        for (m, recs) in records.iter().enumerate() {
            for r in recs {
                starts.insert((m, r.id), r.start);
            }
        }
        let mid = |machine| usize::from(machine == self.config.machines[1].machine);
        let mut pair_offsets = Vec::new();
        let mut rendezvous = RendezvousCounts::default();
        for ((ma, ja), mate) in self.registry.pairs() {
            if let (Some(&sa), Some(&sb)) = (
                starts.get(&(mid(ma), ja)),
                starts.get(&(mid(mate.machine), mate.job)),
            ) {
                pair_offsets.push(sa.abs_diff(sb));
                let keys = [(mid(ma), ja), (mid(mate.machine), mate.job)];
                if keys.iter().any(|k| self.anchored_pairs.contains(k)) {
                    rendezvous.anchored += 1;
                } else if keys.iter().any(|k| self.direct_pairs.contains(k)) {
                    rendezvous.direct += 1;
                } else {
                    rendezvous.independent += 1;
                }
            }
        }
        pair_offsets.sort();
        let deadlocked = !aborted && (unfinished[0] > 0 || unfinished[1] > 0);
        let sched_stats = [self.machines[0].stats(), self.machines[1].stats()];
        let metrics = build_metrics(
            &self.stats,
            &sched_stats,
            self.forced_releases,
            self.events,
            self.queue.high_water(),
            self.queue.cancelled(),
            &pair_offsets,
            &records,
        );
        let report = SimulationReport {
            records,
            summaries,
            horizon,
            deadlocked,
            aborted,
            unfinished,
            forced_releases: self.forced_releases,
            pair_offsets,
            rendezvous,
            events: self.events,
            queue_high_water: self.queue.high_water(),
            events_cancelled: self.queue.cancelled(),
            stats: self.stats,
            sched_stats,
            metrics,
        };
        let mut observer = self.observer;
        observer.flush();
        RunArtifacts {
            report,
            observer,
            profile: self.profiler.snapshot(),
            rpc_latency_ns: self.rpc_latency.snapshot("rpc.latency_ns"),
        }
    }
}

fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Map a protocol request to its trace-event kind tag.
fn rpc_kind(req: &Request) -> RpcKind {
    match req {
        Request::GetMateJob { .. } => RpcKind::GetMateJob,
        Request::GetMateStatus { .. } => RpcKind::GetMateStatus,
        Request::TryStartMate { .. } => RpcKind::TryStartMate,
        Request::StartJob { .. } => RpcKind::StartJob,
        Request::CanStart { .. } => RpcKind::CanStart,
        Request::Ping => RpcKind::Ping,
    }
}

/// The job a request concerns, for span records ([`NO_JOB`] for probes).
fn req_job(req: &Request) -> u64 {
    match req {
        Request::GetMateJob { for_job } => for_job.0,
        Request::GetMateStatus { job }
        | Request::TryStartMate { job }
        | Request::StartJob { job }
        | Request::CanStart { job } => job.0,
        Request::Ping => NO_JOB,
    }
}

/// Fold the deterministic counters and derived distributions into a
/// [`MetricsSnapshot`]. Everything here is a pure function of simulation
/// state — no wall clock — so identical seeds yield identical snapshots.
#[allow(clippy::too_many_arguments)]
fn build_metrics(
    stats: &RunStats,
    sched: &[SchedStats; 2],
    forced_releases: u64,
    events: u64,
    queue_high_water: usize,
    events_cancelled: u64,
    pair_offsets: &[SimDuration],
    records: &[Vec<JobRecord>; 2],
) -> MetricsSnapshot {
    let mut reg = MetricsRegistry::new();
    reg.set("engine.events_dispatched", events);
    reg.set("engine.queue_high_water", queue_high_water as u64);
    reg.set("engine.events_cancelled", events_cancelled);
    reg.set("cosched.holds", stats.holds);
    reg.set("cosched.yields", stats.yields);
    reg.set("cosched.degradations", stats.degradations);
    reg.set("cosched.escalations", stats.escalations);
    reg.set("cosched.release_sweeps", stats.release_sweeps);
    reg.set("cosched.forced_releases", forced_releases);
    reg.set("rpc.calls", stats.rpc_calls);
    reg.set("rpc.timeouts", stats.rpc_timeouts);
    let agg = |f: fn(&SchedStats) -> u64| f(&sched[0]) + f(&sched[1]);
    reg.set("sched.iterations", agg(|s| s.iterations));
    reg.set("sched.picks", agg(|s| s.picks));
    reg.set("sched.backfill_hits", agg(|s| s.backfill_hits));
    reg.set("sched.drains_engaged", agg(|s| s.drains_engaged));
    reg.set("sched.alloc_fail_capacity", agg(|s| s.alloc_fail_capacity));
    reg.set(
        "sched.alloc_fail_fragmentation",
        agg(|s| s.alloc_fail_fragmentation),
    );
    for d in pair_offsets {
        reg.observe("pair.start_offset_secs", d.as_secs());
    }
    for recs in records {
        for r in recs {
            reg.observe("job.wait_secs", r.wait().as_secs());
        }
    }
    reg.snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoschedConfig, SchemeCombo};
    use cosched_sched::MachineConfig;
    use cosched_sim::SimRng;
    use cosched_workload::{pairing, MachineId};

    fn mk(machine: usize, id: u64, submit: u64, size: u64, runtime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(runtime * 2),
        )
    }

    /// Two tiny flat machines with FCFS.
    fn small_config(combo: SchemeCombo) -> CoupledConfig {
        CoupledConfig {
            machines: [
                MachineConfig::flat("A", MachineId(0), 100),
                MachineConfig::flat("B", MachineId(1), 100),
            ],
            cosched: [
                // The held-fraction cap is cleared: these scenarios hold
                // more than half the machine on purpose (they exercise the
                // breaker, not the cap).
                CoschedConfig::paper(combo.of(0)).with_max_held_fraction(None),
                CoschedConfig::paper(combo.of(1)).with_max_held_fraction(None),
            ],
            max_events: 1_000_000,
        }
    }

    fn paired_traces() -> [Trace; 2] {
        // One pair (job 1 on each machine, submitted 60 s apart) plus an
        // unpaired filler job on each side that keeps the mate busy briefly.
        let mut a = Trace::from_jobs(
            MachineId(0),
            vec![mk(0, 0, 0, 100, 400), mk(0, 1, 50, 30, 300)],
        );
        let mut b = Trace::from_jobs(
            MachineId(1),
            vec![mk(1, 0, 0, 100, 600), mk(1, 1, 110, 30, 300)],
        );
        let n = pairing::pair_by_window(&mut a, &mut b, SimDuration::from_mins(2));
        assert_eq!(n, 2); // (a0,b0) and (a1,b1)
        [a, b]
    }

    #[test]
    fn baseline_runs_all_jobs() {
        let mut cfg = small_config(SchemeCombo::YY);
        cfg.cosched = [CoschedConfig::disabled(), CoschedConfig::disabled()];
        let report = CoupledSimulation::new(cfg, paired_traces()).run();
        assert!(!report.deadlocked);
        assert_eq!(report.records[0].len(), 2);
        assert_eq!(report.records[1].len(), 2);
        // Without coscheduling pairs are NOT generally synchronized.
        assert_eq!(report.pair_offsets.len(), 2);
    }

    #[test]
    fn all_combos_synchronize_pairs() {
        for combo in SchemeCombo::ALL {
            let report = CoupledSimulation::new(small_config(combo), paired_traces()).run();
            assert!(!report.deadlocked, "{} deadlocked", combo.label());
            assert_eq!(report.unfinished, [0, 0], "{} left jobs", combo.label());
            assert_eq!(report.pair_offsets.len(), 2, "{}", combo.label());
            assert!(
                report.all_pairs_synchronized(),
                "{}: offsets {:?}",
                combo.label(),
                report.pair_offsets
            );
        }
    }

    #[test]
    fn hold_scheme_accrues_service_unit_loss() {
        // Machine A holds: its paired job 1 becomes ready while b1 is not
        // yet submitted, so it holds nodes.
        let report = CoupledSimulation::new(small_config(SchemeCombo::HH), paired_traces()).run();
        let lost: f64 = report.summaries[0].lost_node_hours + report.summaries[1].lost_node_hours;
        assert!(lost > 0.0, "expected some held node-hours, got {lost}");
        assert!(report.summaries[0].total_holds + report.summaries[1].total_holds > 0);
    }

    #[test]
    fn yield_scheme_loses_no_service_units() {
        let report = CoupledSimulation::new(small_config(SchemeCombo::YY), paired_traces()).run();
        assert_eq!(report.summaries[0].lost_node_hours, 0.0);
        assert_eq!(report.summaries[1].lost_node_hours, 0.0);
        assert_eq!(
            report.summaries[0].total_holds + report.summaries[1].total_holds,
            0
        );
    }

    /// The Fig. 2 scenario: a1 holds 60 nodes on A waiting for b1; b2 holds
    /// 60 nodes on B waiting for a2; neither mate can ever fit. Without the
    /// release enhancement this deadlocks.
    fn deadlock_traces() -> [Trace; 2] {
        let mut a = Trace::from_jobs(
            MachineId(0),
            vec![mk(0, 1, 0, 60, 1_000), mk(0, 2, 10, 60, 1_000)],
        );
        let mut b = Trace::from_jobs(
            MachineId(1),
            vec![mk(1, 2, 0, 60, 1_000), mk(1, 1, 10, 60, 1_000)],
        );
        // Pair a1↔b1 and a2↔b2 explicitly.
        use cosched_workload::MateRef;
        a.jobs_mut()[0].mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(1),
        });
        b.jobs_mut()[1].mate = Some(MateRef {
            machine: MachineId(0),
            job: JobId(1),
        });
        a.jobs_mut()[1].mate = Some(MateRef {
            machine: MachineId(1),
            job: JobId(2),
        });
        b.jobs_mut()[0].mate = Some(MateRef {
            machine: MachineId(0),
            job: JobId(2),
        });
        [a, b]
    }

    #[test]
    fn hold_hold_without_breaker_deadlocks() {
        let mut cfg = small_config(SchemeCombo::HH);
        cfg.cosched[0].release_period = None;
        cfg.cosched[1].release_period = None;
        let report = CoupledSimulation::new(cfg, deadlock_traces()).run();
        assert!(report.deadlocked, "expected deadlock");
        assert!(report.unfinished[0] > 0 && report.unfinished[1] > 0);
        assert_eq!(report.forced_releases, 0);
    }

    #[test]
    fn hold_hold_with_breaker_completes() {
        let report = CoupledSimulation::new(small_config(SchemeCombo::HH), deadlock_traces()).run();
        assert!(
            !report.deadlocked,
            "breaker should resolve the circular wait"
        );
        assert_eq!(report.unfinished, [0, 0]);
        assert!(report.forced_releases > 0, "breaker must have fired");
        assert!(report.all_pairs_synchronized());
    }

    #[test]
    fn remote_down_starts_jobs_normally() {
        let mut sim = CoupledSimulation::new(small_config(SchemeCombo::HH), paired_traces());
        sim.set_reachable(1, false);
        let report = sim.run();
        assert!(!report.deadlocked);
        assert_eq!(
            report.records[0].len(),
            2,
            "machine 0 proceeds despite dead peer"
        );
        // Pairs cannot be synchronized with a dead peer — but nothing hangs.
        assert_eq!(report.unfinished[0], 0);
    }

    #[test]
    fn unknown_mate_status_starts_normally() {
        let mut sim = CoupledSimulation::new(small_config(SchemeCombo::HH), paired_traces());
        sim.mark_status_unknown(1, JobId(0));
        sim.mark_status_unknown(1, JobId(1));
        let report = sim.run();
        assert!(!report.deadlocked);
        assert_eq!(report.unfinished, [0, 0]);
        assert_eq!(
            report.summaries[0].total_holds, 0,
            "unknown status must not cause holding"
        );
    }

    #[test]
    fn rendezvous_audit_classifies_paths() {
        // HH on the paired_traces scenario: pair (a0,b0) resolves through
        // b0 finding a0 HOLDING (anchored); pair (a1,b1) likewise. See the
        // trace walk in `all_combos_synchronize_pairs`.
        let report = CoupledSimulation::new(small_config(SchemeCombo::HH), paired_traces()).run();
        assert_eq!(report.rendezvous.anchored, 2, "{:?}", report.rendezvous);
        assert_eq!(report.rendezvous.independent, 0);

        // YY: a0 yields, then b0 direct-starts it (TryStartMate) — every
        // pair commits through the direct path.
        let report = CoupledSimulation::new(small_config(SchemeCombo::YY), paired_traces()).run();
        assert_eq!(report.rendezvous.direct, 2, "{:?}", report.rendezvous);
        assert_eq!(report.rendezvous.anchored, 0);

        // Dead remote: machine-0 pairs start independently.
        let mut sim = CoupledSimulation::new(small_config(SchemeCombo::HH), paired_traces());
        sim.set_reachable(1, false);
        let report = sim.run();
        assert_eq!(report.rendezvous.anchored, 0, "{:?}", report.rendezvous);
    }

    #[test]
    fn determinism_same_input_same_report() {
        let r1 = CoupledSimulation::new(small_config(SchemeCombo::HY), paired_traces()).run();
        let r2 = CoupledSimulation::new(small_config(SchemeCombo::HY), paired_traces()).run();
        assert_eq!(r1.records, r2.records);
        assert_eq!(r1.events, r2.events);
        assert_eq!(r1.pair_offsets, r2.pair_offsets);
        assert_eq!(r1.metrics, r2.metrics);
        assert_eq!(r1.stats, r2.stats);
    }

    #[test]
    fn traced_run_is_pure_observation() {
        use cosched_obs::{SinkObserver, VecSink};
        let plain = CoupledSimulation::new(small_config(SchemeCombo::HH), paired_traces()).run();
        let arts = CoupledSimulation::with_observer(
            small_config(SchemeCombo::HH),
            paired_traces(),
            SinkObserver::new(VecSink::default()),
        )
        .run_traced();
        // Attaching an observer must not change any deterministic output.
        assert_eq!(arts.report.records, plain.records);
        assert_eq!(arts.report.events, plain.events);
        assert_eq!(arts.report.stats, plain.stats);
        assert_eq!(arts.report.sched_stats, plain.sched_stats);
        assert_eq!(arts.report.metrics, plain.metrics);
        assert!(plain.stats.holds > 0, "HH scenario places holds");
        assert!(plain.stats.rpc_calls > 0);
        assert_eq!(plain.metrics.counter("cosched.holds"), plain.stats.holds);

        let kinds: HashSet<&str> = arts
            .observer
            .sink()
            .records
            .iter()
            .map(|r| r.event.kind())
            .collect();
        for expected in [
            "sched-iteration-start",
            "sched-iteration-end",
            "sched-pick",
            "cosched-hold-placed",
            "cosched-rendezvous-commit",
            "cosched-start",
            "rpc-call",
        ] {
            assert!(kinds.contains(expected), "missing {expected}: {kinds:?}");
        }
        // Records arrive in nondecreasing sim time.
        let times: Vec<u64> = arts
            .observer
            .sink()
            .records
            .iter()
            .map(|r| r.time)
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "trace times out of order"
        );
    }

    #[test]
    fn injected_status_timeout_starts_normally_and_counts() {
        let mut sim = CoupledSimulation::new(small_config(SchemeCombo::HH), paired_traces());
        sim.inject_status_timeout(1, true);
        let report = sim.run();
        assert!(!report.deadlocked);
        assert_eq!(report.unfinished[0], 0, "timeouts must not wedge machine 0");
        assert!(
            report.stats.rpc_timeouts > 0,
            "timeouts counted: {:?}",
            report.stats
        );
        assert_eq!(
            report.metrics.counter("rpc.timeouts"),
            report.stats.rpc_timeouts
        );
    }

    #[test]
    fn max_events_aborts_cleanly() {
        let mut cfg = small_config(SchemeCombo::YY);
        cfg.max_events = 3;
        let report = CoupledSimulation::new(cfg, paired_traces()).run();
        assert!(report.aborted);
        assert!(
            !report.deadlocked,
            "aborted runs are not reported as deadlock"
        );
    }

    #[test]
    fn larger_random_workload_all_combos_synchronize() {
        use cosched_workload::{MachineModel, TraceGenerator};
        let rng = SimRng::seed_from_u64(42);
        for combo in SchemeCombo::ALL {
            let mut a = TraceGenerator::new(
                MachineModel::eureka().with_runtime(1_200.0, 1.0),
                MachineId(0),
            )
            .span(SimDuration::from_days(2))
            .target_utilization(0.6)
            .generate(&mut rng.fork(1));
            let mut b = TraceGenerator::new(
                MachineModel::eureka().with_runtime(1_200.0, 1.0),
                MachineId(1),
            )
            .span(SimDuration::from_days(2))
            .target_utilization(0.6)
            .generate(&mut rng.fork(2));
            let pairs = pairing::pair_exact_proportion(
                &mut a,
                &mut b,
                0.2,
                SimDuration::from_mins(2),
                &mut rng.fork(3),
            );
            assert!(pairs > 5, "workload too small: {pairs} pairs");
            let mut cfg = small_config(combo);
            cfg.machines[0] = MachineConfig::eureka(MachineId(0));
            cfg.machines[0].name = "A".into();
            cfg.machines[1] = MachineConfig::eureka(MachineId(1));
            cfg.machines[1].name = "B".into();
            let report = CoupledSimulation::new(cfg, [a, b]).run();
            assert!(!report.deadlocked, "{} deadlocked", combo.label());
            assert_eq!(report.unfinished, [0, 0], "{}", combo.label());
            assert!(
                report.all_pairs_synchronized(),
                "{}: max offset {}",
                combo.label(),
                report.max_pair_offset()
            );
        }
    }
}
