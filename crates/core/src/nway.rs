//! N-way coscheduling — the paper's §VI future work, realized.
//!
//! "Further, we will examine the possibility of extending our algorithm to
//! support N-way coscheduling on more than two scheduling domains." The
//! motivating NASA hurricane-forecasting workflow runs several coupled
//! models concurrently across heterogeneous machines; a *group* of k jobs
//! on k domains must start simultaneously.
//!
//! The 2-way algorithm generalizes with one addition to the protocol: a
//! non-committing `CanStart` probe ([`cosched_proto::Request::CanStart`]).
//! When a group member becomes
//! ready it queries every other member:
//!
//! * any status unknown / domain unreachable → start normally (the same
//!   fault-tolerance rule as 2-way);
//! * any member already running or finished → the rendezvous is missed,
//!   start normally;
//! * otherwise, if **every** other member is either *holding* or *queued
//!   and startable right now* (`CanStart`), commit the rendezvous: start
//!   the held ones in place, direct-start the queued ones, start locally —
//!   all at the same instant;
//! * otherwise hold or yield per the locally configured scheme, with the
//!   same enhancements and deadlock breaker as the 2-way driver.
//!
//! The check-then-commit sequence is sound because a group has at most one
//! member per machine (enforced by [`GroupRegistry::insert_group`]), so
//! committing one member cannot invalidate another's admission; within the
//! simulator an event dispatch is atomic. Two-phase behaviour in a live
//! deployment degrades to a retry, exactly like the 2-way pump.

use crate::config::{CoschedConfig, Scheme};
use cosched_metrics::{JobRecord, MachineSummary};
use cosched_sched::{JobStatus, Machine, MachineConfig};
use cosched_sim::{EventQueue, SimDuration, SimTime};
use cosched_workload::{Job, JobId, MachineId, MateRef, Trace};
use std::collections::{HashMap, HashSet};

/// Identifies a co-start group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u64);

/// Registry of N-way co-start groups.
#[derive(Debug, Clone, Default)]
pub struct GroupRegistry {
    member_of: HashMap<(MachineId, JobId), GroupId>,
    groups: HashMap<GroupId, Vec<(MachineId, JobId)>>,
}

impl GroupRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a co-start group.
    ///
    /// # Panics
    /// Panics if the group has fewer than two members, two members on the
    /// same machine, or a member already in another group.
    pub fn insert_group(&mut self, id: GroupId, members: Vec<(MachineId, JobId)>) {
        assert!(members.len() >= 2, "a group needs at least two members");
        let mut machines = HashSet::new();
        for &(m, j) in &members {
            assert!(machines.insert(m), "group {id:?} has two members on {m}");
            let prev = self.member_of.insert((m, j), id);
            assert!(prev.is_none(), "{m}/{j} is already in a group");
        }
        self.groups.insert(id, members);
    }

    /// The group a job belongs to, if any.
    pub fn group_of(&self, machine: MachineId, job: JobId) -> Option<GroupId> {
        self.member_of.get(&(machine, job)).copied()
    }

    /// A group's members.
    pub fn members(&self, id: GroupId) -> &[(MachineId, JobId)] {
        self.groups.get(&id).map_or(&[], |v| v.as_slice())
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True if no groups are registered.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Stamp ring mate references onto the traces so per-job records carry
    /// the `paired` flag (each member points at the next member in the
    /// group, cyclically). Purely for metrics; the driver consults the
    /// registry, not the rings.
    ///
    /// # Panics
    /// Panics if a member is missing from its trace.
    pub fn stamp_rings(&self, traces: &mut [Trace]) {
        let index: HashMap<MachineId, usize> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| (t.machine(), i))
            .collect();
        for members in self.groups.values() {
            for (k, &(m, j)) in members.iter().enumerate() {
                let (nm, nj) = members[(k + 1) % members.len()];
                let t = &mut traces[index[&m]];
                let job = t
                    .jobs_mut()
                    .iter_mut()
                    .find(|job| job.id == j)
                    .unwrap_or_else(|| panic!("group member {m}/{j} missing from trace"));
                job.mate = Some(MateRef {
                    machine: nm,
                    job: nj,
                });
            }
        }
    }
}

/// Configuration of an N-machine coupled system.
#[derive(Debug, Clone)]
pub struct NwayConfig {
    /// One resource-manager configuration per machine.
    pub machines: Vec<MachineConfig>,
    /// One local coscheduling configuration per machine.
    pub cosched: Vec<CoschedConfig>,
    /// Event-loop safety valve.
    pub max_events: u64,
}

/// What to do with a ready group member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NDecision {
    /// Start now (rendezvous committed, missed, or job is ungrouped).
    Start,
    /// Wait under the given scheme.
    Wait(Scheme),
}

/// Events of the N-way simulation.
#[derive(Debug, Clone, Copy)]
enum Event {
    Arrival { m: usize, idx: usize },
    JobEnd { m: usize, job: JobId },
    ReleaseSweep { m: usize },
}

/// Outcome of an N-way run.
#[derive(Debug, Clone)]
pub struct NwayReport {
    /// Per-machine records.
    pub records: Vec<Vec<JobRecord>>,
    /// Per-machine summaries.
    pub summaries: Vec<MachineSummary>,
    /// Per-group spread: latest start − earliest start among members.
    pub group_spreads: Vec<SimDuration>,
    /// True if the queue drained with jobs stuck.
    pub deadlocked: bool,
    /// True if `max_events` tripped.
    pub aborted: bool,
    /// Forced hold releases.
    pub forced_releases: u64,
    /// Events dispatched.
    pub events: u64,
    /// Final instant.
    pub horizon: SimTime,
}

impl NwayReport {
    /// Every group started simultaneously.
    pub fn all_groups_synchronized(&self) -> bool {
        self.group_spreads.iter().all(|d| d.is_zero())
    }
}

/// The N-machine coupled simulator.
pub struct NwaySimulation {
    config: NwayConfig,
    machines: Vec<Machine>,
    jobs: Vec<Vec<Job>>,
    registry: GroupRegistry,
    queue: EventQueue<Event>,
    now: SimTime,
    events: u64,
    forced_releases: u64,
    sweep_armed: Vec<bool>,
    /// Machine-id → index.
    index: HashMap<MachineId, usize>,
}

impl NwaySimulation {
    /// Build from config, traces (one per machine, same order), and groups.
    /// Ring mate references are stamped automatically for metrics.
    ///
    /// # Panics
    /// Panics on config/trace arity mismatch or invalid group membership.
    pub fn new(config: NwayConfig, mut traces: Vec<Trace>, registry: GroupRegistry) -> Self {
        assert_eq!(config.machines.len(), traces.len(), "one trace per machine");
        assert_eq!(
            config.machines.len(),
            config.cosched.len(),
            "one cosched config per machine"
        );
        assert!(
            config.machines.len() >= 2,
            "an N-way system needs at least two machines"
        );
        for (cfg, t) in config.machines.iter().zip(&traces) {
            assert_eq!(
                cfg.machine,
                t.machine(),
                "trace order must match machine order"
            );
        }
        registry.stamp_rings(&mut traces);
        let machines: Vec<Machine> = config
            .machines
            .iter()
            .map(|c| Machine::new(c.clone()))
            .collect();
        let index = config
            .machines
            .iter()
            .enumerate()
            .map(|(i, c)| (c.machine, i))
            .collect();
        let n = machines.len();
        NwaySimulation {
            config,
            machines,
            jobs: traces.into_iter().map(Trace::into_jobs).collect(),
            registry,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            events: 0,
            forced_releases: 0,
            sweep_armed: vec![false; n],
            index,
        }
    }

    /// Run to completion.
    pub fn run(mut self) -> NwayReport {
        for m in 0..self.jobs.len() {
            for idx in 0..self.jobs[m].len() {
                let t = self.jobs[m][idx].submit;
                self.queue.push(t, Event::Arrival { m, idx });
            }
        }
        let mut aborted = false;
        while let Some(ev) = self.queue.pop() {
            if self.events >= self.config.max_events {
                aborted = true;
                break;
            }
            self.now = ev.time;
            self.events += 1;
            match ev.event {
                Event::Arrival { m, idx } => {
                    let job = self.jobs[m][idx].clone();
                    self.machines[m].submit(job, self.now);
                    self.iterate(m);
                }
                Event::JobEnd { m, job } => {
                    self.machines[m].finish(job, self.now);
                    self.iterate(m);
                }
                Event::ReleaseSweep { m } => self.sweep(m),
            }
        }
        self.report(aborted)
    }

    fn iterate(&mut self, m: usize) {
        self.machines[m].begin_iteration();
        while let Some(cand) = self.machines[m].pick_next(self.now) {
            let job_id = cand.job_id;
            match self.decide(m, job_id, cand.charged) {
                NDecision::Start => {
                    let end = self.machines[m].start(cand, self.now);
                    self.queue.push(end, Event::JobEnd { m, job: job_id });
                }
                NDecision::Wait(Scheme::Hold) => self.machines[m].hold(cand, self.now),
                NDecision::Wait(Scheme::Yield) => self.machines[m].yield_job(cand, self.now),
            }
        }
        self.arm_sweep_if_needed(m);
    }

    /// Decide the fate of ready job `job` on machine `m`. Starting the
    /// *remote* group members is a side effect of a committed rendezvous;
    /// the local start is the caller's (it owns the candidate).
    fn decide(&mut self, m: usize, job: JobId, charged: u64) -> NDecision {
        let cfg = &self.config.cosched[m];
        if !cfg.enabled {
            return NDecision::Start;
        }
        let Some(gid) = self.registry.group_of(self.config.machines[m].machine, job) else {
            return NDecision::Start;
        };
        let my_machine = self.config.machines[m].machine;
        let others: Vec<(usize, JobId)> = self
            .registry
            .members(gid)
            .iter()
            .filter(|&&(mm, _)| mm != my_machine)
            .map(|&(mm, jj)| (self.index[&mm], jj))
            .collect();

        // Phase 1: check.
        let mut held = Vec::new();
        let mut startable = Vec::new();
        for &(om, oj) in &others {
            match self.machines[om].status(oj) {
                JobStatus::Held => held.push((om, oj)),
                JobStatus::Queued if self.machines[om].can_start_direct(oj, self.now) => {
                    startable.push((om, oj));
                }
                JobStatus::Queued | JobStatus::Unsubmitted => {
                    // Someone is not ready: wait per local scheme (with the
                    // §IV-E2 modifications).
                    return NDecision::Wait(self.effective_scheme(m, job, charged));
                }
                JobStatus::Running | JobStatus::Finished => {
                    // Missed rendezvous: run.
                    return NDecision::Start;
                }
            }
        }
        // Phase 2: commit — every other member is held or startable.
        for (om, oj) in held {
            if let Some(end) = self.machines[om].start_held(oj, self.now) {
                self.queue.push(end, Event::JobEnd { m: om, job: oj });
            }
        }
        for (om, oj) in startable {
            if let Some(end) = self.machines[om].try_start_direct(oj, self.now) {
                self.queue.push(end, Event::JobEnd { m: om, job: oj });
            }
        }
        NDecision::Start
    }

    fn effective_scheme(&self, m: usize, job: JobId, charged: u64) -> Scheme {
        let cfg = &self.config.cosched[m];
        match cfg.scheme {
            Scheme::Hold => {
                if let Some(cap) = cfg.max_held_fraction {
                    let would = (self.machines[m].held_nodes() + charged) as f64
                        / self.config.machines[m].capacity as f64;
                    if would > cap {
                        return Scheme::Yield;
                    }
                }
                Scheme::Hold
            }
            Scheme::Yield => {
                if let Some(max) = cfg.max_yields_before_hold {
                    if self.machines[m].yields_of(job) >= max {
                        return Scheme::Hold;
                    }
                }
                Scheme::Yield
            }
        }
    }

    fn sweep(&mut self, m: usize) {
        self.sweep_armed[m] = false;
        let Some(period) = self.config.cosched[m].release_period else {
            return;
        };
        let held = self.machines[m].held_nodes();
        let free = self.machines[m].free_nodes();
        let blocked = held > 0
            && self.machines[m].queued_jobs().iter().any(|&id| {
                let size = self.machines[m].job(id).map_or(0, |j| j.size);
                size <= free + held && !self.machines[m].can_fit(size)
            });
        if !blocked {
            if !self.machines[m].held_jobs().is_empty() {
                self.queue
                    .push(self.now + period, Event::ReleaseSweep { m });
                self.sweep_armed[m] = true;
            }
            return;
        }
        let matured: Vec<JobId> = self.machines[m]
            .held_jobs()
            .iter()
            .filter(|&&job| {
                self.machines[m]
                    .hold_since(job)
                    .is_some_and(|since| since + period <= self.now)
            })
            .copied()
            .collect();
        for job in matured {
            self.machines[m].release_held(job, self.now);
            self.forced_releases += 1;
        }
        self.iterate(m);
        self.arm_sweep_if_needed(m);
    }

    fn arm_sweep_if_needed(&mut self, m: usize) {
        if self.sweep_armed[m] {
            return;
        }
        let Some(period) = self.config.cosched[m].release_period else {
            return;
        };
        let oldest = self.machines[m]
            .held_jobs()
            .iter()
            .filter_map(|&job| self.machines[m].hold_since(job))
            .min();
        if let Some(since) = oldest {
            let at = (since + period).max(self.now);
            self.queue.push(at, Event::ReleaseSweep { m });
            self.sweep_armed[m] = true;
        }
    }

    fn report(mut self, aborted: bool) -> NwayReport {
        let horizon = self.now.max(SimTime::from_secs(1));
        let n = self.machines.len();
        let mut records = Vec::with_capacity(n);
        let mut summaries = Vec::with_capacity(n);
        let mut unfinished = 0usize;
        for m in 0..n {
            let held_ns = self.machines[m].held_node_seconds(horizon);
            unfinished += self.jobs[m].len() - self.machines[m].records().len();
            let recs = self.machines[m].take_records();
            summaries.push(MachineSummary::from_records(
                self.config.machines[m].name.clone(),
                &recs,
                self.config.machines[m].capacity,
                horizon,
                held_ns,
            ));
            records.push(recs);
        }
        let mut starts: HashMap<(MachineId, JobId), SimTime> = HashMap::new();
        for (m, recs) in records.iter().enumerate() {
            for r in recs {
                starts.insert((self.config.machines[m].machine, r.id), r.start);
            }
        }
        let mut group_spreads = Vec::new();
        for gid in self.registry.groups.keys() {
            let member_starts: Vec<SimTime> = self
                .registry
                .members(*gid)
                .iter()
                .filter_map(|&(mm, jj)| starts.get(&(mm, jj)).copied())
                .collect();
            if member_starts.len() == self.registry.members(*gid).len() {
                let min = member_starts.iter().min().copied().unwrap_or(SimTime::ZERO);
                let max = member_starts.iter().max().copied().unwrap_or(SimTime::ZERO);
                group_spreads.push(max - min);
            }
        }
        group_spreads.sort();
        NwayReport {
            records,
            summaries,
            group_spreads,
            deadlocked: !aborted && unfinished > 0,
            aborted,
            forced_releases: self.forced_releases,
            events: self.events,
            horizon: self.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_workload::Trace;

    fn job(machine: usize, id: u64, submit: u64, size: u64, runtime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::from_secs(submit),
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(runtime * 2),
        )
    }

    fn config(n: usize, scheme: Scheme) -> NwayConfig {
        NwayConfig {
            machines: (0..n)
                .map(|m| MachineConfig::flat(format!("M{m}"), MachineId(m), 100))
                .collect(),
            cosched: (0..n)
                .map(|_| CoschedConfig::paper(scheme).with_max_held_fraction(None))
                .collect(),
            max_events: 1_000_000,
        }
    }

    /// Three machines; a 3-way group plus a filler that delays machine 2.
    fn three_way_traces() -> (Vec<Trace>, GroupRegistry) {
        let mut reg = GroupRegistry::new();
        reg.insert_group(
            GroupId(1),
            vec![
                (MachineId(0), JobId(1)),
                (MachineId(1), JobId(1)),
                (MachineId(2), JobId(1)),
            ],
        );
        let traces = vec![
            Trace::from_jobs(MachineId(0), vec![job(0, 1, 0, 40, 600)]),
            Trace::from_jobs(MachineId(1), vec![job(1, 1, 30, 40, 600)]),
            Trace::from_jobs(
                MachineId(2),
                vec![job(2, 9, 0, 100, 300), job(2, 1, 60, 40, 600)],
            ),
        ];
        (traces, reg)
    }

    #[test]
    fn three_way_group_starts_simultaneously_hold() {
        let (traces, reg) = three_way_traces();
        let report = NwaySimulation::new(config(3, Scheme::Hold), traces, reg).run();
        assert!(!report.deadlocked);
        assert_eq!(report.group_spreads.len(), 1);
        assert!(
            report.all_groups_synchronized(),
            "spread {:?}",
            report.group_spreads
        );
        // Rendezvous gated by machine 2's filler: start at t=300.
        let s0 = report.records[0][0].start;
        assert_eq!(s0, SimTime::from_secs(300));
    }

    #[test]
    fn three_way_group_starts_simultaneously_yield() {
        let (traces, reg) = three_way_traces();
        let report = NwaySimulation::new(config(3, Scheme::Yield), traces, reg).run();
        assert!(!report.deadlocked);
        assert!(
            report.all_groups_synchronized(),
            "spread {:?}",
            report.group_spreads
        );
        assert_eq!(
            report.summaries.iter().map(|s| s.total_holds).sum::<u64>(),
            0
        );
    }

    #[test]
    fn five_way_rendezvous() {
        let n = 5;
        let mut reg = GroupRegistry::new();
        reg.insert_group(
            GroupId(1),
            (0..n).map(|m| (MachineId(m), JobId(1))).collect(),
        );
        let traces: Vec<Trace> = (0..n)
            .map(|m| {
                let mut jobs = vec![job(m, 1, (m as u64) * 40, 30, 500)];
                if m == n - 1 {
                    // Last machine is blocked the longest.
                    jobs.push(job(m, 9, 0, 100, 777));
                }
                Trace::from_jobs(MachineId(m), jobs)
            })
            .collect();
        let report = NwaySimulation::new(config(n, Scheme::Hold), traces, reg).run();
        assert!(!report.deadlocked);
        assert!(
            report.all_groups_synchronized(),
            "spread {:?}",
            report.group_spreads
        );
        for recs in &report.records {
            let r = recs.iter().find(|r| r.id == JobId(1)).unwrap();
            assert_eq!(r.start, SimTime::from_secs(777));
            assert!(r.paired, "ring stamping marks members paired");
        }
    }

    #[test]
    fn ungrouped_jobs_run_normally() {
        let mut reg = GroupRegistry::new();
        reg.insert_group(
            GroupId(1),
            vec![(MachineId(0), JobId(1)), (MachineId(1), JobId(1))],
        );
        let traces = vec![
            Trace::from_jobs(
                MachineId(0),
                vec![job(0, 1, 0, 40, 600), job(0, 2, 5, 10, 100)],
            ),
            Trace::from_jobs(
                MachineId(1),
                vec![job(1, 1, 0, 40, 600), job(1, 2, 5, 10, 100)],
            ),
        ];
        let report = NwaySimulation::new(config(2, Scheme::Hold), traces, reg).run();
        assert!(!report.deadlocked);
        // Ungrouped job 2 on each machine starts at its submit (room free).
        for m in 0..2 {
            let r = report.records[m].iter().find(|r| r.id == JobId(2)).unwrap();
            assert_eq!(r.start, SimTime::from_secs(5));
            assert!(!r.paired);
        }
        assert!(report.all_groups_synchronized());
    }

    #[test]
    fn circular_three_way_deadlock_is_broken_by_sweeps() {
        // Machine i holds for group i whose other member on machine (i+1)%3
        // cannot fit — a 3-cycle of waits.
        let mut reg = GroupRegistry::new();
        for g in 0..3u64 {
            let m0 = g as usize;
            let m1 = (g as usize + 1) % 3;
            reg.insert_group(
                GroupId(g),
                vec![(MachineId(m0), JobId(g)), (MachineId(m1), JobId(g + 10))],
            );
        }
        let traces: Vec<Trace> = (0..3)
            .map(|m| {
                let g_here = m as u64; // holder job of group m
                let g_prev = ((m + 2) % 3) as u64; // waiting member of group m-1
                Trace::from_jobs(
                    MachineId(m),
                    vec![job(m, g_here, 0, 60, 500), job(m, g_prev + 10, 10, 60, 500)],
                )
            })
            .collect();
        // Without the breaker: deadlock.
        let mut cfg = config(3, Scheme::Hold);
        for c in &mut cfg.cosched {
            c.release_period = None;
        }
        let report = NwaySimulation::new(cfg, traces.clone(), reg.clone()).run();
        assert!(
            report.deadlocked,
            "3-cycle must deadlock without the breaker"
        );
        // With it: completes and synchronizes.
        let report = NwaySimulation::new(config(3, Scheme::Hold), traces, reg).run();
        assert!(!report.deadlocked);
        assert!(report.forced_releases > 0);
        assert!(
            report.all_groups_synchronized(),
            "spreads {:?}",
            report.group_spreads
        );
    }

    #[test]
    #[should_panic(expected = "two members on")]
    fn group_rejects_two_members_on_one_machine() {
        let mut reg = GroupRegistry::new();
        reg.insert_group(
            GroupId(1),
            vec![(MachineId(0), JobId(1)), (MachineId(0), JobId(2))],
        );
    }

    #[test]
    #[should_panic(expected = "already in a group")]
    fn group_rejects_double_membership() {
        let mut reg = GroupRegistry::new();
        reg.insert_group(
            GroupId(1),
            vec![(MachineId(0), JobId(1)), (MachineId(1), JobId(1))],
        );
        reg.insert_group(
            GroupId(2),
            vec![(MachineId(0), JobId(1)), (MachineId(2), JobId(1))],
        );
    }

    #[test]
    fn registry_queries() {
        let mut reg = GroupRegistry::new();
        assert!(reg.is_empty());
        reg.insert_group(
            GroupId(7),
            vec![(MachineId(0), JobId(1)), (MachineId(1), JobId(2))],
        );
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.group_of(MachineId(0), JobId(1)), Some(GroupId(7)));
        assert_eq!(reg.group_of(MachineId(1), JobId(2)), Some(GroupId(7)));
        assert_eq!(reg.group_of(MachineId(1), JobId(1)), None);
        assert_eq!(reg.members(GroupId(7)).len(), 2);
        assert!(reg.members(GroupId(99)).is_empty());
    }
}
