//! Algorithm 1 — `Run_Job` — as a pure decision procedure.
//!
//! The paper's core algorithm runs whenever a scheduled (ready) job is about
//! to start. It is *distributed*: `self.xyz` operations act on the local
//! resource manager, `remote.xyz` are protocol calls to the other domain.
//! This module implements the decision logic over an abstract remote-call
//! closure so the event-driven simulator and the live wall-clock endpoint
//! execute byte-for-byte the same algorithm.
//!
//! Mapping to the paper's pseudocode:
//!
//! | lines    | here                                                        |
//! |----------|-------------------------------------------------------------|
//! | 1        | `cfg.enabled` check                                          |
//! | 2–3      | `GetMateJob` call; no mate ⇒ `Decision::Start`               |
//! | 4        | `GetMateStatus` call                                         |
//! | 6–9      | mate `Holding` ⇒ start both (`remote_start_holding` flag)    |
//! | 10–15    | `Queuing`/`Unsubmitted` ⇒ `TryStartMate`; started ⇒ start    |
//! | 16–23    | otherwise hold or yield per the local scheme (+ §IV-E2 mods) |
//! | 25–26    | `Unknown` ⇒ start normally                                   |
//! | 30–31    | remote unreachable / no mate ⇒ start normally                |
//!
//! The §IV-E2 enhancements modify the scheme *at decision time*:
//! a hold that would push the held-node fraction over
//! [`CoschedConfig::max_held_fraction`] becomes a yield, and a yield by a
//! job that has already yielded [`CoschedConfig::max_yields_before_hold`]
//! times becomes a hold.

use crate::config::{CoschedConfig, Scheme};
use cosched_obs::TraceEvent;
use cosched_proto::{MateStatus, ProtoError, Request, Response};
use cosched_workload::{Job, JobId};

/// What the local resource manager should do with the ready job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Start the job now. `mate_started` names the remote mate if the
    /// protocol exchange started it during this decision (for observability
    /// — the remote side effect has already happened).
    Start {
        /// The mate started on the remote domain as part of this decision.
        mate_started: Option<JobId>,
    },
    /// Keep the allocation, wait for the mate (hold scheme).
    Hold,
    /// Release the allocation, let others run (yield scheme).
    Yield,
}

impl Decision {
    /// Plain start with no remote side effect.
    pub const START: Decision = Decision::Start { mate_started: None };
}

/// Local facts the decision needs.
#[derive(Debug, Clone, Copy)]
pub struct LocalContext<'a> {
    /// The ready job.
    pub job: &'a Job,
    /// Nodes the allocator charged for it.
    pub candidate_charged: u64,
    /// Machine capacity.
    pub capacity: u64,
    /// Nodes currently blocked by other held jobs.
    pub held_nodes: u64,
    /// How many times this job has yielded already.
    pub yields_so_far: u32,
}

/// Execute the `Run_Job` decision for a ready job. `remote` issues one
/// protocol call and returns its response; any transport error is treated
/// as "remote system down" and the job starts normally (the fault-tolerance
/// property of §IV-C).
pub fn run_job<R>(cfg: &CoschedConfig, ctx: &LocalContext<'_>, remote: R) -> Decision
where
    R: FnMut(&Request) -> Result<Response, ProtoError>,
{
    run_job_traced(cfg, ctx, remote, |_| {})
}

/// [`run_job`] with a trace hook: `trace` receives a [`TraceEvent`] for each
/// §IV-E2 scheme modification made during this decision (held-capacity
/// degradation, yield-cap escalation). The hook is for observability only —
/// it must not influence the decision.
pub fn run_job_traced<R, T>(
    cfg: &CoschedConfig,
    ctx: &LocalContext<'_>,
    mut remote: R,
    mut trace: T,
) -> Decision
where
    R: FnMut(&Request) -> Result<Response, ProtoError>,
    T: FnMut(TraceEvent),
{
    // Line 1: coscheduling disabled ⇒ run normally (lines 34–36).
    if !cfg.enabled {
        return Decision::START;
    }

    // Line 2: k = remote.get_mate_job(j). Remote down ⇒ start (fault
    // tolerance: "if the remote system is down, line 2 will return nothing
    // so that the ready job will start immediately").
    let mate = match remote(&Request::GetMateJob {
        for_job: ctx.job.id,
    }) {
        Ok(Response::MateJob(Some(mate))) => mate,
        Ok(Response::MateJob(None)) => return Decision::START, // line 30–31
        Ok(_) | Err(_) => return Decision::START,
    };

    // Line 4: mate status.
    let status = match remote(&Request::GetMateStatus { job: mate.job }) {
        Ok(resp) => resp.status(),
        Err(_) => MateStatus::Unknown,
    };

    match status {
        // Lines 6–9: mate is holding — start both immediately.
        MateStatus::Holding => {
            let started = match remote(&Request::StartJob { job: mate.job }) {
                Ok(resp) => resp.started(),
                Err(_) => false,
            };
            // Even if the remote start raced and failed, the local job
            // proceeds: the mate was ready and waiting, and a second
            // rendezvous costs less than deadlocking the local allocation.
            Decision::Start {
                mate_started: started.then_some(mate.job),
            }
        }

        // Lines 10–23: mate is waiting in queue or not submitted yet.
        MateStatus::Queuing | MateStatus::Unsubmitted => {
            let mate_started = match remote(&Request::TryStartMate { job: mate.job }) {
                Ok(resp) => resp.started(),
                Err(_) => false,
            };
            if mate_started {
                // Lines 13–15.
                Decision::Start {
                    mate_started: Some(mate.job),
                }
            } else {
                // Lines 16–23, with the §IV-E2 scheme modifications.
                match effective_scheme(cfg, ctx, &mut trace) {
                    Scheme::Hold => Decision::Hold,
                    Scheme::Yield => Decision::Yield,
                }
            }
        }

        // The mate already runs or finished: the rendezvous is missed (or
        // complete); keeping the local job from running helps nobody.
        MateStatus::Running | MateStatus::Finished => Decision::START,

        // Lines 25–26: status unknown ⇒ start normally.
        MateStatus::Unknown => Decision::START,
    }
}

/// Apply the §IV-E2 enhancements to the configured scheme for this decision,
/// reporting any modification through `trace`.
fn effective_scheme(
    cfg: &CoschedConfig,
    ctx: &LocalContext<'_>,
    trace: &mut impl FnMut(TraceEvent),
) -> Scheme {
    match cfg.scheme {
        Scheme::Hold => {
            if let Some(cap) = cfg.max_held_fraction {
                let would_hold =
                    (ctx.held_nodes + ctx.candidate_charged) as f64 / ctx.capacity as f64;
                if would_hold > cap {
                    trace(TraceEvent::CoschedHeldCapDegradation {
                        job: ctx.job.id.0,
                        held_nodes: ctx.held_nodes,
                        capacity: ctx.capacity,
                    });
                    return Scheme::Yield;
                }
            }
            Scheme::Hold
        }
        Scheme::Yield => {
            if let Some(max) = cfg.max_yields_before_hold {
                if ctx.yields_so_far >= max {
                    trace(TraceEvent::CoschedYieldCapEscalation {
                        job: ctx.job.id.0,
                        yields: ctx.yields_so_far,
                    });
                    return Scheme::Hold;
                }
            }
            Scheme::Yield
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_sim::{SimDuration, SimTime};
    use cosched_workload::{MachineId, MateRef};

    fn job(id: u64, paired: bool) -> Job {
        let j = Job::new(
            JobId(id),
            MachineId(0),
            SimTime::ZERO,
            64,
            SimDuration::from_secs(600),
            SimDuration::from_secs(1200),
        );
        if paired {
            j.with_mate(MateRef {
                machine: MachineId(1),
                job: JobId(id),
            })
        } else {
            j
        }
    }

    fn ctx(job: &Job) -> LocalContext<'_> {
        LocalContext {
            job,
            candidate_charged: 64,
            capacity: 1_000,
            held_nodes: 0,
            yields_so_far: 0,
        }
    }

    /// Scripted remote: answers from a queue, records the requests.
    struct Script {
        responses: Vec<Result<Response, ProtoError>>,
        seen: Vec<Request>,
    }

    impl Script {
        fn new(responses: Vec<Result<Response, ProtoError>>) -> Self {
            Script {
                responses,
                seen: Vec::new(),
            }
        }
        fn remote(&mut self) -> impl FnMut(&Request) -> Result<Response, ProtoError> + '_ {
            move |req| {
                self.seen.push(req.clone());
                self.responses.remove(0)
            }
        }
    }

    fn mate_ref() -> MateRef {
        MateRef {
            machine: MachineId(1),
            job: JobId(1),
        }
    }

    #[test]
    fn disabled_starts_without_any_call() {
        let j = job(1, true);
        let cfg = CoschedConfig::disabled();
        let mut script = Script::new(vec![]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(d, Decision::START);
        assert!(script.seen.is_empty());
    }

    #[test]
    fn no_mate_starts_normally() {
        let j = job(1, false);
        let cfg = CoschedConfig::paper(Scheme::Hold);
        let mut script = Script::new(vec![Ok(Response::MateJob(None))]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(d, Decision::START);
        assert_eq!(script.seen.len(), 1);
    }

    #[test]
    fn remote_down_starts_normally() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold);
        let mut script = Script::new(vec![Err(ProtoError::Timeout)]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(d, Decision::START);
    }

    #[test]
    fn mate_holding_starts_both() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold);
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Holding)),
            Ok(Response::Started(true)),
        ]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(
            d,
            Decision::Start {
                mate_started: Some(JobId(1))
            }
        );
        assert_eq!(
            script.seen,
            vec![
                Request::GetMateJob { for_job: JobId(1) },
                Request::GetMateStatus { job: JobId(1) },
                Request::StartJob { job: JobId(1) },
            ]
        );
    }

    #[test]
    fn mate_queuing_and_startable_starts_both() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Yield);
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Queuing)),
            Ok(Response::Started(true)),
        ]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(
            d,
            Decision::Start {
                mate_started: Some(JobId(1))
            }
        );
    }

    #[test]
    fn mate_queuing_unstartable_follows_local_scheme() {
        for (scheme, expect) in [
            (Scheme::Hold, Decision::Hold),
            (Scheme::Yield, Decision::Yield),
        ] {
            let j = job(1, true);
            let cfg = CoschedConfig::paper(scheme);
            let mut script = Script::new(vec![
                Ok(Response::MateJob(Some(mate_ref()))),
                Ok(Response::MateStatus(MateStatus::Queuing)),
                Ok(Response::Started(false)),
            ]);
            let d = run_job(&cfg, &ctx(&j), script.remote());
            assert_eq!(d, expect, "scheme {scheme:?}");
        }
    }

    #[test]
    fn unsubmitted_mate_behaves_like_queuing() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold);
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Unsubmitted)),
            Ok(Response::Started(false)),
        ]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn unknown_status_starts_normally() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold);
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Unknown)),
        ]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(d, Decision::START);
    }

    #[test]
    fn status_call_failure_starts_normally() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold);
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Err(ProtoError::Disconnected("gone".into())),
        ]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(d, Decision::START);
    }

    #[test]
    fn running_or_finished_mate_starts_normally() {
        for s in [MateStatus::Running, MateStatus::Finished] {
            let j = job(1, true);
            let cfg = CoschedConfig::paper(Scheme::Hold);
            let mut script = Script::new(vec![
                Ok(Response::MateJob(Some(mate_ref()))),
                Ok(Response::MateStatus(s)),
            ]);
            let d = run_job(&cfg, &ctx(&j), script.remote());
            assert_eq!(d, Decision::START, "status {s:?}");
        }
    }

    #[test]
    fn held_fraction_cap_turns_hold_into_yield() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold).with_max_held_fraction(Some(0.10));
        // held 50 + charged 64 = 114 of 1000 > 10 % ⇒ yield.
        let mut c = ctx(&j);
        c.held_nodes = 50;
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Queuing)),
            Ok(Response::Started(false)),
        ]);
        let d = run_job(&cfg, &c, script.remote());
        assert_eq!(d, Decision::Yield);
    }

    #[test]
    fn held_fraction_under_cap_still_holds() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold).with_max_held_fraction(Some(0.20));
        let mut c = ctx(&j);
        c.held_nodes = 50; // 114/1000 ≤ 20 % ⇒ hold
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Queuing)),
            Ok(Response::Started(false)),
        ]);
        let d = run_job(&cfg, &c, script.remote());
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn yield_cap_escalates_to_hold() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Yield).with_max_yields(Some(3));
        let mut c = ctx(&j);
        c.yields_so_far = 3;
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Queuing)),
            Ok(Response::Started(false)),
        ]);
        let d = run_job(&cfg, &c, script.remote());
        assert_eq!(d, Decision::Hold);
    }

    #[test]
    fn yield_below_cap_stays_yield() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Yield).with_max_yields(Some(3));
        let mut c = ctx(&j);
        c.yields_so_far = 2;
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Queuing)),
            Ok(Response::Started(false)),
        ]);
        let d = run_job(&cfg, &c, script.remote());
        assert_eq!(d, Decision::Yield);
    }

    #[test]
    fn holding_mate_with_failed_remote_start_still_starts_local() {
        let j = job(1, true);
        let cfg = CoschedConfig::paper(Scheme::Hold);
        let mut script = Script::new(vec![
            Ok(Response::MateJob(Some(mate_ref()))),
            Ok(Response::MateStatus(MateStatus::Holding)),
            Err(ProtoError::Timeout),
        ]);
        let d = run_job(&cfg, &ctx(&j), script.remote());
        assert_eq!(d, Decision::Start { mate_started: None });
    }
}
