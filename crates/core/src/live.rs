//! Live (wall-clock) deployment wrapper.
//!
//! The simulator validates the mechanism; this module is the shape a real
//! deployment takes — what the paper means by "implemented it in an
//! existing resource manager". A [`LiveDomain`] owns one machine's
//! scheduler, answers the coordination protocol for its peer (plug
//! [`LiveDomain::service`] into [`cosched_proto::tcp::serve`] or an in-proc
//! pair), and drives its own scheduling iterations through the *same*
//! [`run_job`] decision procedure the simulator uses, but across a real
//! [`Transport`].
//!
//! Time is passed in explicitly (any monotonic `SimTime` source), keeping
//! the domain testable and letting examples compress wall-clock time.

use crate::algorithm::{run_job, Decision, LocalContext};
use crate::config::CoschedConfig;
use crate::registry::MateRegistry;
use cosched_metrics::JobRecord;
use cosched_obs::monitor::StreamingMonitor;
use cosched_obs::{Observer, TraceEvent};
use cosched_proto::{DomainService, MateStatus, Request, Response, SpanContext, Transport};
use cosched_sched::{JobStatus, Machine};
use cosched_sim::SimTime;
use cosched_workload::{Job, JobId, MachineId};
use parking_lot::Mutex;
use std::sync::Arc;

struct Inner {
    machine: Machine,
    cfg: CoschedConfig,
    registry: MateRegistry,
    peer: MachineId,
    /// Completion deadlines of started jobs, processed by `complete_due`.
    ends: Vec<(JobId, SimTime)>,
    /// Caller span ids seen on incoming requests (context propagated
    /// through the transport's `TracedRequest` frames) — lets operators
    /// correlate this domain's handler work with the peer's causal spans.
    peer_spans: Vec<u64>,
    /// Attached streaming monitor ([`LiveDomain::attach_telemetry`]); the
    /// daemon reports lifecycle transitions into it so `/metrics`,
    /// `/state`, and alert rules see live domains exactly as they see
    /// simulated ones.
    monitor: Option<StreamingMonitor>,
}

impl Inner {
    /// Report one event into the attached monitor (no-op when detached).
    fn tell(&mut self, now: SimTime, event: TraceEvent) {
        let index = self.machine.config().machine.0;
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.record(now.as_secs(), index, event);
        }
    }
}

/// One scheduling domain of a live coupled system. Cheap to clone (shared
/// state behind a mutex); clones are handles to the same domain.
#[derive(Clone)]
pub struct LiveDomain {
    inner: Arc<Mutex<Inner>>,
}

impl LiveDomain {
    /// Wrap a machine with its local coscheduling config and the pairing
    /// registry. `peer` is the other domain's machine id (used to resolve
    /// incoming `get_mate_job` calls).
    pub fn new(
        machine: Machine,
        cfg: CoschedConfig,
        registry: MateRegistry,
        peer: MachineId,
    ) -> Self {
        LiveDomain {
            inner: Arc::new(Mutex::new(Inner {
                machine,
                cfg,
                registry,
                peer,
                ends: Vec::new(),
                peer_spans: Vec::new(),
                monitor: None,
            })),
        }
    }

    /// Attach a streaming monitor: the domain reports submits, Algorithm 1
    /// transitions (start/hold/yield, forced releases), and completions
    /// into it, and registers its capacity under its machine index. Serve
    /// the same monitor via `cosched_telemetry` to expose the daemon's
    /// `/metrics`, `/healthz`, and `/state`.
    pub fn attach_telemetry(&self, monitor: StreamingMonitor) {
        let mut g = self.inner.lock();
        let config = g.machine.config();
        monitor.set_capacity(config.machine.0, config.capacity);
        g.monitor = Some(monitor);
    }

    /// Submit a job locally.
    pub fn submit(&self, job: Job, now: SimTime) {
        let mut g = self.inner.lock();
        let own = g.machine.config().machine;
        let paired = g.registry.mate_of(own, job.id).is_some();
        let event = TraceEvent::JobSubmitted {
            job: job.id.0,
            size: job.size,
            paired,
        };
        g.machine.submit(job, now);
        g.tell(now, event);
    }

    /// Answer one incoming protocol request at local time `now`.
    pub fn handle(&self, req: Request, now: SimTime) -> Response {
        let mut g = self.inner.lock();
        match req {
            Request::GetMateJob { for_job } => {
                let peer = g.peer;
                Response::MateJob(g.registry.mate_of(peer, for_job))
            }
            Request::GetMateStatus { job } => Response::MateStatus(match g.machine.status(job) {
                JobStatus::Unsubmitted => MateStatus::Unsubmitted,
                JobStatus::Queued => MateStatus::Queuing,
                JobStatus::Held => MateStatus::Holding,
                JobStatus::Running => MateStatus::Running,
                JobStatus::Finished => MateStatus::Finished,
            }),
            Request::TryStartMate { job } => match g.machine.try_start_direct(job, now) {
                Some(end) => {
                    g.ends.push((job, end));
                    g.tell(
                        now,
                        TraceEvent::CoschedStart {
                            job: job.0,
                            with_mate: true,
                        },
                    );
                    Response::Started(true)
                }
                None => Response::Started(false),
            },
            Request::StartJob { job } => {
                let started = g
                    .machine
                    .start_held(job, now)
                    .or_else(|| g.machine.try_start_direct(job, now));
                match started {
                    Some(end) => {
                        g.ends.push((job, end));
                        g.tell(
                            now,
                            TraceEvent::CoschedStart {
                                job: job.0,
                                with_mate: true,
                            },
                        );
                        Response::Started(true)
                    }
                    None => Response::Started(false),
                }
            }
            Request::Ping => Response::Pong,
            Request::CanStart { job } => Response::CanStart(g.machine.can_start_direct(job, now)),
        }
    }

    /// Build a [`DomainService`] for the protocol server, reading time from
    /// `clock` at each request. The service is span-aware: caller span
    /// contexts arriving in request frames are recorded (see
    /// [`LiveDomain::peer_spans`]) before the request is answered.
    pub fn service<C>(&self, clock: C) -> impl DomainService + Send + 'static
    where
        C: Fn() -> SimTime + Send + 'static,
    {
        LiveService {
            domain: self.clone(),
            clock,
        }
    }

    /// Caller span ids observed on incoming requests so far, in arrival
    /// order (non-empty contexts only).
    pub fn peer_spans(&self) -> Vec<u64> {
        self.inner.lock().peer_spans.clone()
    }

    /// Run one local scheduling iteration at `now`, coordinating over
    /// `remote`. Also fires due hold-release timers first.
    ///
    /// The domain lock is **not** held across protocol calls, so two
    /// mutually coupled domains may pump concurrently without deadlocking
    /// the process. A candidate picked but not yet committed reads back as
    /// `Queuing` and rejects `try_start_mate` (fail-closed), so a
    /// simultaneous decision on both sides degrades to a retry — both jobs
    /// hold or yield and re-align at the next iteration — never to a
    /// missed or double start. Call `pump` from one thread per domain.
    pub fn pump<T: Transport>(&self, now: SimTime, remote: &mut T) {
        self.fire_due_releases(now);
        self.inner.lock().machine.begin_iteration();
        loop {
            // Phase 1: pick a candidate and snapshot context under the lock.
            let picked = {
                let mut g = self.inner.lock();
                g.machine.pick_next(now).map(|cand| {
                    let job = g
                        .machine
                        .job(cand.job_id)
                        .expect("candidate exists")
                        .clone();
                    let capacity = g.machine.config().capacity;
                    let held = g.machine.held_nodes();
                    let yields = g.machine.yields_of(cand.job_id);
                    (cand, job, capacity, held, yields, g.cfg.clone())
                })
            };
            let Some((cand, job, capacity, held_nodes, yields_so_far, cfg)) = picked else {
                break;
            };
            // Phase 2: run Algorithm 1 with the lock released.
            let ctx = LocalContext {
                job: &job,
                candidate_charged: cand.charged,
                capacity,
                held_nodes,
                yields_so_far,
            };
            let decision = run_job(&cfg, &ctx, |req| remote.call(req));
            // Phase 3: commit under the lock.
            let mut g = self.inner.lock();
            match decision {
                Decision::Start { mate_started } => {
                    let end = g.machine.start(cand, now);
                    g.ends.push((job.id, end));
                    g.tell(
                        now,
                        TraceEvent::CoschedStart {
                            job: job.id.0,
                            with_mate: mate_started.is_some(),
                        },
                    );
                }
                Decision::Hold => {
                    g.machine.hold(cand, now);
                    g.tell(
                        now,
                        TraceEvent::CoschedHoldPlaced {
                            job: job.id.0,
                            nodes: job.size,
                        },
                    );
                }
                Decision::Yield => {
                    g.machine.yield_job(cand, now);
                    g.tell(
                        now,
                        TraceEvent::CoschedYield {
                            job: job.id.0,
                            yields_so_far: yields_so_far + 1,
                        },
                    );
                }
            }
        }
    }

    /// Force-release holds older than the configured release period.
    fn fire_due_releases(&self, now: SimTime) {
        let mut g = self.inner.lock();
        let Some(period) = g.cfg.release_period else {
            return;
        };
        let due: Vec<JobId> = g
            .machine
            .held_jobs()
            .iter()
            .filter(|&&id| match g.machine.hold_since(id) {
                Some(since) => since + period <= now,
                None => false,
            })
            .copied()
            .collect();
        let held_before = g.machine.held_jobs().len();
        let released = due.len();
        for id in due {
            g.machine.release_held(id, now);
            g.tell(now, TraceEvent::CoschedDeadlockDemotion { job: id.0 });
        }
        if released > 0 {
            g.tell(
                now,
                TraceEvent::CoschedReleaseSweep {
                    released,
                    held_before,
                },
            );
        }
    }

    /// Complete all started jobs whose end time has passed. Returns how many
    /// finished.
    pub fn complete_due(&self, now: SimTime) -> usize {
        let mut g = self.inner.lock();
        let mut due: Vec<(JobId, SimTime)> = Vec::new();
        g.ends.retain(|&(id, end)| {
            if end <= now {
                due.push((id, end));
                false
            } else {
                true
            }
        });
        due.sort_by_key(|&(_, end)| end);
        let n = due.len();
        for (id, end) in due {
            g.machine.finish(id, end);
            g.tell(end, TraceEvent::JobEnded { job: id.0 });
        }
        n
    }

    /// Completed-job records so far.
    pub fn records(&self) -> Vec<JobRecord> {
        self.inner.lock().machine.records().to_vec()
    }

    /// True when no queued, held, or running jobs remain.
    pub fn drained(&self) -> bool {
        self.inner.lock().machine.drained()
    }

    /// Jobs currently held (for observability).
    pub fn held(&self) -> Vec<JobId> {
        self.inner.lock().machine.held_jobs().to_vec()
    }
}

/// The [`DomainService`] returned by [`LiveDomain::service`]: records
/// incoming span contexts, then answers at the clock's current time.
struct LiveService<C> {
    domain: LiveDomain,
    clock: C,
}

impl<C> DomainService for LiveService<C>
where
    C: Fn() -> SimTime + Send + 'static,
{
    fn handle(&mut self, req: Request) -> Response {
        self.domain.handle(req, (self.clock)())
    }

    fn handle_traced(&mut self, req: Request, ctx: SpanContext) -> Response {
        if !ctx.is_none() {
            self.domain.inner.lock().peer_spans.push(ctx.span);
        }
        self.handle(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;
    use cosched_proto::inproc;
    use cosched_sched::MachineConfig;
    use cosched_sim::SimDuration;
    use std::time::Duration;

    fn job(machine: usize, id: u64, size: u64, runtime: u64) -> Job {
        Job::new(
            JobId(id),
            MachineId(machine),
            SimTime::ZERO,
            size,
            SimDuration::from_secs(runtime),
            SimDuration::from_secs(runtime * 2),
        )
    }

    fn registry_with_pair() -> MateRegistry {
        let mut reg = MateRegistry::new();
        reg.insert_pair((MachineId(0), JobId(1)), (MachineId(1), JobId(1)));
        reg
    }

    /// Span contexts carried in request frames reach the domain service.
    #[test]
    fn service_records_peer_span_contexts() {
        let a = LiveDomain::new(
            Machine::new(MachineConfig::flat("A", MachineId(0), 10)),
            CoschedConfig::paper(Scheme::Hold),
            registry_with_pair(),
            MachineId(1),
        );
        let (mut client, server) = inproc::pair(Duration::from_secs(1));
        let svc_domain = a.clone();
        let t = std::thread::spawn(move || {
            let mut svc = svc_domain.service(|| SimTime::ZERO);
            server.serve(&mut svc);
        });
        client
            .call_with(&Request::Ping, SpanContext::new(17))
            .unwrap();
        client.call(&Request::Ping).unwrap(); // empty context: not recorded
        client
            .call_with(
                &Request::GetMateStatus { job: JobId(1) },
                SpanContext::new(21),
            )
            .unwrap();
        drop(client);
        t.join().unwrap();
        assert_eq!(a.peer_spans(), vec![17, 21]);
    }

    /// Two live domains wired over in-proc transports, pumped manually.
    #[test]
    fn live_pair_synchronizes_over_inproc_transport() {
        let a = LiveDomain::new(
            Machine::new(MachineConfig::flat("A", MachineId(0), 10)),
            CoschedConfig::paper(Scheme::Hold),
            registry_with_pair(),
            MachineId(1),
        );
        let b = LiveDomain::new(
            Machine::new(MachineConfig::flat("B", MachineId(1), 10)),
            CoschedConfig::paper(Scheme::Yield),
            registry_with_pair(),
            MachineId(0),
        );

        // Transport A→B.
        let (mut to_b, server_b) = inproc::pair(Duration::from_secs(1));
        let b_svc = b.clone();
        let t_b = std::thread::spawn(move || {
            let mut svc = b_svc.service(|| SimTime::from_secs(0));
            // Serve a handful of calls then exit when client drops.
            server_b.serve(&mut svc);
        });
        // Transport B→A.
        let (mut to_a, server_a) = inproc::pair(Duration::from_secs(1));
        let a_svc = a.clone();
        let t_a = std::thread::spawn(move || {
            let mut svc = a_svc.service(|| SimTime::from_secs(0));
            server_a.serve(&mut svc);
        });

        // Submit the pair: job 1 on A first; A pumps and holds (mate not
        // submitted yet).
        a.submit(job(0, 1, 4, 60), SimTime::ZERO);
        a.pump(SimTime::ZERO, &mut to_b);
        assert_eq!(a.held(), vec![JobId(1)]);

        // Now the mate arrives on B; B pumps, sees A holding, both start.
        b.submit(job(1, 1, 4, 60), SimTime::ZERO);
        b.pump(SimTime::ZERO, &mut to_a);
        assert!(b.held().is_empty());

        // Complete both at t=60.
        let t60 = SimTime::from_secs(60);
        assert_eq!(a.complete_due(t60), 1);
        assert_eq!(b.complete_due(t60), 1);
        let ra = a.records();
        let rb = b.records();
        assert_eq!(ra[0].start, rb[0].start, "pair started simultaneously");
        assert!(a.drained() && b.drained());

        drop(to_b);
        drop(to_a);
        t_a.join().unwrap();
        t_b.join().unwrap();
    }

    /// A monitor attached to live domains sees the same lifecycle the
    /// domains execute: submits, the hold, the synchronized start, ends.
    #[test]
    fn attached_monitor_tracks_live_pair() {
        let monitor = StreamingMonitor::new();
        let a = LiveDomain::new(
            Machine::new(MachineConfig::flat("A", MachineId(0), 10)),
            CoschedConfig::paper(Scheme::Hold),
            registry_with_pair(),
            MachineId(1),
        );
        let b = LiveDomain::new(
            Machine::new(MachineConfig::flat("B", MachineId(1), 10)),
            CoschedConfig::paper(Scheme::Hold),
            registry_with_pair(),
            MachineId(0),
        );
        a.attach_telemetry(monitor.clone());
        b.attach_telemetry(monitor.clone());
        let snap = monitor.snapshot();
        assert_eq!(snap.machines.len(), 2, "capacities registered");
        assert_eq!(snap.machines[0].capacity, 10);

        let (mut to_b, server_b) = inproc::pair(Duration::from_secs(1));
        let b_svc = b.clone();
        let t_b = std::thread::spawn(move || {
            let mut svc = b_svc.service(|| SimTime::ZERO);
            server_b.serve(&mut svc);
        });
        a.submit(job(0, 1, 4, 60), SimTime::ZERO);
        a.pump(SimTime::ZERO, &mut to_b);
        let snap = monitor.snapshot();
        assert_eq!((snap.held, snap.holds_placed), (1, 1), "A holds for mate");

        b.submit(job(1, 1, 4, 60), SimTime::ZERO);
        b.pump(SimTime::ZERO, &mut to_a_stub(&a));
        let snap = monitor.snapshot();
        assert_eq!(snap.running, 2, "pair started on both machines");
        assert_eq!(snap.held, 0);

        let t60 = SimTime::from_secs(60);
        a.complete_due(t60);
        b.complete_due(t60);
        monitor.finish(false);
        let snap = monitor.snapshot();
        assert_eq!(snap.finished, 2);
        assert!(snap.drained() && snap.done && !snap.deadlocked);
        // 4 nodes × 60 s on each machine.
        assert_eq!(snap.machines[0].used_node_seconds, 240);
        assert_eq!(snap.machines[1].used_node_seconds, 240);

        drop(to_b);
        t_b.join().unwrap();
    }

    /// Direct (no thread) transport into domain `a` for tests.
    fn to_a_stub(a: &LiveDomain) -> impl Transport + '_ {
        struct Direct<'d>(&'d LiveDomain);
        impl Transport for Direct<'_> {
            fn call(&mut self, req: &Request) -> Result<Response, cosched_proto::ProtoError> {
                Ok(self.0.handle(req.clone(), SimTime::ZERO))
            }
        }
        Direct(a)
    }

    #[test]
    fn release_timer_fires_in_pump() {
        let a = LiveDomain::new(
            Machine::new(MachineConfig::flat("A", MachineId(0), 10)),
            CoschedConfig::paper(Scheme::Hold)
                .with_release_period(Some(SimDuration::from_mins(20))),
            registry_with_pair(),
            MachineId(1),
        );
        // Remote that always reports the mate queuing but never startable.
        struct Stub;
        impl Transport for Stub {
            fn call(&mut self, req: &Request) -> Result<Response, cosched_proto::ProtoError> {
                Ok(match req {
                    Request::GetMateJob { .. } => {
                        Response::MateJob(Some(cosched_workload::MateRef {
                            machine: MachineId(1),
                            job: JobId(1),
                        }))
                    }
                    Request::GetMateStatus { .. } => Response::MateStatus(MateStatus::Queuing),
                    Request::TryStartMate { .. } => Response::Started(false),
                    _ => Response::Error("unexpected".into()),
                })
            }
        }
        a.submit(job(0, 1, 4, 60), SimTime::ZERO);
        a.pump(SimTime::ZERO, &mut Stub);
        assert_eq!(a.held(), vec![JobId(1)]);
        // Before the period: still held (pump re-holds it after iterating).
        a.pump(SimTime::from_secs(600), &mut Stub);
        assert_eq!(a.held(), vec![JobId(1)]);
        // After the period the release fires; the job re-enters the queue,
        // is picked again, and re-holds (mate still queuing) — but the
        // release demonstrably happened: its hold episode timestamp moved.
        a.pump(SimTime::from_secs(1_300), &mut Stub);
        assert_eq!(a.held(), vec![JobId(1)]);
        let inner_since = {
            let g = a.inner.lock();
            g.machine.hold_since(JobId(1)).unwrap()
        };
        assert_eq!(inner_since, SimTime::from_secs(1_300));
    }

    #[test]
    fn dead_remote_starts_job_normally() {
        let a = LiveDomain::new(
            Machine::new(MachineConfig::flat("A", MachineId(0), 10)),
            CoschedConfig::paper(Scheme::Hold),
            registry_with_pair(),
            MachineId(1),
        );
        struct Dead;
        impl Transport for Dead {
            fn call(&mut self, _req: &Request) -> Result<Response, cosched_proto::ProtoError> {
                Err(cosched_proto::ProtoError::Timeout)
            }
        }
        a.submit(job(0, 1, 4, 60), SimTime::ZERO);
        a.pump(SimTime::ZERO, &mut Dead);
        assert!(
            a.held().is_empty(),
            "fault tolerance: no waiting on a dead peer"
        );
        assert_eq!(a.complete_due(SimTime::from_secs(60)), 1);
        assert!(a.drained());
    }
}
