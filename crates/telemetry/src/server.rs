//! Embedded blocking HTTP/1.1 server for the telemetry endpoints.
//!
//! Deliberately minimal: std `TcpListener`, one serving thread, handled
//! connections closed after each response (`Connection: close`). That is
//! all a scrape target needs, and it keeps the telemetry plane free of
//! external dependencies. Responses are built from a [`TelemetryProvider`]
//! snapshot at request time, so scrapes observe the run mid-flight without
//! synchronizing with it.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Liveness summary served at `/healthz`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// Overall verdict: `false` maps to HTTP 503.
    pub ok: bool,
    /// Short status word: `running`, `drained`, `done`, `deadlocked`.
    pub status: String,
    /// The run has finished.
    pub done: bool,
    /// Every submitted job finished and no work remains queued or held.
    pub drained: bool,
    /// The run ended deadlocked.
    pub deadlocked: bool,
}

impl Health {
    fn to_json(&self) -> String {
        format!(
            "{{\"status\":\"{}\",\"ok\":{},\"done\":{},\"drained\":{},\"deadlocked\":{}}}",
            self.status, self.ok, self.done, self.drained, self.deadlocked
        )
    }
}

/// Source of the three endpoint payloads. Implementations must be cheap
/// enough to call per request and safe to call from the serving thread.
pub trait TelemetryProvider: Send + 'static {
    /// Prometheus 0.0.4 text for `GET /metrics`.
    fn metrics_text(&self) -> String;
    /// JSON document for `GET /state`.
    fn state_json(&self) -> String;
    /// Liveness for `GET /healthz`.
    fn health(&self) -> Health;
}

/// [`TelemetryProvider`] over a shared [`StreamingMonitor`]: the standard
/// wiring for `simulate --telemetry`.
///
/// [`StreamingMonitor`]: cosched_obs::monitor::StreamingMonitor
#[derive(Debug, Clone)]
pub struct MonitorProvider {
    monitor: cosched_obs::monitor::StreamingMonitor,
}

impl MonitorProvider {
    pub fn new(monitor: cosched_obs::monitor::StreamingMonitor) -> Self {
        MonitorProvider { monitor }
    }
}

impl TelemetryProvider for MonitorProvider {
    fn metrics_text(&self) -> String {
        cosched_trace::render_telemetry_prometheus(&self.monitor.snapshot())
    }

    fn state_json(&self) -> String {
        serde_json::to_string(&self.monitor.snapshot()).expect("snapshots always serialize")
    }

    fn health(&self) -> Health {
        let snap = self.monitor.snapshot();
        let drained = snap.drained();
        let status = if snap.deadlocked {
            "deadlocked"
        } else if snap.done {
            if drained {
                "drained"
            } else {
                "done"
            }
        } else {
            "running"
        };
        Health {
            ok: !snap.deadlocked,
            status: status.to_string(),
            done: snap.done,
            drained,
            deadlocked: snap.deadlocked,
        }
    }
}

/// The serving loop's handle: owns the listener thread, shuts down on
/// [`TelemetryServer::shutdown`] or drop.
#[derive(Debug)]
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// start serving `provider` on a background thread.
    pub fn spawn<P: TelemetryProvider>(addr: &str, provider: P) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("cosched-telemetry".to_string())
            .spawn(move || serve(listener, provider, stop_flag))?;
        Ok(TelemetryServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, unblock the listener, and join the serving thread.
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the blocking accept() with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve<P: TelemetryProvider>(listener: TcpListener, provider: P, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        // A stalled client must not wedge the serving loop.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        handle_connection(stream, &provider);
    }
}

fn handle_connection<P: TelemetryProvider>(stream: TcpStream, provider: &P) {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line).is_err() {
        return;
    }
    // Drain headers so well-behaved clients see a clean close.
    let mut header = String::new();
    while reader.read_line(&mut header).is_ok() {
        if header == "\r\n" || header == "\n" || header.is_empty() {
            break;
        }
        header.clear();
    }
    let mut stream = reader.into_inner();
    let response = respond(&request_line, provider);
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Route one request line to a full HTTP response string.
fn respond<P: TelemetryProvider>(request_line: &str, provider: &P) -> String {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return http_response(405, "text/plain; charset=utf-8", "method not allowed\n");
    }
    // Ignore any query string.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => http_response(
            200,
            "text/plain; version=0.0.4; charset=utf-8",
            &provider.metrics_text(),
        ),
        "/state" => http_response(200, "application/json", &provider.state_json()),
        "/healthz" => {
            let health = provider.health();
            let code = if health.ok { 200 } else { 503 };
            http_response(code, "application/json", &health.to_json())
        }
        _ => http_response(404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn http_response(code: u16, content_type: &str, body: &str) -> String {
    let reason = match code {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    };
    format!(
        "HTTP/1.1 {code} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::http_get;
    use cosched_obs::monitor::StreamingMonitor;
    use cosched_obs::trace::TraceEvent;
    use cosched_obs::Observer;

    fn monitor_with_activity() -> StreamingMonitor {
        let mut m = StreamingMonitor::new().with_capacities(&[128]);
        m.record(
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 64,
                paired: false,
            },
        );
        m.record(
            10,
            0,
            TraceEvent::CoschedStart {
                job: 1,
                with_mate: false,
            },
        );
        m
    }

    #[test]
    fn serves_metrics_state_and_healthz() {
        let monitor = monitor_with_activity();
        let mut server =
            TelemetryServer::spawn("127.0.0.1:0", MonitorProvider::new(monitor.clone())).unwrap();
        let addr = server.addr().to_string();

        let (code, body) = http_get(&addr, "/metrics", Duration::from_secs(5)).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("# TYPE cosched_utilization gauge"), "{body}");
        assert!(
            body.contains("cosched_jobs_running{machine=\"0\"} 1"),
            "{body}"
        );

        let (code, body) = http_get(&addr, "/state", Duration::from_secs(5)).unwrap();
        assert_eq!(code, 200);
        let snap: cosched_obs::monitor::TelemetrySnapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(snap.running, 1);

        let (code, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"status\":\"running\""), "{body}");

        let (code, _) = http_get(&addr, "/nope", Duration::from_secs(5)).unwrap();
        assert_eq!(code, 404);

        server.shutdown();
        // Shutdown is idempotent.
        server.shutdown();
    }

    #[test]
    fn healthz_reports_deadlock_as_503() {
        let monitor = monitor_with_activity();
        monitor.finish(true);
        let mut server =
            TelemetryServer::spawn("127.0.0.1:0", MonitorProvider::new(monitor)).unwrap();
        let addr = server.addr().to_string();
        let (code, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!(code, 503);
        assert!(body.contains("\"status\":\"deadlocked\""), "{body}");
        assert!(body.contains("\"ok\":false"), "{body}");
        server.shutdown();
    }

    #[test]
    fn healthz_reports_drained_runs() {
        let mut monitor = monitor_with_activity();
        monitor.record(100, 0, TraceEvent::JobEnded { job: 1 });
        monitor.finish(false);
        let mut server =
            TelemetryServer::spawn("127.0.0.1:0", MonitorProvider::new(monitor)).unwrap();
        let addr = server.addr().to_string();
        let (code, body) = http_get(&addr, "/healthz", Duration::from_secs(5)).unwrap();
        assert_eq!(code, 200);
        assert!(body.contains("\"status\":\"drained\""), "{body}");
        assert!(body.contains("\"drained\":true"), "{body}");
        server.shutdown();
    }
}
