//! Terminal dashboard rendering for `cosched watch`.
//!
//! Pure text-in/text-out over a [`TelemetrySnapshot`] — the watch command
//! clears the screen and reprints on each poll, so rendering stays
//! trivially testable.

use cosched_obs::monitor::TelemetrySnapshot;
use cosched_obs::trace::GLOBAL;
use std::fmt::Write as _;

/// Width of the utilization bars.
const BAR_WIDTH: usize = 24;

/// Render a full dashboard frame: header, run totals, per-machine
/// utilization bars and queue/held tables, rendezvous latency, and active
/// alerts. `source` labels where the snapshot came from (the polled
/// address).
pub fn render_dashboard(snap: &TelemetrySnapshot, source: &str) -> String {
    let mut out = String::new();
    let status = if snap.deadlocked {
        "DEADLOCKED"
    } else if snap.done {
        if snap.drained() {
            "drained"
        } else {
            "done"
        }
    } else {
        "running"
    };
    let _ = writeln!(
        out,
        "cosched watch · {source} · sim {} · {status}",
        fmt_duration(snap.sim_time)
    );
    let _ = writeln!(
        out,
        "jobs: {} running · {} queued · {} held · {}/{} finished",
        snap.running, snap.queued, snap.held, snap.finished, snap.submitted
    );
    let _ = writeln!(
        out,
        "rendezvous: {} pairs · p50 {} · p99 {}    rpc: {} calls · {} timeouts",
        snap.rendezvous_latency.count,
        fmt_duration(snap.rendezvous_p50_secs),
        fmt_duration(snap.rendezvous_p99_secs),
        snap.rpc_calls,
        snap.rpc_timeouts
    );
    let _ = writeln!(
        out,
        "coscheduling: {} holds · {} yields · {} sweeps · {} forced releases",
        snap.holds_placed, snap.yields, snap.deadlock_sweeps, snap.forced_releases
    );
    for m in &snap.machines {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "machine {}  {} {:5.1}% used · {:5.1}% held · cap {}",
            m.index,
            capacity_bar(m.utilization(), m.held_node_proportion(), BAR_WIDTH),
            m.utilization() * 100.0,
            m.held_node_proportion() * 100.0,
            m.capacity
        );
        let _ = writeln!(
            out,
            "  running {:>4} ({} nodes) · queued {:>4} (age {}, high-water {}) · held {:>3} ({} nodes)",
            m.running,
            m.used_nodes,
            m.queued,
            fmt_duration(m.queue_age_secs),
            fmt_duration(m.queue_age_high_water),
            m.held,
            m.held_nodes
        );
    }
    let _ = writeln!(out);
    if snap.active_alerts.is_empty() {
        let _ = writeln!(
            out,
            "alerts: none active ({} raised / {} resolved)",
            snap.alerts_raised_total, snap.alerts_resolved_total
        );
    } else {
        let _ = writeln!(
            out,
            "ALERTS: {} active ({} raised / {} resolved)",
            snap.active_alerts.len(),
            snap.alerts_raised_total,
            snap.alerts_resolved_total
        );
        for a in &snap.active_alerts {
            let scope = if a.machine == GLOBAL {
                "global".to_string()
            } else {
                format!("machine {}", a.machine)
            };
            let _ = writeln!(
                out,
                "  ! {:<24} {:<10} since {:<12} value {:.3}",
                a.rule,
                scope,
                fmt_duration(a.since),
                a.value
            );
        }
    }
    out
}

/// Capacity bar showing nodes in use (`█`) and nodes held (`▒`) against
/// free capacity (`░`), each fraction clamped so the bar never overflows.
fn capacity_bar(used_frac: f64, held_frac: f64, width: usize) -> String {
    let used = (used_frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let held = (held_frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    let used = used.min(width);
    let held = held.min(width - used);
    let mut s = String::with_capacity(width + 2);
    s.push('[');
    for _ in 0..used {
        s.push('█');
    }
    for _ in 0..held {
        s.push('▒');
    }
    for _ in 0..width - used - held {
        s.push('░');
    }
    s.push(']');
    s
}

/// Compact sim-duration formatting: `42s`, `12m30s`, `3h04m`, `2d07h`.
fn fmt_duration(secs: u64) -> String {
    let (d, rem) = (secs / 86_400, secs % 86_400);
    let (h, rem) = (rem / 3_600, rem % 3_600);
    let (m, s) = (rem / 60, rem % 60);
    if d > 0 {
        format!("{d}d{h:02}h")
    } else if h > 0 {
        format!("{h}h{m:02}m")
    } else if m > 0 {
        format!("{m}m{s:02}s")
    } else {
        format!("{s}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::monitor::StreamingMonitor;
    use cosched_obs::trace::TraceEvent;
    use cosched_obs::{AlertRule, Observer};

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_duration(0), "0s");
        assert_eq!(fmt_duration(42), "42s");
        assert_eq!(fmt_duration(750), "12m30s");
        assert_eq!(fmt_duration(11_040), "3h04m");
        assert_eq!(fmt_duration(198_000), "2d07h");
    }

    #[test]
    fn bars_scale_and_clamp() {
        assert_eq!(capacity_bar(0.0, 0.0, 4), "[░░░░]");
        assert_eq!(capacity_bar(0.5, 0.0, 4), "[██░░]");
        assert_eq!(capacity_bar(0.5, 0.25, 4), "[██▒░]");
        assert_eq!(capacity_bar(1.0, 0.0, 4), "[████]");
        assert_eq!(capacity_bar(7.3, 0.0, 4), "[████]");
        assert_eq!(capacity_bar(-1.0, -1.0, 4), "[░░░░]");
        // Held never pushes the bar past capacity.
        assert_eq!(capacity_bar(0.75, 0.75, 4), "[███▒]");
    }

    #[test]
    fn renders_machines_and_alerts() {
        let rule = AlertRule::parse("pressure: held_node_proportion > 0.4").unwrap();
        let mut m = StreamingMonitor::with_rules(vec![rule])
            .with_capacities(&[100, 100])
            .with_tick_secs(60);
        m.record(
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 90,
                paired: true,
            },
        );
        m.record(10, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 90 });
        m.record(120, 1, TraceEvent::EngineDispatch { seq: 1 });
        let text = render_dashboard(&m.snapshot(), "127.0.0.1:9184");
        assert!(text.contains("cosched watch · 127.0.0.1:9184"), "{text}");
        assert!(text.contains("machine 0"), "{text}");
        assert!(text.contains("machine 1"), "{text}");
        assert!(text.contains("ALERTS: 1 active"), "{text}");
        assert!(text.contains("! pressure"), "{text}");
        assert!(
            text.contains('▒'),
            "held bar should be partly filled: {text}"
        );
    }

    #[test]
    fn renders_quiet_runs_without_alert_noise() {
        let m = StreamingMonitor::new();
        let text = render_dashboard(&m.snapshot(), "local");
        assert!(text.contains("alerts: none active"), "{text}");
        assert!(text.contains("running"), "{text}");
    }
}
