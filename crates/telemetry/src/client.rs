//! Tiny blocking HTTP GET client — just enough to poll the telemetry
//! endpoints from `cosched watch`, CI smoke checks, and tests without any
//! external dependency.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Fetch `http://{addr}{path}` and return `(status_code, body)`.
///
/// `addr` is a `host:port` pair (no scheme). The connection uses
/// `Connection: close`, so the body is everything after the header block.
///
/// # Errors
/// A human-readable message on connect/read failures or malformed
/// responses.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> Result<(u16, String), String> {
    let socket_addr = addr
        .to_socket_addrs()
        .map_err(|e| format!("bad address {addr:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("address {addr:?} resolves to nothing"))?;
    let mut stream = TcpStream::connect_timeout(&socket_addr, timeout)
        .map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| format!("set timeout: {e}"))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .map_err(|e| format!("read response: {e}"))?;
    parse_response(&response)
}

/// Split a raw HTTP/1.x response into status code and body.
fn parse_response(response: &str) -> Result<(u16, String), String> {
    let (head, body) = response
        .split_once("\r\n\r\n")
        .or_else(|| response.split_once("\n\n"))
        .ok_or_else(|| "response has no header/body separator".to_string())?;
    let status_line = head.lines().next().unwrap_or("");
    let code = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    Ok((code, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_and_body() {
        let raw = "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\nhello\nworld";
        let (code, body) = parse_response(raw).unwrap();
        assert_eq!(code, 200);
        assert_eq!(body, "hello\nworld");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response("not http").is_err());
        assert!(parse_response("BAD x\r\n\r\nbody").is_err());
    }

    #[test]
    fn connect_to_dead_port_errors() {
        // Bind-then-drop guarantees the port is closed.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let err = http_get(&addr, "/metrics", Duration::from_millis(200)).unwrap_err();
        assert!(err.contains("connect"), "{err}");
    }
}
