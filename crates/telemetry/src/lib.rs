//! Live telemetry plane: serve a running simulation's streaming-monitor
//! state over HTTP and render it for terminals.
//!
//! Three pieces:
//!
//! * [`server`] — a minimal blocking HTTP/1.1 server (std `TcpListener`,
//!   no external deps) answering `GET /metrics` (Prometheus 0.0.4 text),
//!   `GET /healthz` (liveness + drained/deadlocked), and `GET /state`
//!   (JSON [`TelemetrySnapshot`]). Anything implementing
//!   [`TelemetryProvider`] can be served; [`MonitorProvider`] adapts a
//!   [`StreamingMonitor`].
//! * [`client`] — a tiny HTTP GET client for the `cosched watch` command,
//!   CI smoke checks, and tests; same zero-dependency constraint.
//! * [`dashboard`] — renders a [`TelemetrySnapshot`] into a refreshing
//!   terminal dashboard (utilization bars, queue/held tables, active
//!   alerts, rendezvous latency).
//!
//! The plane is strictly read-only with respect to the simulation: the
//! server thread only ever *reads* snapshots from the shared monitor, so
//! attaching `--telemetry` cannot perturb a deterministic run.

pub mod client;
pub mod dashboard;
pub mod server;

pub use client::http_get;
pub use dashboard::render_dashboard;
pub use server::{Health, MonitorProvider, TelemetryProvider, TelemetryServer};

pub use cosched_obs::monitor::{StreamingMonitor, TelemetrySnapshot};
