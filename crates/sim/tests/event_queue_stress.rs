//! Proptest stress test of the cancellable event queue under arbitrary
//! interleavings of push / cancel / pop.
//!
//! A reference model (`BTreeSet<(SimTime, seq)>` of pending events) is
//! driven in lockstep with the real queue, and every observable —
//! `pop` results, `cancel` return values, `len`, `peek_time` — is
//! cross-checked against it at each step. This pins the three invariants
//! the simulation engine leans on:
//!
//! * every pop yields the earliest pending `(time, EventId)` (FIFO within
//!   an instant), regardless of how pushes, cancels and pops interleave —
//!   and a full drain comes out in exact `(time, EventId)` order;
//! * a cancelled event never surfaces from `pop` or `peek_time`, even
//!   when it was lazily left inside the heap;
//! * counters (`len`, `cancelled`) agree with the model at every step.

use std::collections::{BTreeSet, HashMap};

use cosched_sim::{EventQueue, SimTime};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Push an event at this time (seconds).
    Push(u64),
    /// Cancel the k-th id handed out so far (may already be popped or
    /// cancelled — must then be a no-op that reports `false`).
    Cancel(usize),
    /// Pop the earliest pending event.
    Pop,
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..240).prop_map(Op::Push),
            (0usize..512).prop_map(Op::Cancel),
            Just(Op::Pop),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn queue_matches_model_under_interleaved_push_cancel_pop(ops in ops()) {
        let mut q = EventQueue::new();
        // Model: pending events as (time, raw id); `issued` maps every id
        // ever returned by push to its time, popped or not.
        let mut pending: BTreeSet<(SimTime, u64)> = BTreeSet::new();
        let mut issued: Vec<(u64, SimTime)> = Vec::new();
        let mut times: HashMap<u64, SimTime> = HashMap::new();
        let mut ids = Vec::new();
        let mut model_cancelled = 0u64;

        for op in &ops {
            match op {
                Op::Push(secs) => {
                    let t = SimTime::from_secs(*secs);
                    let id = q.push(t, *secs);
                    prop_assert!(
                        !times.contains_key(&id.raw()),
                        "push must hand out fresh ids"
                    );
                    pending.insert((t, id.raw()));
                    issued.push((id.raw(), t));
                    times.insert(id.raw(), t);
                    ids.push(id);
                }
                Op::Cancel(k) => {
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[k % ids.len()];
                    let t = times[&id.raw()];
                    let was_pending = pending.remove(&(t, id.raw()));
                    if was_pending {
                        model_cancelled += 1;
                    }
                    prop_assert_eq!(
                        q.cancel(id),
                        was_pending,
                        "cancel must report whether the event was still pending"
                    );
                }
                Op::Pop => {
                    let expect = pending.iter().next().copied();
                    match (q.pop(), expect) {
                        (None, None) => {}
                        (Some(ev), Some((t, raw))) => {
                            prop_assert_eq!((ev.time, ev.id.raw()), (t, raw),
                                "pop must yield the earliest pending (time, id)");
                            prop_assert_eq!(ev.event, t.as_secs(),
                                "payload must travel with its event");
                            pending.remove(&(t, raw));
                        }
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "pop mismatch: queue {:?}, model {:?}",
                                got.map(|e| (e.time, e.id.raw())),
                                want
                            )));
                        }
                    }
                }
            }
            prop_assert_eq!(q.len(), pending.len(), "len must track the model");
            prop_assert_eq!(q.is_empty(), pending.is_empty());
            prop_assert_eq!(q.cancelled(), model_cancelled);
            prop_assert_eq!(
                q.peek_time(),
                pending.iter().next().map(|&(t, _)| t),
                "peek_time must see through lazily cancelled entries"
            );
        }

        // Drain: everything still pending must come out in exact model
        // order, and nothing else (no cancelled event resurfaces).
        let expected: Vec<(SimTime, u64)> = pending.iter().copied().collect();
        let mut drained = Vec::new();
        while let Some(ev) = q.pop() {
            drained.push((ev.time, ev.id.raw()));
        }
        prop_assert_eq!(drained, expected, "drain must equal the pending model exactly");
        prop_assert!(q.is_empty());
        prop_assert!(q.pop().is_none(), "drained queue must stay empty");

        // The ids handed out are the contiguous sequence 0..pushes, so the
        // (time, EventId) pop order is exactly push order within an instant.
        for (i, &(raw, _)) in issued.iter().enumerate() {
            prop_assert_eq!(raw, i as u64);
        }
    }
}
