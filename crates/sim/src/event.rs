//! Cancellable, deterministic event queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is a monotonically
//! increasing insertion counter, so simultaneous events dispatch in FIFO
//! order. That makes simulations fully deterministic regardless of heap
//! internals. Cancellation is lazy: [`EventQueue::cancel`] marks the event id
//! and [`EventQueue::pop`] silently discards marked entries. Lazy deletion is
//! the standard DES technique for timers that are usually rescheduled (the
//! hold-release timers of the deadlock breaker are exactly that shape).

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The underlying sequence number (stable, deterministic; used as the
    /// event identity in traces).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An event together with its dispatch time and identity.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The handle returned by [`EventQueue::push`].
    pub id: EventId,
    /// The payload.
    pub event: E,
}

struct HeapEntry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    /// Reversed so the `BinaryHeap` max-heap yields the *earliest* entry.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Priority queue of timestamped events with FIFO tie-breaking and lazy
/// cancellation.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    /// Sequence numbers of events that are in the heap and not cancelled.
    /// Membership here is the source of truth for "pending".
    pending: HashSet<u64>,
    next_seq: u64,
    high_water: usize,
    cancelled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
            high_water: 0,
            cancelled: 0,
        }
    }

    /// Schedule `event` to fire at `time`. Returns a handle that can be used
    /// to cancel it. Events pushed for the same instant fire in push order.
    pub fn push(&mut self, time: SimTime, event: E) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { time, seq, event });
        self.pending.insert(seq);
        self.high_water = self.high_water.max(self.pending.len());
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (i.e. not yet popped or cancelled). Cancelling an
    /// already-fired or already-cancelled event is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let removed = self.pending.remove(&id.0);
        if removed {
            self.cancelled += 1;
        }
        removed
    }

    /// Remove and return the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // was cancelled; discard lazily
            }
            return Some(ScheduledEvent {
                time: entry.time,
                id: EventId(entry.seq),
                event: entry.event,
            });
        }
        None
    }

    /// The dispatch time of the earliest pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Purge cancelled entries off the top so the answer is accurate.
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no pending events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Largest number of events ever simultaneously pending (throughput /
    /// memory diagnostics; surfaced in `SimulationReport`).
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total events cancelled over the queue's lifetime.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_fire_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.event).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_rejected() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventId(42)));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), "a");
        q.push(t(9), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.pop().unwrap().event, "b");
    }

    #[test]
    fn len_tracks_pushes_pops_and_cancels() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        q.push(t(3), 3);
        assert_eq!(q.len(), 3);
        q.cancel(a);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn high_water_and_cancel_counters_track_lifetime() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        q.push(t(3), 3);
        assert_eq!(q.high_water(), 3);
        q.cancel(a);
        q.cancel(a); // double cancel must not double count
        assert_eq!(q.cancelled(), 1);
        q.pop();
        q.pop();
        // Draining does not lower the high-water mark.
        assert_eq!(q.high_water(), 3);
        q.push(t(4), 4);
        assert_eq!(q.high_water(), 3, "never exceeded 3 pending");
    }

    #[test]
    fn interleaved_push_pop_preserves_global_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(5), 5);
        assert_eq!(q.pop().unwrap().event, 5);
        q.push(t(7), 7);
        q.push(t(6), 6);
        assert_eq!(q.pop().unwrap().event, 6);
        assert_eq!(q.pop().unwrap().event, 7);
        assert_eq!(q.pop().unwrap().event, 10);
    }
}
