//! Simulation clock types.
//!
//! The simulator uses an integer clock with one-second resolution, which is
//! the resolution of the job traces the paper evaluates on (SWF traces and
//! Cobalt logs both record seconds). Integer time keeps the event queue
//! ordering exact — no floating-point comparison pitfalls — and makes
//! simulations bit-reproducible across platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// One second, the base unit of [`SimDuration`].
pub const SECOND: SimDuration = SimDuration(1);
/// Sixty seconds.
pub const MINUTE: SimDuration = SimDuration(60);
/// Sixty minutes.
pub const HOUR: SimDuration = SimDuration(3_600);
/// Twenty-four hours.
pub const DAY: SimDuration = SimDuration(86_400);

/// An absolute instant on the simulation clock, in seconds since the start
/// of the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time, in seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The latest representable instant; useful as an "infinitely far away"
    /// sentinel for reservations.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a count of whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// The number of whole seconds since the epoch.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future (callers comparing submit/start timestamps from traces may
    /// legitimately see equal instants).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier > self`.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Absolute distance between two instants.
    #[inline]
    pub fn abs_diff(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.abs_diff(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400)
    }

    /// Length in whole seconds.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Length in fractional minutes.
    #[inline]
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60.0
    }

    /// Length in fractional hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600.0
    }

    /// Scale by a non-negative factor, rounding to the nearest second.
    /// Panics in debug builds if `factor` is negative or non-finite.
    #[inline]
    pub fn scale(self, factor: f64) -> SimDuration {
        debug_assert!(
            factor.is_finite() && factor >= 0.0,
            "invalid scale factor {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True if this is the zero duration.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Difference between instants; saturates at zero like
    /// [`SimTime::saturating_since`].
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    /// Renders as `DdHHhMMmSSs`, omitting leading zero components,
    /// e.g. `2d03h00m05s`, `47m12s`, `8s`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let days = total / 86_400;
        let hours = (total % 86_400) / 3_600;
        let mins = (total % 3_600) / 60;
        let secs = total % 60;
        if days > 0 {
            write!(f, "{days}d{hours:02}h{mins:02}m{secs:02}s")
        } else if hours > 0 {
            write!(f, "{hours}h{mins:02}m{secs:02}s")
        } else if mins > 0 {
            write!(f, "{mins}m{secs:02}s")
        } else {
            write!(f, "{secs}s")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(40);
        assert_eq!((t + d).as_secs(), 140);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(50);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration(40)));
    }

    #[test]
    fn abs_diff_is_symmetric() {
        let a = SimTime::from_secs(7);
        let b = SimTime::from_secs(19);
        assert_eq!(a.abs_diff(b), b.abs_diff(a));
        assert_eq!(a.abs_diff(b), SimDuration(12));
    }

    #[test]
    fn unit_constructors() {
        assert_eq!(SimDuration::from_mins(20).as_secs(), 1200);
        assert_eq!(SimDuration::from_hours(2).as_secs(), 7200);
        assert_eq!(SimDuration::from_days(30).as_secs(), 2_592_000);
        assert_eq!(MINUTE.as_secs(), 60);
        assert_eq!(HOUR.as_secs(), 3600);
        assert_eq!(DAY.as_secs(), 86_400);
        assert_eq!(SECOND.as_secs(), 1);
    }

    #[test]
    fn scaling_rounds_to_nearest_second() {
        assert_eq!(SimDuration::from_secs(10).scale(1.26).as_secs(), 13);
        assert_eq!(SimDuration::from_secs(10).scale(0.0).as_secs(), 0);
        assert_eq!(SimDuration::from_secs(3).scale(0.5).as_secs(), 2); // 1.5 rounds half away from zero
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_secs(8).to_string(), "8s");
        assert_eq!(SimDuration::from_secs(2832).to_string(), "47m12s");
        assert_eq!(
            SimDuration::from_secs(2 * 86_400 + 3 * 3_600 + 5).to_string(),
            "2d03h00m05s"
        );
        assert_eq!(SimTime::from_secs(61).to_string(), "t+1m01s");
    }

    #[test]
    fn fractional_views() {
        assert_eq!(SimDuration::from_secs(90).as_mins_f64(), 1.5);
        assert_eq!(SimDuration::from_secs(5400).as_hours_f64(), 1.5);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [MINUTE, HOUR, SECOND].into_iter().sum();
        assert_eq!(total.as_secs(), 3661);
    }

    #[test]
    fn saturating_add_at_max() {
        assert_eq!(SimTime::MAX + HOUR, SimTime::MAX);
        assert_eq!(SimDuration::MAX + HOUR, SimDuration::MAX);
    }
}
