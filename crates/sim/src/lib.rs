//! Deterministic discrete-event simulation engine.
//!
//! This crate is the substrate underneath the coscheduling simulator
//! (the role Qsim plays for the Cobalt resource manager in the paper).
//! It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-second simulation clock types,
//! * [`EventQueue`] — a cancellable priority queue of timestamped events with
//!   deterministic FIFO tie-breaking,
//! * [`Engine`] — a small driver that pops events and dispatches them to an
//!   [`EventHandler`],
//! * [`rng`] — seedable, reproducible random-number plumbing,
//! * [`dist`] — the statistical distributions used by the workload
//!   generators (exponential, log-normal, Weibull, discrete histogram).
//!
//! Everything here is deterministic: running the same simulation twice with
//! the same seed produces byte-identical event sequences. That property is
//! relied on by the reproduction harness and asserted by integration tests.

pub mod dist;
pub mod engine;
pub mod event;
pub mod rng;
pub mod time;

pub use engine::{Engine, EventHandler, StepOutcome};
pub use event::{EventId, EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime, DAY, HOUR, MINUTE, SECOND};
