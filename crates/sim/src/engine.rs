//! Minimal event-dispatch driver.
//!
//! [`Engine`] owns the clock and the [`EventQueue`] and hands each event to
//! an [`EventHandler`]. Handlers receive a mutable borrow of the queue so
//! they can schedule follow-on events (job completions, timers, protocol
//! message deliveries). The coupled-simulation driver in `cosched-core` is an
//! `EventHandler` over the union of both machines' event types.

use crate::event::{EventId, EventQueue, ScheduledEvent};
use crate::time::SimTime;
use cosched_obs::trace::GLOBAL;
use cosched_obs::{NoopObserver, Observer, TraceEvent};

/// Implemented by simulation models: reacts to one event at a time.
pub trait EventHandler<E> {
    /// Handle `event` firing at `now`; push any consequences onto `queue`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>);
}

/// What a single [`Engine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// An event was dispatched.
    Dispatched,
    /// The queue was empty; nothing happened.
    Idle,
}

/// Discrete-event simulation driver: a clock plus an event queue.
///
/// Generic over an [`Observer`] that receives dispatch/cancel trace events;
/// the default [`NoopObserver`] is zero-sized and compiles the tracing
/// paths away entirely.
pub struct Engine<E, O: Observer = NoopObserver> {
    now: SimTime,
    queue: EventQueue<E>,
    dispatched: u64,
    observer: O,
}

impl<E, O: Observer + Default> Default for Engine<E, O> {
    fn default() -> Self {
        Self::with_observer(O::default())
    }
}

impl<E> Engine<E> {
    /// A fresh engine at time zero with an empty queue and no tracing.
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
            observer: NoopObserver,
        }
    }
}

impl<E, O: Observer> Engine<E, O> {
    /// A fresh engine emitting dispatch/cancel events into `observer`.
    pub fn with_observer(observer: O) -> Self {
        Engine {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            dispatched: 0,
            observer,
        }
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Consume the engine, returning the observer (to read back a sink).
    pub fn into_observer(self) -> O {
        self.observer
    }

    /// Current simulation time. Never moves backwards.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Mutable access to the queue, for seeding initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.queue
    }

    /// Shared access to the queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.queue
    }

    /// Dispatch the next event, advancing the clock to its timestamp.
    ///
    /// # Panics
    /// Panics if an event was scheduled in the past (a model bug: handlers
    /// must schedule at or after `now`).
    pub fn step<H: EventHandler<E>>(&mut self, handler: &mut H) -> StepOutcome {
        match self.queue.pop() {
            Some(ScheduledEvent { time, event, id }) => {
                assert!(
                    time >= self.now,
                    "event scheduled in the past: {} < {}",
                    time,
                    self.now
                );
                self.now = time;
                self.dispatched += 1;
                self.observer
                    .emit_with(time.as_secs(), GLOBAL, || TraceEvent::EngineDispatch {
                        seq: id.raw(),
                    });
                handler.handle(time, event, &mut self.queue);
                StepOutcome::Dispatched
            }
            None => StepOutcome::Idle,
        }
    }

    /// Cancel a scheduled event, emitting a trace event when it was still
    /// pending. Equivalent to `queue_mut().cancel(id)` plus tracing.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let cancelled = self.queue.cancel(id);
        if cancelled {
            self.observer
                .emit_with(self.now.as_secs(), GLOBAL, || TraceEvent::EngineCancel {
                    seq: id.raw(),
                });
        }
        cancelled
    }

    /// Run until the queue drains.
    pub fn run<H: EventHandler<E>>(&mut self, handler: &mut H) {
        while self.step(handler) == StepOutcome::Dispatched {}
    }

    /// Run until the queue drains or the next event is strictly after
    /// `horizon`. Events at exactly `horizon` are dispatched.
    pub fn run_until<H: EventHandler<E>>(&mut self, handler: &mut H, horizon: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step(handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Toy model: each `Tick(n)` schedules `Tick(n-1)` one second later.
    struct Countdown {
        fired: Vec<(SimTime, u32)>,
    }

    impl EventHandler<u32> for Countdown {
        fn handle(&mut self, now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
            self.fired.push((now, event));
            if event > 0 {
                queue.push(now + SimDuration::from_secs(1), event - 1);
            }
        }
    }

    #[test]
    fn run_drains_chained_events() {
        let mut engine = Engine::new();
        engine.queue_mut().push(SimTime::from_secs(10), 3u32);
        let mut model = Countdown { fired: vec![] };
        engine.run(&mut model);
        assert_eq!(
            model.fired,
            vec![
                (SimTime::from_secs(10), 3),
                (SimTime::from_secs(11), 2),
                (SimTime::from_secs(12), 1),
                (SimTime::from_secs(13), 0),
            ]
        );
        assert_eq!(engine.dispatched(), 4);
        assert_eq!(engine.now(), SimTime::from_secs(13));
    }

    #[test]
    fn step_on_empty_queue_is_idle() {
        let mut engine: Engine<u32> = Engine::new();
        let mut model = Countdown { fired: vec![] };
        assert_eq!(engine.step(&mut model), StepOutcome::Idle);
        assert_eq!(engine.now(), SimTime::ZERO);
    }

    #[test]
    fn run_until_stops_at_horizon_inclusive() {
        let mut engine = Engine::new();
        engine.queue_mut().push(SimTime::from_secs(0), 10u32);
        let mut model = Countdown { fired: vec![] };
        engine.run_until(&mut model, SimTime::from_secs(4));
        // Events at t=0..=4 fire; the t=5 event remains queued.
        assert_eq!(model.fired.len(), 5);
        assert_eq!(engine.queue().len(), 1);
        assert_eq!(engine.now(), SimTime::from_secs(4));
    }

    #[test]
    fn observer_sees_dispatch_and_cancel() {
        use cosched_obs::{SinkObserver, VecSink};

        let mut engine = Engine::with_observer(SinkObserver::new(VecSink::default()));
        engine.queue_mut().push(SimTime::from_secs(1), 2u32);
        let doomed = engine.queue_mut().push(SimTime::from_secs(99), 7u32);
        engine.cancel(doomed);
        let mut model = Countdown { fired: vec![] };
        engine.run(&mut model);
        let records = engine.into_observer().into_sink().records;
        let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
        assert_eq!(
            kinds,
            vec![
                "engine-cancel",
                "engine-dispatch",
                "engine-dispatch",
                "engine-dispatch"
            ]
        );
        assert_eq!(records[0].time, 0, "cancel happened before the clock moved");
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl EventHandler<u32> for Bad {
            fn handle(&mut self, now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
                if event == 1 {
                    // Schedule before `now` — must be caught.
                    queue.push(now - SimDuration::from_secs(5), 2);
                }
            }
        }
        let mut engine = Engine::new();
        engine.queue_mut().push(SimTime::from_secs(10), 1u32);
        let mut model = Bad;
        engine.run(&mut model);
    }
}
