//! Reproducible random-number plumbing.
//!
//! Every stochastic component of the simulator (trace generation, pairing,
//! jitter) draws from a [`SimRng`] derived from a single experiment seed.
//! Substreams are forked with [`SimRng::fork`] so that adding a new consumer
//! of randomness does not perturb the draws seen by existing consumers —
//! a property the paper's "run each case 10 times" methodology needs for
//! clean seed-to-seed comparisons.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 step, used to derive independent substream seeds.
/// (Vigna's standard constants; good avalanche, cheap, and stable across
/// library versions — unlike deriving substreams from the parent generator.)
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable random source with deterministic substream forking.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Construct from an experiment seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent generator for substream `stream`.
    ///
    /// Forking is a pure function of `(seed, stream)`: it does not consume
    /// state from `self`, so components can fork in any order without
    /// affecting each other.
    pub fn fork(&self, stream: u64) -> SimRng {
        let mut state = self.seed ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
        // Two rounds of splitmix to decorrelate adjacent stream ids.
        let s1 = splitmix64(&mut state);
        let _ = splitmix64(&mut state);
        let s2 = splitmix64(&mut state);
        SimRng::seed_from_u64(s1 ^ s2.rotate_left(17))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[0, 1)` that is never exactly zero (safe for `ln`).
    pub fn uniform_pos(&mut self) -> f64 {
        loop {
            let u = self.inner.gen::<f64>();
            if u > 0.0 {
                return u;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    pub fn int_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = SimRng::seed_from_u64(7);
        let mut f1 = root.fork(3);
        // Fork other streams in between; stream 3 must be unaffected.
        let _ = root.fork(1);
        let _ = root.fork(2);
        let mut f2 = root.fork(3);
        for _ in 0..32 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_distinct() {
        let root = SimRng::seed_from_u64(7);
        let mut f1 = root.fork(0);
        let mut f2 = root.fork(1);
        let same = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
            assert!(rng.uniform_pos() > 0.0);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn chance_rate_is_plausible() {
        let mut rng = SimRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.chance(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn int_in_bounds() {
        let mut rng = SimRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = rng.int_in(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(rng.int_in(7, 7), 7);
    }
}
