//! Statistical distributions for workload synthesis.
//!
//! Implemented from first principles on top of [`SimRng`] (inverse-transform
//! and Box–Muller sampling) so the workspace does not need `rand_distr`.
//! These are the distributions classically used for parallel-job workload
//! models: exponential/hyper-exponential interarrivals, log-normal runtimes
//! (Feitelson-style), Weibull for heavy-ish tails, and an empirical discrete
//! histogram for job sizes.

use crate::rng::SimRng;

/// A sampleable one-dimensional distribution over `f64`.
pub trait Distribution {
    /// Draw one sample.
    fn sample(&self, rng: &mut SimRng) -> f64;

    /// The distribution mean, used by generators to calibrate arrival rates
    /// against utilization targets.
    fn mean(&self) -> f64;
}

/// Exponential distribution with the given mean (`rate = 1/mean`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// # Panics
    /// Panics if `mean` is not finite and positive.
    pub fn new(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        Exponential { mean }
    }
}

impl Distribution for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -self.mean * rng.uniform_pos().ln()
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Log-normal distribution parameterised by the underlying normal's
/// `mu` and `sigma` (`X = exp(mu + sigma * Z)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// # Panics
    /// Panics if `sigma` is negative or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(
            mu.is_finite() && sigma.is_finite() && sigma >= 0.0,
            "bad log-normal parameters mu={mu} sigma={sigma}"
        );
        LogNormal { mu, sigma }
    }

    /// Construct from a target mean and coefficient of variation
    /// (`cv = stddev/mean`), the more natural workload-modelling view.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv >= 0.0, "bad mean/cv {mean}/{cv}");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// One standard-normal draw via Box–Muller (the cosine branch; one draw
    /// per call keeps sampling stateless and substream-stable).
    fn std_normal(rng: &mut SimRng) -> f64 {
        let u1 = rng.uniform_pos();
        let u2 = rng.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * Self::std_normal(rng)).exp()
    }
    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }
}

/// Weibull distribution with the given `shape` (k) and `scale` (lambda).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// # Panics
    /// Panics unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0,
            "bad Weibull parameters k={shape} lambda={scale}"
        );
        Weibull { shape, scale }
    }
}

impl Distribution for Weibull {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale * (-rng.uniform_pos().ln()).powf(1.0 / self.shape)
    }
    fn mean(&self) -> f64 {
        self.scale * gamma(1.0 + 1.0 / self.shape)
    }
}

/// Lanczos approximation of the Gamma function, needed for the Weibull mean.
/// Accurate to ~1e-13 over the range used here (arguments in (1, 3]).
fn gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients.
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + 7.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// An empirical discrete distribution: weighted choice over `(value, weight)`
/// buckets. Used for job-size histograms (e.g. the power-of-two partition
/// sizes dominating Blue Gene/P traces).
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteWeighted {
    values: Vec<f64>,
    /// Cumulative weights, normalised so the last entry is 1.0.
    cdf: Vec<f64>,
    mean: f64,
}

impl DiscreteWeighted {
    /// Build from `(value, weight)` pairs.
    ///
    /// # Panics
    /// Panics if `buckets` is empty, any weight is negative/non-finite, or
    /// all weights are zero.
    pub fn new(buckets: &[(f64, f64)]) -> Self {
        assert!(
            !buckets.is_empty(),
            "discrete distribution needs at least one bucket"
        );
        let total: f64 = buckets
            .iter()
            .map(|&(_, w)| {
                assert!(w.is_finite() && w >= 0.0, "negative weight {w}");
                w
            })
            .sum();
        assert!(total > 0.0, "all weights are zero");
        let mut values = Vec::with_capacity(buckets.len());
        let mut cdf = Vec::with_capacity(buckets.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        for &(v, w) in buckets {
            acc += w / total;
            values.push(v);
            cdf.push(acc);
            mean += v * (w / total);
        }
        // Guard against accumulated floating error leaving the last CDF entry
        // fractionally below 1.0.
        *cdf.last_mut().expect("non-empty") = 1.0;
        DiscreteWeighted { values, cdf, mean }
    }

    /// The bucket values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Distribution for DiscreteWeighted {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        let u = rng.uniform();
        let idx = self.cdf.partition_point(|&c| c <= u);
        self.values[idx.min(self.values.len() - 1)]
    }
    fn mean(&self) -> f64 {
        self.mean
    }
}

/// Clamp a sample into `[lo, hi]`, re-rounding through `u64`. Convenience for
/// turning continuous draws into bounded integer job attributes.
pub fn sample_clamped_u64(d: &dyn Distribution, rng: &mut SimRng, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi);
    let x = d.sample(rng);
    if !x.is_finite() || x <= lo as f64 {
        lo
    } else if x >= hi as f64 {
        hi
    } else {
        (x.round() as u64).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(d: &dyn Distribution, seed: u64, n: usize) -> f64 {
        let mut rng = SimRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_matches() {
        let d = Exponential::new(120.0);
        let m = sample_mean(&d, 1, 200_000);
        assert!((m - 120.0).abs() / 120.0 < 0.02, "mean {m}");
        assert_eq!(d.mean(), 120.0);
    }

    #[test]
    fn exponential_is_nonnegative() {
        let d = Exponential::new(5.0);
        let mut rng = SimRng::seed_from_u64(2);
        assert!((0..10_000).all(|_| d.sample(&mut rng) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn exponential_rejects_zero_mean() {
        Exponential::new(0.0);
    }

    #[test]
    fn lognormal_mean_matches_analytic() {
        let d = LogNormal::new(3.0, 0.8);
        let m = sample_mean(&d, 3, 400_000);
        let expect = d.mean();
        assert!((m - expect).abs() / expect < 0.03, "mean {m} vs {expect}");
    }

    #[test]
    fn lognormal_from_mean_cv_recovers_mean() {
        let d = LogNormal::from_mean_cv(3600.0, 2.0);
        assert!((d.mean() - 3600.0).abs() < 1e-6);
        let m = sample_mean(&d, 4, 400_000);
        assert!((m - 3600.0).abs() / 3600.0 < 0.10, "mean {m}"); // cv=2 is noisy
    }

    #[test]
    fn weibull_mean_matches_analytic() {
        let d = Weibull::new(1.5, 100.0);
        let m = sample_mean(&d, 5, 200_000);
        let expect = d.mean();
        assert!((m - expect).abs() / expect < 0.02, "mean {m} vs {expect}");
    }

    #[test]
    fn weibull_shape_one_is_exponential() {
        let w = Weibull::new(1.0, 50.0);
        assert!((w.mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn gamma_known_values() {
        assert!((gamma(1.0) - 1.0).abs() < 1e-10);
        assert!((gamma(2.0) - 1.0).abs() < 1e-10);
        assert!((gamma(3.0) - 2.0).abs() < 1e-9);
        assert!((gamma(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-9);
        assert!((gamma(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn discrete_respects_weights() {
        let d = DiscreteWeighted::new(&[(1.0, 1.0), (2.0, 3.0)]);
        let mut rng = SimRng::seed_from_u64(6);
        let n = 100_000;
        let twos = (0..n).filter(|_| d.sample(&mut rng) == 2.0).count();
        let frac = twos as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
        assert!((d.mean() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn discrete_single_bucket_is_constant() {
        let d = DiscreteWeighted::new(&[(512.0, 1.0)]);
        let mut rng = SimRng::seed_from_u64(7);
        assert!((0..100).all(|_| d.sample(&mut rng) == 512.0));
    }

    #[test]
    fn discrete_ignores_zero_weight_bucket() {
        let d = DiscreteWeighted::new(&[(1.0, 0.0), (9.0, 2.0)]);
        let mut rng = SimRng::seed_from_u64(8);
        assert!((0..1_000).all(|_| d.sample(&mut rng) == 9.0));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn discrete_rejects_empty() {
        DiscreteWeighted::new(&[]);
    }

    #[test]
    #[should_panic(expected = "all weights are zero")]
    fn discrete_rejects_all_zero_weights() {
        DiscreteWeighted::new(&[(1.0, 0.0), (2.0, 0.0)]);
    }

    #[test]
    fn clamped_sampling_stays_in_bounds() {
        let d = LogNormal::from_mean_cv(1000.0, 3.0);
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = sample_clamped_u64(&d, &mut rng, 64, 4096);
            assert!((64..=4096).contains(&v));
        }
    }
}
