//! Lightweight metrics registry: named counters plus log₂-bucketed
//! histograms, no external deps. Snapshots serialize into reports.
//!
//! Determinism contract: a registry fed only deterministic inputs (sim
//! time, counts) snapshots identically across same-seed runs. Wall-clock
//! values belong in [`crate::profile`], not here, when they would end up
//! inside a `SimulationReport`.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value fits in `i` bits, i.e. value 0 is
/// bucket 0 and value `v > 0` lands in bucket `64 - v.leading_zeros()`;
/// bucket upper bounds are `0, 1, 3, 7, …, 2^k - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile from bucket boundaries (upper bound of the
    /// bucket containing the q-th sample).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper_bound(i));
            }
        }
        Some(self.max)
    }

    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| BucketCount {
                le: bucket_upper_bound(i),
                count: n,
            })
            .collect();
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            buckets,
        }
    }
}

fn bucket_upper_bound(bucket: usize) -> u64 {
    if bucket >= 64 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Registry of named counters and histograms.
///
/// Keys are static strings (metric names are decided at compile time);
/// storage is ordered so snapshots list metrics alphabetically.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    pub fn add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Set a gauge-style counter to an absolute value.
    pub fn set(&mut self, name: &'static str, value: u64) {
        self.counters.insert(name, value);
    }

    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Snapshot the registry. Metric names are listed in sorted (ascending
    /// byte-wise) order — a guarantee, not an accident of storage: text
    /// exposition formats and golden tests rely on two registries with the
    /// same contents producing identical snapshots regardless of the order
    /// metrics were first touched in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(&name, &value)| CounterSnapshot {
                    name: name.to_string(),
                    value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(&name, histogram)| histogram.snapshot(name))
                .collect(),
        }
    }
}

/// Serializable view of a registry at a point in time.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<CounterSnapshot>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    pub name: String,
    pub value: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Non-empty buckets: `count` samples with value `<= le`.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    pub le: u64,
    pub count: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1010);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        let snap = h.snapshot("t");
        // 0 → le 0; 1 → le 1; 2,3 → le 3; 4 → le 7; 1000 → le 1023.
        let les: Vec<u64> = snap.buckets.iter().map(|b| b.le).collect();
        assert_eq!(les, vec![0, 1, 3, 7, 1023]);
        assert_eq!(snap.buckets[2].count, 2);
    }

    #[test]
    fn quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p99);
        assert!((250..=1023).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn registry_snapshot_roundtrips() {
        let mut reg = MetricsRegistry::new();
        reg.inc("holds");
        reg.add("holds", 2);
        reg.set("queue-high-water", 17);
        reg.observe("hold-duration", 100);
        reg.observe("hold-duration", 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("holds"), 3);
        assert_eq!(snap.counter("queue-high-water"), 17);
        assert_eq!(snap.counter("missing"), 0);
        let h = snap.histogram("hold-duration").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 103);
        let text = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_order_is_sorted_regardless_of_touch_order() {
        let mut fwd = MetricsRegistry::new();
        for name in ["alpha", "mid", "zeta"] {
            fwd.inc(name);
            fwd.observe("hist.a", 1);
            fwd.observe("hist.z", 1);
        }
        let mut rev = MetricsRegistry::new();
        for name in ["zeta", "mid", "alpha"] {
            rev.inc(name);
        }
        rev.observe("hist.z", 1);
        rev.observe("hist.z", 1);
        rev.observe("hist.z", 1);
        rev.observe("hist.a", 1);
        rev.observe("hist.a", 1);
        rev.observe("hist.a", 1);
        let (s1, s2) = (fwd.snapshot(), rev.snapshot());
        let names: Vec<&str> = s1.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "counters must come out sorted");
        assert_eq!(s1, s2, "touch order must not leak into the snapshot");
        let hist_names: Vec<&str> = s1.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(hist_names, vec!["hist.a", "hist.z"]);
    }

    #[test]
    fn empty_histogram_edge_cases() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
        let snap = h.snapshot("empty");
        assert_eq!(snap.count, 0);
        assert_eq!((snap.min, snap.max), (0, 0));
        assert!(snap.buckets.is_empty());
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn single_sample_histogram() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(42));
        assert_eq!(h.max(), Some(42));
        assert_eq!(h.mean(), 42.0);
        // 42 needs 6 bits → bucket upper bound 63, for every quantile.
        assert_eq!(h.quantile(0.0), Some(63));
        assert_eq!(h.quantile(0.5), Some(63));
        assert_eq!(h.quantile(1.0), Some(63));
        let snap = h.snapshot("one");
        assert_eq!(snap.buckets, vec![BucketCount { le: 63, count: 1 }]);
    }

    #[test]
    fn extreme_quantiles_hit_first_and_last_bucket() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(1000);
        // q=0 resolves to rank 1 (the first sample), q=1 to the last.
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(1023));
        // Out-of-range inputs clamp rather than panic.
        assert_eq!(h.quantile(-3.0), Some(0));
        assert_eq!(h.quantile(7.5), Some(1023));
    }

    #[test]
    fn values_on_log2_bucket_boundaries() {
        let mut h = Histogram::new();
        // Exact powers of two sit in the bucket whose upper bound is
        // 2^(k+1)-1; the value one below sits in the previous bucket.
        for v in [1u64, 2, 3, 4, 7, 8, 1 << 62, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot("bounds");
        let les: Vec<u64> = snap.buckets.iter().map(|b| b.le).collect();
        assert_eq!(
            les,
            vec![1, 3, 7, 15, (1u64 << 63) - 1, u64::MAX],
            "boundary values must land exactly one bucket apart"
        );
        // 2 and 3 share the le=3 bucket; 4 and 7 share le=7; 8 is alone.
        assert_eq!(snap.buckets[1].count, 2);
        assert_eq!(snap.buckets[2].count, 2);
        assert_eq!(snap.buckets[3].count, 1);
        assert_eq!(h.sum(), u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(h.max(), Some(u64::MAX));
        assert_eq!(h.min(), Some(1));
    }

    #[test]
    fn identical_inputs_snapshot_identically() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            for i in 0..100 {
                reg.inc("a");
                reg.observe("h", i * 7);
            }
            reg.snapshot()
        };
        assert_eq!(build(), build());
    }
}
