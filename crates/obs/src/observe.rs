//! Observers and sinks: where trace events go.
//!
//! An [`Observer`] is threaded through the simulation layers by value
//! (static dispatch). The [`NoopObserver`] reports `active() == false`,
//! a constant the optimizer folds away together with the event-building
//! closure passed to [`Observer::emit_with`] — disabled tracing costs
//! nothing. A [`SinkObserver`] forwards records to a [`Sink`]: a JSONL
//! stream, an in-memory ring buffer, or any boxed combination.

use crate::trace::{TraceEvent, TraceRecord};
use std::collections::VecDeque;
use std::io::Write;

/// Consumer of trace events. Implementations must be *pure consumers*:
/// nothing observable by the simulation may depend on them.
pub trait Observer {
    /// Whether events should be constructed at all. The no-op observer
    /// returns a literal `false`, letting inlining erase event plumbing.
    fn active(&self) -> bool;

    /// Record one event at a sim-time stamp.
    fn record(&mut self, time: u64, machine: usize, event: TraceEvent);

    /// Build-and-record only when active; the closure runs lazily so that
    /// payload construction is skipped for inactive observers.
    #[inline]
    fn emit_with(&mut self, time: u64, machine: usize, make: impl FnOnce() -> TraceEvent)
    where
        Self: Sized,
    {
        if self.active() {
            self.record(time, machine, make());
        }
    }

    /// Flush any buffered output (end of run). No-op by default.
    fn flush(&mut self) {}
}

/// The zero-cost default: no events are built, recorded, or stored.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopObserver;

impl Observer for NoopObserver {
    #[inline(always)]
    fn active(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _time: u64, _machine: usize, _event: TraceEvent) {}
}

/// Where serialized trace records end up.
pub trait Sink {
    fn accept(&mut self, record: &TraceRecord);

    fn flush(&mut self) {}
}

impl<S: Sink + ?Sized> Sink for Box<S> {
    fn accept(&mut self, record: &TraceRecord) {
        (**self).accept(record);
    }

    fn flush(&mut self) {
        (**self).flush();
    }
}

/// Adapter turning any [`Sink`] into an [`Observer`].
#[derive(Debug, Default)]
pub struct SinkObserver<S: Sink> {
    sink: S,
}

impl<S: Sink> SinkObserver<S> {
    pub fn new(sink: S) -> Self {
        SinkObserver { sink }
    }

    pub fn into_sink(self) -> S {
        self.sink
    }

    pub fn sink(&self) -> &S {
        &self.sink
    }

    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }
}

impl<S: Sink> Observer for SinkObserver<S> {
    #[inline]
    fn active(&self) -> bool {
        true
    }

    fn record(&mut self, time: u64, machine: usize, event: TraceEvent) {
        self.sink.accept(&TraceRecord {
            time,
            machine,
            event,
        });
    }

    fn flush(&mut self) {
        self.sink.flush();
    }
}

/// Fan-out observer: forwards every event to both halves.
#[derive(Debug, Default)]
pub struct TeeObserver<A: Observer, B: Observer> {
    pub first: A,
    pub second: B,
}

impl<A: Observer, B: Observer> TeeObserver<A, B> {
    pub fn new(first: A, second: B) -> Self {
        TeeObserver { first, second }
    }
}

impl<A: Observer, B: Observer> Observer for TeeObserver<A, B> {
    #[inline]
    fn active(&self) -> bool {
        self.first.active() || self.second.active()
    }

    fn record(&mut self, time: u64, machine: usize, event: TraceEvent) {
        if self.first.active() {
            self.first.record(time, machine, event.clone());
        }
        if self.second.active() {
            self.second.record(time, machine, event);
        }
    }

    fn flush(&mut self) {
        self.first.flush();
        self.second.flush();
    }
}

/// JSONL sink: one compact JSON object per line, in emission order.
///
/// Because record payloads contain only deterministic data, two same-seed
/// runs write byte-identical streams.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink { writer, lines: 0 }
    }

    /// Number of records written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> Sink for JsonlSink<W> {
    fn accept(&mut self, record: &TraceRecord) {
        let line = serde_json::to_string(record).expect("trace records always serialize");
        // Trace I/O failures must not perturb the simulation; drop silently.
        let _ = self.writer.write_all(line.as_bytes());
        let _ = self.writer.write_all(b"\n");
        self.lines += 1;
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Bounded in-memory sink keeping the most recent `capacity` records.
#[derive(Debug, Clone)]
pub struct RingSink {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    total: u64,
}

impl RingSink {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be positive");
        RingSink {
            records: VecDeque::with_capacity(capacity),
            capacity,
            total: 0,
        }
    }

    /// Records currently retained (oldest first).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Total records ever accepted, including evicted ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl Sink for RingSink {
    fn accept(&mut self, record: &TraceRecord) {
        if self.records.len() == self.capacity {
            self.records.pop_front();
        }
        self.records.push_back(record.clone());
        self.total += 1;
    }
}

/// Unbounded in-memory sink (tests and small runs).
#[derive(Debug, Clone, Default)]
pub struct VecSink {
    pub records: Vec<TraceRecord>,
}

impl Sink for VecSink {
    fn accept(&mut self, record: &TraceRecord) {
        self.records.push(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seq: u64) -> TraceEvent {
        TraceEvent::EngineDispatch { seq }
    }

    #[test]
    fn noop_observer_is_inactive_and_zero_sized() {
        let mut obs = NoopObserver;
        assert!(!obs.active());
        obs.emit_with(1, 0, || panic!("must not be constructed"));
        assert_eq!(std::mem::size_of::<NoopObserver>(), 0);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_record() {
        let mut observer = SinkObserver::new(JsonlSink::new(Vec::new()));
        observer.emit_with(5, 0, || sample(1));
        observer.emit_with(6, 1, || sample(2));
        let sink = observer.into_sink();
        assert_eq!(sink.lines(), 2);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn ring_sink_evicts_oldest() {
        let mut sink = RingSink::new(2);
        for seq in 0..5 {
            sink.accept(&TraceRecord {
                time: seq,
                machine: 0,
                event: sample(seq),
            });
        }
        assert_eq!(sink.total(), 5);
        assert_eq!(sink.len(), 2);
        let times: Vec<u64> = sink.records().map(|r| r.time).collect();
        assert_eq!(times, vec![3, 4]);
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = TeeObserver::new(
            SinkObserver::new(VecSink::default()),
            SinkObserver::new(RingSink::new(8)),
        );
        assert!(tee.active());
        tee.emit_with(1, 0, || sample(9));
        assert_eq!(tee.first.sink().records.len(), 1);
        assert_eq!(tee.second.sink().total(), 1);
    }

    #[test]
    fn ring_sink_wraps_many_times_and_keeps_totals_exact() {
        // A long run through a small ring: `total()` keeps the true event
        // count while `len()` stays pinned at capacity, and the retained
        // window is exactly the trailing `capacity` records in order.
        let mut sink = RingSink::new(3);
        let n = 1_000u64;
        for seq in 0..n {
            sink.accept(&TraceRecord {
                time: seq,
                machine: (seq % 2) as usize,
                event: sample(seq),
            });
        }
        assert_eq!(sink.total(), n);
        assert_eq!(sink.len(), 3);
        assert!(!sink.is_empty());
        let times: Vec<u64> = sink.records().map(|r| r.time).collect();
        assert_eq!(times, vec![n - 3, n - 2, n - 1]);
    }

    #[test]
    fn ring_sink_below_capacity_keeps_everything() {
        let mut sink = RingSink::new(10);
        for seq in 0..4 {
            sink.accept(&TraceRecord {
                time: seq,
                machine: 0,
                event: sample(seq),
            });
        }
        assert_eq!(sink.total(), 4);
        assert_eq!(sink.len(), 4);
        let times: Vec<u64> = sink.records().map(|r| r.time).collect();
        assert_eq!(times, vec![0, 1, 2, 3]);
    }

    /// An observer that logs every call so tee ordering is directly
    /// inspectable.
    #[derive(Default)]
    struct LogObserver {
        tag: &'static str,
        log: std::rc::Rc<std::cell::RefCell<Vec<(&'static str, u64)>>>,
        active: bool,
    }

    impl Observer for LogObserver {
        fn active(&self) -> bool {
            self.active
        }

        fn record(&mut self, time: u64, _machine: usize, _event: TraceEvent) {
            self.log.borrow_mut().push((self.tag, time));
        }
    }

    #[test]
    fn tee_delivers_first_then_second_per_event() {
        // Delivery order is a guarantee, not an accident: the primary sink
        // (`first`) sees each event before any secondary consumer, so a
        // teed monitor can never observe state the trace has not recorded.
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut tee = TeeObserver::new(
            LogObserver {
                tag: "first",
                log: std::rc::Rc::clone(&log),
                active: true,
            },
            LogObserver {
                tag: "second",
                log: std::rc::Rc::clone(&log),
                active: true,
            },
        );
        for t in 0..4 {
            tee.record(t, 0, sample(t));
        }
        let calls = log.borrow().clone();
        assert_eq!(
            calls,
            vec![
                ("first", 0),
                ("second", 0),
                ("first", 1),
                ("second", 1),
                ("first", 2),
                ("second", 2),
                ("first", 3),
                ("second", 3),
            ]
        );
    }

    #[test]
    fn tee_skips_inactive_halves() {
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut tee = TeeObserver::new(
            LogObserver {
                tag: "first",
                log: std::rc::Rc::clone(&log),
                active: false,
            },
            LogObserver {
                tag: "second",
                log: std::rc::Rc::clone(&log),
                active: true,
            },
        );
        assert!(tee.active(), "one active half keeps the tee active");
        tee.record(7, 1, sample(7));
        assert_eq!(log.borrow().clone(), vec![("second", 7)]);

        let mut dead = TeeObserver::new(NoopObserver, NoopObserver);
        assert!(!dead.active());
        dead.emit_with(1, 0, || panic!("inactive tee must not construct events"));
    }
}
