//! The event taxonomy: everything the stack can report, sim-time-stamped.
//!
//! Payloads are restricted to *deterministic* data — sim time, ids, sizes,
//! counts. Wall-clock durations are deliberately excluded (they belong to
//! [`crate::profile`]), which is what makes JSONL traces byte-identical
//! across same-seed runs.

use serde::{Deserialize, Serialize};

/// One trace entry: a sim-time stamp plus the event itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time in seconds.
    pub time: u64,
    /// Machine index the event belongs to, if any (`usize::MAX` = global).
    pub machine: usize,
    /// The event payload.
    pub event: TraceEvent,
}

/// Machine index used for events not tied to a domain.
pub const GLOBAL: usize = usize::MAX;

/// Structured events emitted across the stack.
///
/// Grouped by layer: `Engine*` (cosched-sim), `Job*` (lifecycle anchors
/// emitted by the coupled driver), `Sched*` (cosched-sched), `Cosched*`
/// (cosched-core, Algorithm 1), `Rpc*`/`Frame*` (cosched-proto).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    // ----- discrete-event engine ------------------------------------------
    /// The engine dispatched the event with this sequence number.
    EngineDispatch { seq: u64 },
    /// An event was cancelled before dispatch.
    EngineCancel { seq: u64 },

    // ----- job lifecycle ---------------------------------------------------
    /// A job arrived at its machine's queue (`paired` = it has a mate on
    /// the other machine). Anchors lifecycle reconstruction: every other
    /// per-job event refers back to this submission.
    JobSubmitted { job: u64, size: u64, paired: bool },
    /// A running job completed.
    JobEnded { job: u64 },

    // ----- single-domain scheduler ----------------------------------------
    /// A scheduler iteration began (`queued`/`running` = queue depths).
    SchedIterationStart {
        queued: usize,
        running: usize,
        free_nodes: u64,
    },
    /// A scheduler iteration finished after starting `started` jobs.
    SchedIterationEnd { started: usize },
    /// The policy picked a candidate job.
    SchedPick {
        job: u64,
        size: u64,
        via_backfill: bool,
    },
    /// A job started through the backfill window rather than at queue head.
    SchedBackfillHit { job: u64, size: u64 },
    /// The scheduler engaged draining: the queue head cannot start, so the
    /// machine stops starting lower-priority work.
    SchedDrainEngaged {
        blocked_job: u64,
        needed: u64,
        free_nodes: u64,
    },
    /// The allocator could not place a job, with the reason.
    SchedAllocFail {
        job: u64,
        size: u64,
        reason: AllocFailReason,
    },

    // ----- Algorithm 1 (Run_Job) transitions ------------------------------
    /// A hold was placed: resources reserved while the mate is not ready.
    CoschedHoldPlaced { job: u64, nodes: u64 },
    /// A yield: the job gave up its turn waiting for its mate.
    CoschedYield { job: u64, yields_so_far: u32 },
    /// A held job's mate became ready and both sides committed to start.
    CoschedRendezvousCommit { job: u64, mate: u64, anchored: bool },
    /// The periodic release sweep fired, releasing `released` held jobs.
    CoschedReleaseSweep { released: usize, held_before: usize },
    /// Held-capacity cap exceeded: hold scheme degraded to yield.
    CoschedHeldCapDegradation {
        job: u64,
        held_nodes: u64,
        capacity: u64,
    },
    /// Yield cap exceeded: yield scheme escalated to hold.
    CoschedYieldCapEscalation { job: u64, yields: u32 },
    /// The deadlock breaker demoted a held job after a sweep.
    CoschedDeadlockDemotion { job: u64 },
    /// A job started (with or without its mate).
    CoschedStart { job: u64, with_mate: bool },

    // ----- cross-domain protocol ------------------------------------------
    /// An RPC completed (`kind` names the request variant).
    RpcCall { kind: RpcKind, ok: bool },
    /// An RPC timed out and the caller fell back to `MateStatus::Unknown`.
    RpcTimeout { kind: RpcKind },
    /// A frame was encoded onto the wire (`bytes` includes the header).
    FrameEncoded { bytes: u64 },
    /// A frame was decoded off the wire (`bytes` includes the header).
    FrameDecoded { bytes: u64 },
}

/// Why an allocation attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocFailReason {
    /// Not enough free nodes in total.
    Capacity,
    /// Enough free nodes, but not in a placeable shape (buddy fragmentation).
    Fragmentation,
}

/// Request kinds, mirroring `cosched_proto::message::Request` variants
/// without depending on the proto crate (obs sits below everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RpcKind {
    GetMateJob,
    GetMateStatus,
    TryStartMate,
    StartJob,
    CanStart,
    Ping,
}

impl RpcKind {
    pub fn as_str(self) -> &'static str {
        match self {
            RpcKind::GetMateJob => "get_mate_job",
            RpcKind::GetMateStatus => "get_mate_status",
            RpcKind::TryStartMate => "try_start_mate",
            RpcKind::StartJob => "start_job",
            RpcKind::CanStart => "can_start",
            RpcKind::Ping => "ping",
        }
    }
}

impl TraceEvent {
    /// Stable kebab-case name of the event kind (metric keys, filtering).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::EngineDispatch { .. } => "engine-dispatch",
            TraceEvent::EngineCancel { .. } => "engine-cancel",
            TraceEvent::JobSubmitted { .. } => "job-submitted",
            TraceEvent::JobEnded { .. } => "job-ended",
            TraceEvent::SchedIterationStart { .. } => "sched-iteration-start",
            TraceEvent::SchedIterationEnd { .. } => "sched-iteration-end",
            TraceEvent::SchedPick { .. } => "sched-pick",
            TraceEvent::SchedBackfillHit { .. } => "sched-backfill-hit",
            TraceEvent::SchedDrainEngaged { .. } => "sched-drain-engaged",
            TraceEvent::SchedAllocFail { .. } => "sched-alloc-fail",
            TraceEvent::CoschedHoldPlaced { .. } => "cosched-hold-placed",
            TraceEvent::CoschedYield { .. } => "cosched-yield",
            TraceEvent::CoschedRendezvousCommit { .. } => "cosched-rendezvous-commit",
            TraceEvent::CoschedReleaseSweep { .. } => "cosched-release-sweep",
            TraceEvent::CoschedHeldCapDegradation { .. } => "cosched-held-cap-degradation",
            TraceEvent::CoschedYieldCapEscalation { .. } => "cosched-yield-cap-escalation",
            TraceEvent::CoschedDeadlockDemotion { .. } => "cosched-deadlock-demotion",
            TraceEvent::CoschedStart { .. } => "cosched-start",
            TraceEvent::RpcCall { .. } => "rpc-call",
            TraceEvent::RpcTimeout { .. } => "rpc-timeout",
            TraceEvent::FrameEncoded { .. } => "frame-encoded",
            TraceEvent::FrameDecoded { .. } => "frame-decoded",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_json() {
        let record = TraceRecord {
            time: 3600,
            machine: 1,
            event: TraceEvent::SchedAllocFail {
                job: 42,
                size: 1024,
                reason: AllocFailReason::Fragmentation,
            },
        };
        let text = serde_json::to_string(&record).unwrap();
        let back: TraceRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            TraceEvent::EngineDispatch { seq: 0 }.kind(),
            "engine-dispatch"
        );
        assert_eq!(
            TraceEvent::RpcTimeout {
                kind: RpcKind::GetMateStatus
            }
            .kind(),
            "rpc-timeout"
        );
        assert_eq!(RpcKind::TryStartMate.as_str(), "try_start_mate");
    }
}
