//! The event taxonomy: everything the stack can report, sim-time-stamped.
//!
//! Payloads are restricted to *deterministic* data — sim time, ids, sizes,
//! counts. Wall-clock durations are deliberately excluded (they belong to
//! [`crate::profile`]), which is what makes JSONL traces byte-identical
//! across same-seed runs.

use serde::{Deserialize, Serialize};

/// One trace entry: a sim-time stamp plus the event itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Simulation time in seconds.
    pub time: u64,
    /// Machine index the event belongs to, if any (`usize::MAX` = global).
    pub machine: usize,
    /// The event payload.
    pub event: TraceEvent,
}

/// Machine index used for events not tied to a domain.
pub const GLOBAL: usize = usize::MAX;

/// Job id used in span records when no job applies (sweep/iteration spans).
pub const NO_JOB: u64 = u64::MAX;

/// Span id meaning "no parent": a span with `parent == NO_SPAN` is a root.
pub const NO_SPAN: u64 = 0;

/// Structured events emitted across the stack.
///
/// Grouped by layer: `Engine*` (cosched-sim), `Job*` (lifecycle anchors
/// emitted by the coupled driver), `Sched*` (cosched-sched), `Cosched*`
/// (cosched-core, Algorithm 1), `Rpc*`/`Frame*` (cosched-proto).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    // ----- discrete-event engine ------------------------------------------
    /// The engine dispatched the event with this sequence number.
    EngineDispatch { seq: u64 },
    /// An event was cancelled before dispatch.
    EngineCancel { seq: u64 },

    // ----- job lifecycle ---------------------------------------------------
    /// A job arrived at its machine's queue (`paired` = it has a mate on
    /// the other machine). Anchors lifecycle reconstruction: every other
    /// per-job event refers back to this submission.
    JobSubmitted { job: u64, size: u64, paired: bool },
    /// A running job completed.
    JobEnded { job: u64 },

    // ----- single-domain scheduler ----------------------------------------
    /// A scheduler iteration began (`queued`/`running` = queue depths).
    SchedIterationStart {
        queued: usize,
        running: usize,
        free_nodes: u64,
    },
    /// A scheduler iteration finished after starting `started` jobs.
    SchedIterationEnd { started: usize },
    /// The policy picked a candidate job.
    SchedPick {
        job: u64,
        size: u64,
        via_backfill: bool,
    },
    /// A job started through the backfill window rather than at queue head.
    SchedBackfillHit { job: u64, size: u64 },
    /// The scheduler engaged draining: the queue head cannot start, so the
    /// machine stops starting lower-priority work.
    SchedDrainEngaged {
        blocked_job: u64,
        needed: u64,
        free_nodes: u64,
    },
    /// The allocator could not place a job, with the reason.
    SchedAllocFail {
        job: u64,
        size: u64,
        reason: AllocFailReason,
    },

    // ----- Algorithm 1 (Run_Job) transitions ------------------------------
    /// A hold was placed: resources reserved while the mate is not ready.
    CoschedHoldPlaced { job: u64, nodes: u64 },
    /// A yield: the job gave up its turn waiting for its mate.
    CoschedYield { job: u64, yields_so_far: u32 },
    /// A held job's mate became ready and both sides committed to start.
    CoschedRendezvousCommit { job: u64, mate: u64, anchored: bool },
    /// The periodic release sweep fired, releasing `released` held jobs.
    CoschedReleaseSweep { released: usize, held_before: usize },
    /// Held-capacity cap exceeded: hold scheme degraded to yield.
    CoschedHeldCapDegradation {
        job: u64,
        held_nodes: u64,
        capacity: u64,
    },
    /// Yield cap exceeded: yield scheme escalated to hold.
    CoschedYieldCapEscalation { job: u64, yields: u32 },
    /// The deadlock breaker demoted a held job after a sweep.
    CoschedDeadlockDemotion { job: u64 },
    /// A job started (with or without its mate).
    CoschedStart { job: u64, with_mate: bool },

    // ----- cross-domain protocol ------------------------------------------
    /// An RPC completed (`kind` names the request variant).
    RpcCall { kind: RpcKind, ok: bool },
    /// An RPC timed out and the caller fell back to `MateStatus::Unknown`.
    RpcTimeout { kind: RpcKind },
    /// A frame was encoded onto the wire (`bytes` includes the header).
    FrameEncoded { bytes: u64 },
    /// A frame was decoded off the wire (`bytes` includes the header).
    FrameDecoded { bytes: u64 },

    // ----- alerting ---------------------------------------------------------
    /// An alert rule's condition held past its `for` duration. `machine` is
    /// the scope the rule fired in ([`GLOBAL`] for run-wide metrics);
    /// `value` is the offending metric reading at raise time. Alert events
    /// are produced by the *online* telemetry plane (the streaming
    /// monitor's rule engine) and kept in its own history — they are never
    /// injected into a primary trace stream, so teeing a monitor onto a
    /// JSONL sink cannot perturb the deterministic trace.
    AlertRaised {
        rule: String,
        machine: usize,
        value: f64,
    },
    /// A previously raised alert's condition returned within bounds.
    AlertResolved {
        rule: String,
        machine: usize,
        value: f64,
    },

    // ----- causal spans ----------------------------------------------------
    /// A causal span opened. Span ids are assigned deterministically (dense,
    /// starting at 1) so same-seed runs produce byte-identical span records.
    /// `parent == NO_SPAN` marks a root span; `job`/`mate` are `NO_JOB` when
    /// the span is not tied to a job (sweeps, scheduler iterations).
    SpanOpen {
        span: u64,
        parent: u64,
        kind: SpanKind,
        job: u64,
        mate: u64,
    },
    /// The span with this id closed (at the record's sim time).
    SpanClose { span: u64 },
}

/// What a causal span covers. Mirrors the links of the rendezvous chain:
/// submit → queue → RPCs → hold/yield → demotion → synchronized start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanKind {
    /// Root span of a mate pair: opens at the first submit of either member
    /// (machine = [`GLOBAL`]), closes when both members have started.
    PairRendezvous,
    /// One hold interval: hold placed → start or deadlock demotion.
    Hold,
    /// One yield/backoff episode: first yield → the job finally starts.
    YieldWait,
    /// A cross-domain RPC, caller side.
    Rpc(RpcKind),
    /// The remote handler's work for an RPC, parented under the caller's
    /// [`SpanKind::Rpc`] span via context propagation.
    RpcHandler(RpcKind),
    /// One deadlock-breaker release sweep that actually released holds.
    ReleaseSweep,
    /// A scheduler iteration that touched at least one mated job.
    SchedIteration,
}

impl SpanKind {
    /// Stable kebab-case label (Perfetto categories, critical-path classes).
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::PairRendezvous => "pair-rendezvous",
            SpanKind::Hold => "hold",
            SpanKind::YieldWait => "yield-wait",
            SpanKind::Rpc(_) => "rpc",
            SpanKind::RpcHandler(_) => "rpc-handler",
            SpanKind::ReleaseSweep => "release-sweep",
            SpanKind::SchedIteration => "sched-iteration",
        }
    }
}

/// Why an allocation attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocFailReason {
    /// Not enough free nodes in total.
    Capacity,
    /// Enough free nodes, but not in a placeable shape (buddy fragmentation).
    Fragmentation,
}

/// Request kinds, mirroring `cosched_proto::message::Request` variants
/// without depending on the proto crate (obs sits below everything).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RpcKind {
    GetMateJob,
    GetMateStatus,
    TryStartMate,
    StartJob,
    CanStart,
    Ping,
}

impl RpcKind {
    pub fn as_str(self) -> &'static str {
        match self {
            RpcKind::GetMateJob => "get_mate_job",
            RpcKind::GetMateStatus => "get_mate_status",
            RpcKind::TryStartMate => "try_start_mate",
            RpcKind::StartJob => "start_job",
            RpcKind::CanStart => "can_start",
            RpcKind::Ping => "ping",
        }
    }
}

impl TraceEvent {
    /// Stable kebab-case name of the event kind (metric keys, filtering).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::EngineDispatch { .. } => "engine-dispatch",
            TraceEvent::EngineCancel { .. } => "engine-cancel",
            TraceEvent::JobSubmitted { .. } => "job-submitted",
            TraceEvent::JobEnded { .. } => "job-ended",
            TraceEvent::SchedIterationStart { .. } => "sched-iteration-start",
            TraceEvent::SchedIterationEnd { .. } => "sched-iteration-end",
            TraceEvent::SchedPick { .. } => "sched-pick",
            TraceEvent::SchedBackfillHit { .. } => "sched-backfill-hit",
            TraceEvent::SchedDrainEngaged { .. } => "sched-drain-engaged",
            TraceEvent::SchedAllocFail { .. } => "sched-alloc-fail",
            TraceEvent::CoschedHoldPlaced { .. } => "cosched-hold-placed",
            TraceEvent::CoschedYield { .. } => "cosched-yield",
            TraceEvent::CoschedRendezvousCommit { .. } => "cosched-rendezvous-commit",
            TraceEvent::CoschedReleaseSweep { .. } => "cosched-release-sweep",
            TraceEvent::CoschedHeldCapDegradation { .. } => "cosched-held-cap-degradation",
            TraceEvent::CoschedYieldCapEscalation { .. } => "cosched-yield-cap-escalation",
            TraceEvent::CoschedDeadlockDemotion { .. } => "cosched-deadlock-demotion",
            TraceEvent::CoschedStart { .. } => "cosched-start",
            TraceEvent::RpcCall { .. } => "rpc-call",
            TraceEvent::RpcTimeout { .. } => "rpc-timeout",
            TraceEvent::FrameEncoded { .. } => "frame-encoded",
            TraceEvent::FrameDecoded { .. } => "frame-decoded",
            TraceEvent::AlertRaised { .. } => "alert-raised",
            TraceEvent::AlertResolved { .. } => "alert-resolved",
            TraceEvent::SpanOpen { .. } => "span-open",
            TraceEvent::SpanClose { .. } => "span-close",
        }
    }

    /// Number of [`TraceEvent`] variants. Kept in lockstep with
    /// [`TraceEvent::variant_index`] (whose `match` is exhaustive, so adding
    /// a variant without updating both is a compile error), and asserted
    /// against [`TraceEvent::samples`] coverage in tests.
    pub const VARIANT_COUNT: usize = 26;

    /// Dense index of this variant in declaration order. The exhaustive
    /// `match` is the enforcement mechanism: a new variant fails to compile
    /// here until it is given an index, and the `samples()` coverage test
    /// then fails until a sample (and thus a serde + `kind()` arm) exists.
    pub fn variant_index(&self) -> usize {
        match self {
            TraceEvent::EngineDispatch { .. } => 0,
            TraceEvent::EngineCancel { .. } => 1,
            TraceEvent::JobSubmitted { .. } => 2,
            TraceEvent::JobEnded { .. } => 3,
            TraceEvent::SchedIterationStart { .. } => 4,
            TraceEvent::SchedIterationEnd { .. } => 5,
            TraceEvent::SchedPick { .. } => 6,
            TraceEvent::SchedBackfillHit { .. } => 7,
            TraceEvent::SchedDrainEngaged { .. } => 8,
            TraceEvent::SchedAllocFail { .. } => 9,
            TraceEvent::CoschedHoldPlaced { .. } => 10,
            TraceEvent::CoschedYield { .. } => 11,
            TraceEvent::CoschedRendezvousCommit { .. } => 12,
            TraceEvent::CoschedReleaseSweep { .. } => 13,
            TraceEvent::CoschedHeldCapDegradation { .. } => 14,
            TraceEvent::CoschedYieldCapEscalation { .. } => 15,
            TraceEvent::CoschedDeadlockDemotion { .. } => 16,
            TraceEvent::CoschedStart { .. } => 17,
            TraceEvent::RpcCall { .. } => 18,
            TraceEvent::RpcTimeout { .. } => 19,
            TraceEvent::FrameEncoded { .. } => 20,
            TraceEvent::FrameDecoded { .. } => 21,
            TraceEvent::AlertRaised { .. } => 22,
            TraceEvent::AlertResolved { .. } => 23,
            TraceEvent::SpanOpen { .. } => 24,
            TraceEvent::SpanClose { .. } => 25,
        }
    }

    /// One representative instance per variant, for exhaustiveness and
    /// round-trip tests (`tests` below and the reader round-trip suite).
    pub fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::EngineDispatch { seq: 7 },
            TraceEvent::EngineCancel { seq: 8 },
            TraceEvent::JobSubmitted {
                job: 1,
                size: 512,
                paired: true,
            },
            TraceEvent::JobEnded { job: 1 },
            TraceEvent::SchedIterationStart {
                queued: 3,
                running: 2,
                free_nodes: 1024,
            },
            TraceEvent::SchedIterationEnd { started: 1 },
            TraceEvent::SchedPick {
                job: 2,
                size: 256,
                via_backfill: false,
            },
            TraceEvent::SchedBackfillHit { job: 3, size: 64 },
            TraceEvent::SchedDrainEngaged {
                blocked_job: 4,
                needed: 2048,
                free_nodes: 512,
            },
            TraceEvent::SchedAllocFail {
                job: 5,
                size: 4096,
                reason: AllocFailReason::Capacity,
            },
            TraceEvent::CoschedHoldPlaced { job: 6, nodes: 128 },
            TraceEvent::CoschedYield {
                job: 7,
                yields_so_far: 2,
            },
            TraceEvent::CoschedRendezvousCommit {
                job: 8,
                mate: 9,
                anchored: true,
            },
            TraceEvent::CoschedReleaseSweep {
                released: 2,
                held_before: 3,
            },
            TraceEvent::CoschedHeldCapDegradation {
                job: 10,
                held_nodes: 900,
                capacity: 1024,
            },
            TraceEvent::CoschedYieldCapEscalation { job: 11, yields: 5 },
            TraceEvent::CoschedDeadlockDemotion { job: 12 },
            TraceEvent::CoschedStart {
                job: 13,
                with_mate: true,
            },
            TraceEvent::RpcCall {
                kind: RpcKind::GetMateStatus,
                ok: true,
            },
            TraceEvent::RpcTimeout {
                kind: RpcKind::TryStartMate,
            },
            TraceEvent::FrameEncoded { bytes: 96 },
            TraceEvent::FrameDecoded { bytes: 96 },
            TraceEvent::AlertRaised {
                rule: "held_node_proportion>0.4".to_string(),
                machine: GLOBAL,
                value: 0.62,
            },
            TraceEvent::AlertResolved {
                rule: "held_node_proportion>0.4".to_string(),
                machine: GLOBAL,
                value: 0.1,
            },
            TraceEvent::SpanOpen {
                span: 14,
                parent: 2,
                kind: SpanKind::Rpc(RpcKind::StartJob),
                job: 15,
                mate: 16,
            },
            TraceEvent::SpanClose { span: 14 },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_roundtrip_through_json() {
        let record = TraceRecord {
            time: 3600,
            machine: 1,
            event: TraceEvent::SchedAllocFail {
                job: 42,
                size: 1024,
                reason: AllocFailReason::Fragmentation,
            },
        };
        let text = serde_json::to_string(&record).unwrap();
        let back: TraceRecord = serde_json::from_str(&text).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            TraceEvent::EngineDispatch { seq: 0 }.kind(),
            "engine-dispatch"
        );
        assert_eq!(
            TraceEvent::RpcTimeout {
                kind: RpcKind::GetMateStatus
            }
            .kind(),
            "rpc-timeout"
        );
        assert_eq!(RpcKind::TryStartMate.as_str(), "try_start_mate");
    }

    #[test]
    fn samples_cover_every_variant_exactly_once() {
        let samples = TraceEvent::samples();
        assert_eq!(samples.len(), TraceEvent::VARIANT_COUNT);
        let mut seen = [false; TraceEvent::VARIANT_COUNT];
        for event in &samples {
            let index = event.variant_index();
            assert!(!seen[index], "duplicate sample for variant {index}");
            seen[index] = true;
        }
        assert!(seen.iter().all(|covered| *covered));
    }

    #[test]
    fn every_variant_has_a_unique_nonempty_kind() {
        let kinds: Vec<&str> = TraceEvent::samples().iter().map(|e| e.kind()).collect();
        let mut sorted = kinds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), TraceEvent::VARIANT_COUNT, "kind collision");
        assert!(kinds.iter().all(|k| !k.is_empty()));
    }

    #[test]
    fn every_variant_roundtrips_through_serde() {
        for event in TraceEvent::samples() {
            let text = serde_json::to_string(&event).unwrap();
            let back: TraceEvent = serde_json::from_str(&text).unwrap();
            assert_eq!(back, event, "serde round-trip mismatch for {text}");
        }
    }

    #[test]
    fn span_kind_labels_are_stable() {
        assert_eq!(SpanKind::PairRendezvous.label(), "pair-rendezvous");
        assert_eq!(SpanKind::Rpc(RpcKind::Ping).label(), "rpc");
        assert_eq!(SpanKind::RpcHandler(RpcKind::Ping).label(), "rpc-handler");
        assert_eq!(SpanKind::SchedIteration.label(), "sched-iteration");
    }
}
