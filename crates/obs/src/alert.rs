//! Declarative alert rules evaluated over live telemetry.
//!
//! A rule is a threshold condition over one telemetry metric, optionally
//! with a *hold duration*: `held_node_proportion > 0.4 for 10m` raises
//! only after the condition has held continuously for ten sim-minutes, and
//! resolves at the first evaluation where it no longer holds. Rules read
//! run-wide metrics by default; prefixing the metric with `machineN.`
//! scopes it to one machine (`machine0.queue_age_secs > 3600`). Rules are
//! evaluated on sim-time ticks by the [`crate::monitor::StreamingMonitor`],
//! so alert timing is a deterministic function of the event stream: the
//! same run raises and resolves the same alerts at the same sim instants.
//!
//! Transitions are expressed as [`TraceEvent::AlertRaised`] /
//! [`TraceEvent::AlertResolved`] records. They live in the monitor's own
//! history (surfaced via `/metrics` and `/state`), never in the primary
//! trace stream — alerting cannot perturb the deterministic trace.

use crate::trace::{TraceEvent, TraceRecord, GLOBAL};
use serde::{Deserialize, Serialize};

/// Comparison operator of a rule condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertOp {
    Gt,
    Ge,
    Lt,
    Le,
}

impl AlertOp {
    /// The operator's source spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            AlertOp::Gt => ">",
            AlertOp::Ge => ">=",
            AlertOp::Lt => "<",
            AlertOp::Le => "<=",
        }
    }

    fn holds(self, value: f64, threshold: f64) -> bool {
        match self {
            AlertOp::Gt => value > threshold,
            AlertOp::Ge => value >= threshold,
            AlertOp::Lt => value < threshold,
            AlertOp::Le => value <= threshold,
        }
    }
}

/// One declarative threshold rule.
///
/// Parsed from `[name: ] [machineN.]metric <op> threshold [for <duration>]`,
/// e.g. `high-held: held_node_proportion > 0.4 for 10m`. Without an
/// explicit name the condition itself becomes the name
/// (`held_node_proportion>0.4`). Durations take `s`/`m`/`h` suffixes (bare
/// numbers are seconds); omitting `for` means the rule fires at the first
/// tick its condition holds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlertRule {
    /// Display name (label value in `/metrics`, key in `/state`).
    pub name: String,
    /// Telemetry metric the condition reads (see
    /// [`crate::monitor::TelemetrySnapshot::metric`] for the vocabulary).
    pub metric: String,
    /// Scope the metric is read in: [`GLOBAL`] (run-wide, the default) or a
    /// machine index from a `machineN.` prefix.
    pub machine: usize,
    /// Comparison operator.
    pub op: AlertOp,
    /// Threshold the metric is compared against.
    pub threshold: f64,
    /// Sim-seconds the condition must hold continuously before raising.
    pub for_secs: u64,
}

impl AlertRule {
    /// Build a run-wide rule programmatically; the name is derived from
    /// the condition.
    pub fn new(metric: &str, op: AlertOp, threshold: f64) -> Self {
        AlertRule {
            name: format!("{metric}{}{threshold}", op.symbol()),
            metric: metric.to_string(),
            machine: GLOBAL,
            op,
            threshold,
            for_secs: 0,
        }
    }

    /// Set the hold duration (sim-seconds).
    pub fn for_secs(mut self, secs: u64) -> Self {
        self.for_secs = secs;
        self
    }

    /// Scope the rule to one machine's metrics.
    pub fn on_machine(mut self, machine: usize) -> Self {
        self.machine = machine;
        self
    }

    /// Parse the textual rule syntax.
    ///
    /// # Errors
    /// Returns a message naming the malformed part: missing operator, bad
    /// threshold, bad duration, or bad machine prefix.
    pub fn parse(text: &str) -> Result<Self, String> {
        let text = text.trim();
        // Optional `name:` prefix (the name may not contain the operator).
        let (name, cond) = match text.split_once(':') {
            Some((n, rest)) if !n.contains(['>', '<']) => (Some(n.trim().to_string()), rest.trim()),
            _ => (None, text),
        };
        // Longest-match the operator so `>=` is not read as `>` + `=`.
        let (op, op_at, op_len) = ["<=", ">=", "<", ">"]
            .iter()
            .find_map(|sym| cond.find(sym).map(|at| (*sym, at, sym.len())))
            .ok_or_else(|| format!("rule {text:?} has no comparison operator (<, <=, >, >=)"))?;
        let op = match op {
            ">" => AlertOp::Gt,
            ">=" => AlertOp::Ge,
            "<" => AlertOp::Lt,
            "<=" => AlertOp::Le,
            _ => unreachable!(),
        };
        let mut metric = cond[..op_at].trim();
        if metric.is_empty() {
            return Err(format!("rule {text:?} names no metric"));
        }
        // Optional `machineN.` scope prefix.
        let mut machine = GLOBAL;
        if let Some((scope, rest)) = metric.split_once('.') {
            if let Some(index) = scope.strip_prefix("machine") {
                machine = index
                    .parse()
                    .map_err(|_| format!("rule {text:?}: bad machine scope {scope:?}"))?;
                metric = rest.trim();
            }
        }
        let rest = cond[op_at + op_len..].trim();
        let (threshold_text, for_secs) = match rest.split_once(" for ") {
            Some((t, dur)) => (t.trim(), parse_duration(dur.trim())?),
            None => (rest, 0),
        };
        let threshold: f64 = threshold_text
            .parse()
            .map_err(|_| format!("rule {text:?}: bad threshold {threshold_text:?}"))?;
        let mut rule = AlertRule::new(metric, op, threshold)
            .for_secs(for_secs)
            .on_machine(machine);
        if let Some(name) = name {
            rule.name = name;
        }
        Ok(rule)
    }

    /// Parse a `;`-separated rule list (the CLI's `--alerts` value),
    /// skipping empty entries.
    pub fn parse_list(text: &str) -> Result<Vec<Self>, String> {
        text.split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(Self::parse)
            .collect()
    }

    /// The condition, re-rendered.
    pub fn condition(&self) -> String {
        let scope = if self.machine == GLOBAL {
            String::new()
        } else {
            format!("machine{}.", self.machine)
        };
        let mut s = format!(
            "{scope}{} {} {}",
            self.metric,
            self.op.symbol(),
            self.threshold
        );
        if self.for_secs > 0 {
            s.push_str(&format!(" for {}s", self.for_secs));
        }
        s
    }
}

/// Parse `90`, `90s`, `10m`, or `2h` into seconds.
fn parse_duration(text: &str) -> Result<u64, String> {
    let (digits, unit) = match text.find(|c: char| !c.is_ascii_digit()) {
        Some(at) => text.split_at(at),
        None => (text, ""),
    };
    let n: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {text:?}"))?;
    match unit {
        "" | "s" => Ok(n),
        "m" => Ok(n * 60),
        "h" => Ok(n * 3_600),
        other => Err(format!("bad duration unit {other:?} in {text:?} (s|m|h)")),
    }
}

/// A sensible default rule set for coupled coscheduling runs: held-capacity
/// pressure, starving queues, and protocol failures.
pub fn default_rules() -> Vec<AlertRule> {
    vec![
        AlertRule::parse("held-pressure: held_node_proportion > 0.4 for 10m").expect("static"),
        AlertRule::parse("queue-starvation: queue_age_secs > 14400 for 10m").expect("static"),
        AlertRule::parse("rpc-timeouts: rpc_timeouts > 0").expect("static"),
    ]
}

/// A currently firing alert, as exposed in `/state` and `/metrics`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActiveAlert {
    /// Rule name.
    pub rule: String,
    /// Scope the rule fired in: a machine index, or [`GLOBAL`].
    pub machine: usize,
    /// Sim time the alert raised.
    pub since: u64,
    /// Metric reading at the most recent evaluation.
    pub value: f64,
}

/// Per-rule evaluation state.
#[derive(Debug, Clone, Copy, Default)]
struct RuleState {
    /// Sim time the condition first held continuously (None = not holding).
    pending_since: Option<u64>,
    /// Sim time the alert raised (None = not raised).
    raised_at: Option<u64>,
    /// Last observed metric value.
    last_value: f64,
}

/// Evaluates a rule set against metric readings on sim-time ticks,
/// tracking per-rule hold durations and emitting raise/resolve
/// transitions as [`TraceRecord`]s.
///
/// Each rule reads its metric in its own scope ([`AlertRule::machine`]); a
/// metric that does not exist in that scope simply never fires.
#[derive(Debug, Default)]
pub struct AlertEngine {
    rules: Vec<AlertRule>,
    states: Vec<RuleState>,
    /// Total raise transitions so far.
    pub raised_total: u64,
    /// Total resolve transitions so far.
    pub resolved_total: u64,
}

impl AlertEngine {
    pub fn new(rules: Vec<AlertRule>) -> Self {
        let states = vec![RuleState::default(); rules.len()];
        AlertEngine {
            rules,
            states,
            raised_total: 0,
            resolved_total: 0,
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[AlertRule] {
        &self.rules
    }

    /// Evaluate every rule at sim time `now`. `value(scope, metric)`
    /// supplies readings ([`GLOBAL`] or a machine index); `None` means the
    /// metric does not exist in that scope. Returns the transition records
    /// fired by this evaluation, in rule order.
    pub fn evaluate<F>(&mut self, now: u64, mut value: F) -> Vec<TraceRecord>
    where
        F: FnMut(usize, &str) -> Option<f64>,
    {
        let mut transitions = Vec::new();
        for (rule, state) in self.rules.iter().zip(self.states.iter_mut()) {
            let Some(v) = value(rule.machine, &rule.metric) else {
                continue;
            };
            state.last_value = v;
            if rule.op.holds(v, rule.threshold) {
                let since = *state.pending_since.get_or_insert(now);
                if state.raised_at.is_none() && now.saturating_sub(since) >= rule.for_secs {
                    state.raised_at = Some(now);
                    self.raised_total += 1;
                    transitions.push(TraceRecord {
                        time: now,
                        machine: rule.machine,
                        event: TraceEvent::AlertRaised {
                            rule: rule.name.clone(),
                            machine: rule.machine,
                            value: v,
                        },
                    });
                }
            } else {
                state.pending_since = None;
                if state.raised_at.take().is_some() {
                    self.resolved_total += 1;
                    transitions.push(TraceRecord {
                        time: now,
                        machine: rule.machine,
                        event: TraceEvent::AlertResolved {
                            rule: rule.name.clone(),
                            machine: rule.machine,
                            value: v,
                        },
                    });
                }
            }
        }
        transitions
    }

    /// Alerts currently raised, in rule declaration order.
    pub fn active(&self) -> Vec<ActiveAlert> {
        self.rules
            .iter()
            .zip(self.states.iter())
            .filter_map(|(rule, state)| {
                state.raised_at.map(|since| ActiveAlert {
                    rule: rule.name.clone(),
                    machine: rule.machine,
                    since,
                    value: state.last_value,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_syntax() {
        let r = AlertRule::parse("high-held: held_node_proportion > 0.4 for 10m").unwrap();
        assert_eq!(r.name, "high-held");
        assert_eq!(r.metric, "held_node_proportion");
        assert_eq!(r.machine, GLOBAL);
        assert_eq!(r.op, AlertOp::Gt);
        assert_eq!(r.threshold, 0.4);
        assert_eq!(r.for_secs, 600);
        assert_eq!(r.condition(), "held_node_proportion > 0.4 for 600s");
    }

    #[test]
    fn parses_without_name_or_duration() {
        let r = AlertRule::parse("queued >= 12").unwrap();
        assert_eq!(r.name, "queued>=12");
        assert_eq!(r.op, AlertOp::Ge);
        assert_eq!(r.for_secs, 0);
        let r = AlertRule::parse("utilization < 0.1 for 90").unwrap();
        assert_eq!((r.op, r.for_secs), (AlertOp::Lt, 90));
        let r = AlertRule::parse("utilization <= 0.1 for 2h").unwrap();
        assert_eq!((r.op, r.for_secs), (AlertOp::Le, 7_200));
    }

    #[test]
    fn parses_machine_scope_prefix() {
        let r = AlertRule::parse("stuck: machine1.queue_age_secs > 3600 for 5m").unwrap();
        assert_eq!(r.machine, 1);
        assert_eq!(r.metric, "queue_age_secs");
        assert_eq!(r.condition(), "machine1.queue_age_secs > 3600 for 300s");
        assert!(AlertRule::parse("machinex.queued > 1")
            .unwrap_err()
            .contains("bad machine scope"));
    }

    #[test]
    fn parse_errors_name_the_problem() {
        assert!(AlertRule::parse("no operator here")
            .unwrap_err()
            .contains("no comparison operator"));
        assert!(AlertRule::parse("> 3").unwrap_err().contains("no metric"));
        assert!(AlertRule::parse("x > banana")
            .unwrap_err()
            .contains("bad threshold"));
        assert!(AlertRule::parse("x > 1 for 10q")
            .unwrap_err()
            .contains("bad duration unit"));
    }

    #[test]
    fn parse_list_splits_on_semicolons() {
        let rules = AlertRule::parse_list("a > 1; b < 2 for 5m; ;").unwrap();
        assert_eq!(rules.len(), 2);
        assert_eq!(rules[1].for_secs, 300);
        assert!(AlertRule::parse_list("a > 1; nope").is_err());
    }

    #[test]
    fn default_rules_parse() {
        let rules = default_rules();
        assert!(rules.len() >= 3);
        assert!(rules.iter().any(|r| r.metric == "held_node_proportion"));
        assert!(rules.iter().all(|r| r.machine == GLOBAL));
    }

    #[test]
    fn engine_raises_after_hold_duration_and_resolves() {
        let rule = AlertRule::parse("hot: load > 10 for 100").unwrap();
        let mut engine = AlertEngine::new(vec![rule]);
        let mut level = 50.0;
        // t=0: condition holds but hold duration not yet met.
        assert!(engine.evaluate(0, |_, _| Some(level)).is_empty());
        assert!(engine.active().is_empty());
        // t=60: still pending.
        assert!(engine.evaluate(60, |_, _| Some(level)).is_empty());
        // t=120: held for 120s >= 100s → raises.
        let fired = engine.evaluate(120, |_, _| Some(level));
        assert_eq!(fired.len(), 1);
        assert!(matches!(
            &fired[0].event,
            TraceEvent::AlertRaised { rule, machine, value }
                if rule == "hot" && *machine == GLOBAL && *value == 50.0
        ));
        let active = engine.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].since, 120);
        assert_eq!(engine.raised_total, 1);
        // Still raised: no duplicate transition.
        assert!(engine.evaluate(180, |_, _| Some(level)).is_empty());
        // Condition clears → resolves.
        level = 3.0;
        let fired = engine.evaluate(240, |_, _| Some(level));
        assert_eq!(fired.len(), 1);
        assert!(matches!(
            &fired[0].event,
            TraceEvent::AlertResolved { rule, .. } if rule == "hot"
        ));
        assert!(engine.active().is_empty());
        assert_eq!(engine.resolved_total, 1);
    }

    #[test]
    fn pending_resets_when_condition_dips() {
        let rule = AlertRule::parse("x > 1 for 100").unwrap();
        let mut engine = AlertEngine::new(vec![rule]);
        assert!(engine.evaluate(0, |_, _| Some(5.0)).is_empty());
        // Dips below threshold at t=50: the continuous hold restarts.
        assert!(engine.evaluate(50, |_, _| Some(0.0)).is_empty());
        assert!(engine.evaluate(60, |_, _| Some(5.0)).is_empty());
        assert!(engine.evaluate(120, |_, _| Some(5.0)).is_empty());
        // Only at t=160 (held since t=60) does it raise.
        assert_eq!(engine.evaluate(160, |_, _| Some(5.0)).len(), 1);
    }

    #[test]
    fn machine_scoped_rules_fire_independently() {
        let rules = vec![
            AlertRule::parse("machine0.queued > 3").unwrap(),
            AlertRule::parse("machine1.queued > 3").unwrap(),
        ];
        let mut engine = AlertEngine::new(rules);
        let fired = engine.evaluate(10, |scope, _| match scope {
            0 => Some(10.0),
            1 => Some(1.0),
            _ => None,
        });
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].machine, 0);
        let active = engine.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].machine, 0);
    }

    #[test]
    fn missing_metric_never_fires() {
        let mut engine = AlertEngine::new(vec![AlertRule::parse("ghost > 0").unwrap()]);
        assert!(engine.evaluate(10, |_, _| None).is_empty());
        assert!(engine.active().is_empty());
    }

    #[test]
    fn zero_duration_rule_fires_immediately() {
        let mut engine = AlertEngine::new(vec![AlertRule::parse("x > 0").unwrap()]);
        assert_eq!(engine.evaluate(7, |_, _| Some(1.0)).len(), 1);
    }
}
