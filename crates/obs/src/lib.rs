//! Deterministic observability layer for the coupled-coscheduling stack.
//!
//! Three orthogonal pieces, kept deliberately separate so that tracing can
//! never perturb simulation results:
//!
//! * **Event tracing** ([`trace`], [`observe`]) — structured,
//!   sim-time-stamped [`trace::TraceEvent`]s flow from the engine,
//!   scheduler, coscheduling driver, and protocol layer into an
//!   [`observe::Observer`]. The default [`observe::NoopObserver`] is a
//!   zero-sized type whose `active()` is a compile-time constant `false`,
//!   so event construction is skipped entirely (static dispatch, no
//!   branches survive inlining). Sinks include JSONL writers and an
//!   in-memory ring buffer; written traces read back through
//!   [`reader::TraceReader`], which pins parse failures to their line.
//! * **Metrics** ([`metrics`]) — a tiny registry of named counters and
//!   log₂-bucketed histograms with snapshot types that serialize into
//!   reports. Deterministic inputs only (sim time, counts): identical
//!   seeds produce identical snapshots.
//! * **Phase profiling** ([`profile`]) — wall-clock timings around
//!   scheduler iterations, release sweeps, and RPCs. Wall-clock data is
//!   *never* mixed into traces or report metrics; it lives in its own
//!   snapshot so determinism guarantees hold.
//!
//! The crate has no dependency on the rest of the workspace (events carry
//! plain `u64` sim-seconds), so every layer can depend on it without
//! cycles.

pub mod alert;
pub mod metrics;
pub mod monitor;
pub mod observe;
pub mod profile;
pub mod reader;
pub mod trace;

pub use alert::{default_rules, ActiveAlert, AlertEngine, AlertOp, AlertRule};
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot};
pub use monitor::{MachineTelemetry, StreamingMonitor, TelemetrySnapshot};
pub use observe::{
    JsonlSink, NoopObserver, Observer, RingSink, Sink, SinkObserver, TeeObserver, VecSink,
};
pub use profile::{Phase, PhaseProfiler, PhaseSnapshot};
pub use reader::{
    read_trace_file, read_trace_str, write_trace_string, TraceReadError, TraceReader,
};
pub use trace::{SpanKind, TraceEvent, TraceRecord, GLOBAL, NO_JOB, NO_SPAN};
