//! Streaming telemetry: online aggregates computed per event, no buffering.
//!
//! [`StreamingMonitor`] is an [`Observer`] that folds the event stream into
//! the same core aggregates the offline analyzers (`cosched-trace`)
//! reconstruct after the fact — running/queued/held counts, node
//! utilization integrals, held-node proportion, queue-age high-water,
//! rendezvous latency — but incrementally, while the run is live. State
//! lives behind an `Arc<Mutex<…>>`, so a clone of the monitor can be
//! handed to an HTTP endpoint or dashboard and polled concurrently via
//! [`StreamingMonitor::snapshot`].
//!
//! The monitor is a *pure consumer*: it never feeds anything back into the
//! simulation, so teeing it onto a JSONL sink (monitor second, sink first)
//! leaves the primary trace byte-identical and the `SimulationReport`
//! unchanged. Alert transitions it derives (via an embedded
//! [`AlertEngine`]) are kept in its own history, never injected into the
//! observed stream.

use crate::alert::{ActiveAlert, AlertEngine, AlertRule};
use crate::metrics::{Histogram, HistogramSnapshot};
use crate::observe::Observer;
use crate::trace::{SpanKind, TraceEvent, TraceRecord, GLOBAL};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex};

/// Default sim-time alert evaluation cadence (seconds).
pub const DEFAULT_TICK_SECS: u64 = 60;

/// Per-job bookkeeping between submit and end.
#[derive(Debug, Clone, Copy)]
struct JobInfo {
    submit: u64,
    size: u64,
}

/// Live state for one machine.
#[derive(Debug, Default)]
struct MachineState {
    /// Node capacity: explicit via [`StreamingMonitor::with_capacities`],
    /// otherwise inferred as `max(free + used + held)` observed at
    /// scheduler-iteration starts.
    capacity: u64,
    capacity_explicit: bool,
    used_nodes: u64,
    held_nodes: u64,
    /// Queued jobs ordered by (submit, job); demoted holds re-enter with
    /// their original submit time so queue age survives demotion.
    queued: BTreeSet<(u64, u64)>,
    /// Held jobs → reserved nodes.
    held: HashMap<u64, u64>,
    /// Running jobs → size.
    running: HashMap<u64, u64>,
    /// Submit/size per in-flight job (dropped at end).
    jobs: HashMap<u64, JobInfo>,
    queue_age_high_water: u64,
    used_node_seconds: u64,
    held_node_seconds: u64,
    submitted: u64,
    started: u64,
    finished: u64,
}

impl MachineState {
    fn queue_age(&self, now: u64) -> u64 {
        self.queued
            .first()
            .map_or(0, |&(submit, _)| now.saturating_sub(submit))
    }

    fn telemetry(&self, index: usize, now: u64) -> MachineTelemetry {
        MachineTelemetry {
            index,
            capacity: self.capacity,
            used_nodes: self.used_nodes,
            held_nodes: self.held_nodes,
            running: self.running.len(),
            queued: self.queued.len(),
            held: self.held.len(),
            queue_age_secs: self.queue_age(now),
            queue_age_high_water: self.queue_age_high_water,
            used_node_seconds: self.used_node_seconds,
            held_node_seconds: self.held_node_seconds,
            submitted: self.submitted,
            started: self.started,
            finished: self.finished,
        }
    }
}

/// The monitor's internals, shared between clones.
#[derive(Debug)]
struct MonitorState {
    machines: Vec<MachineState>,
    last_time: u64,
    events: u64,
    submitted: u64,
    started: u64,
    finished: u64,
    rpc_calls: u64,
    rpc_timeouts: u64,
    deadlock_sweeps: u64,
    forced_releases: u64,
    yields: u64,
    holds_placed: u64,
    rendezvous_commits: u64,
    /// Open pair-rendezvous spans → open time.
    rendezvous_open: HashMap<u64, u64>,
    /// Submit-to-synchronized-start latency (sim-seconds).
    rendezvous: Histogram,
    engine: AlertEngine,
    tick_secs: u64,
    last_eval: u64,
    /// Alert raise/resolve transitions, in firing order. Monitor-private:
    /// never written into the observed trace.
    alert_history: Vec<TraceRecord>,
    done: bool,
    deadlocked: bool,
}

impl MonitorState {
    fn new(rules: Vec<AlertRule>) -> Self {
        MonitorState {
            machines: Vec::new(),
            last_time: 0,
            events: 0,
            submitted: 0,
            started: 0,
            finished: 0,
            rpc_calls: 0,
            rpc_timeouts: 0,
            deadlock_sweeps: 0,
            forced_releases: 0,
            yields: 0,
            holds_placed: 0,
            rendezvous_commits: 0,
            rendezvous_open: HashMap::new(),
            rendezvous: Histogram::new(),
            engine: AlertEngine::new(rules),
            tick_secs: DEFAULT_TICK_SECS,
            last_eval: 0,
            alert_history: Vec::new(),
            done: false,
            deadlocked: false,
        }
    }

    fn machine(&mut self, index: usize) -> &mut MachineState {
        if index >= self.machines.len() {
            self.machines.resize_with(index + 1, MachineState::default);
        }
        &mut self.machines[index]
    }

    /// Integrate node-time, roll queue-age high-water forward, and run any
    /// alert ticks crossed in `(last_time, time]`.
    fn advance_to(&mut self, time: u64) {
        if time <= self.last_time {
            return;
        }
        let dt = time - self.last_time;
        for m in &mut self.machines {
            m.used_node_seconds += m.used_nodes * dt;
            m.held_node_seconds += m.held_nodes * dt;
            let age = m.queue_age(time);
            m.queue_age_high_water = m.queue_age_high_water.max(age);
        }
        self.last_time = time;
        while self.last_eval + self.tick_secs <= time {
            self.last_eval += self.tick_secs;
            self.eval_alerts(self.last_eval);
        }
    }

    /// Evaluate the rule set at sim time `now` against the current state.
    fn eval_alerts(&mut self, now: u64) {
        if self.engine.rules().is_empty() {
            return;
        }
        let snap = self.snapshot_inner(now);
        // Temporarily lift the engine out so it can read `snap` (built from
        // `self`) without aliasing.
        let mut engine = std::mem::take(&mut self.engine);
        let fired = engine.evaluate(now, |scope, metric| snap.metric(scope, metric));
        self.engine = engine;
        self.alert_history.extend(fired);
    }

    fn apply(&mut self, record: &TraceRecord) {
        self.advance_to(record.time);
        self.events += 1;
        let time = record.time;
        let at = record.machine;
        match &record.event {
            TraceEvent::JobSubmitted { job, size, .. } => {
                self.submitted += 1;
                let m = self.machine(at);
                m.submitted += 1;
                m.jobs.insert(
                    *job,
                    JobInfo {
                        submit: time,
                        size: *size,
                    },
                );
                m.queued.insert((time, *job));
            }
            TraceEvent::CoschedHoldPlaced { job, nodes } => {
                self.holds_placed += 1;
                let m = self.machine(at);
                if let Some(info) = m.jobs.get(job).copied() {
                    m.queued.remove(&(info.submit, *job));
                }
                m.held.insert(*job, *nodes);
                m.held_nodes += *nodes;
            }
            TraceEvent::CoschedYield { .. } => self.yields += 1,
            TraceEvent::CoschedRendezvousCommit { .. } => self.rendezvous_commits += 1,
            TraceEvent::CoschedReleaseSweep { .. } => self.deadlock_sweeps += 1,
            TraceEvent::CoschedDeadlockDemotion { job } => {
                self.forced_releases += 1;
                let m = self.machine(at);
                if let Some(nodes) = m.held.remove(job) {
                    m.held_nodes -= nodes;
                    // Demotion returns the job to the queue; it keeps its
                    // original submit time for age accounting.
                    if let Some(info) = m.jobs.get(job).copied() {
                        m.queued.insert((info.submit, *job));
                    }
                }
            }
            TraceEvent::CoschedStart { job, .. } => {
                let m = self.machine(at);
                if m.running.contains_key(job) {
                    return; // idempotent under duplicate start reports
                }
                if let Some(nodes) = m.held.remove(job) {
                    m.held_nodes -= nodes;
                } else if let Some(info) = m.jobs.get(job).copied() {
                    m.queued.remove(&(info.submit, *job));
                }
                let size = m.jobs.get(job).map_or(0, |i| i.size);
                m.used_nodes += size;
                m.running.insert(*job, size);
                m.started += 1;
                self.started += 1;
            }
            TraceEvent::JobEnded { job } => {
                let m = self.machine(at);
                let ended = m.running.remove(job);
                if let Some(size) = ended {
                    m.used_nodes -= size;
                    m.finished += 1;
                }
                m.jobs.remove(job);
                if ended.is_some() {
                    self.finished += 1;
                }
            }
            TraceEvent::RpcCall { .. } => self.rpc_calls += 1,
            TraceEvent::RpcTimeout { .. } => {
                // Timeouts count as calls too, matching the driver's
                // `RunStats::rpc_calls` semantics.
                self.rpc_calls += 1;
                self.rpc_timeouts += 1;
            }
            TraceEvent::SchedIterationStart { free_nodes, .. } => {
                let m = self.machine(at);
                if !m.capacity_explicit {
                    m.capacity = m.capacity.max(free_nodes + m.used_nodes + m.held_nodes);
                }
            }
            TraceEvent::SpanOpen { span, kind, .. } if *kind == SpanKind::PairRendezvous => {
                self.rendezvous_open.insert(*span, time);
            }
            TraceEvent::SpanClose { span } => {
                if let Some(open) = self.rendezvous_open.remove(span) {
                    self.rendezvous.record(time.saturating_sub(open));
                }
            }
            _ => {}
        }
    }

    fn snapshot_inner(&self, now: u64) -> TelemetrySnapshot {
        let machines: Vec<MachineTelemetry> = self
            .machines
            .iter()
            .enumerate()
            .map(|(i, m)| m.telemetry(i, now))
            .collect();
        TelemetrySnapshot {
            sim_time: now,
            events: self.events,
            submitted: self.submitted,
            started: self.started,
            finished: self.finished,
            running: machines.iter().map(|m| m.running).sum(),
            queued: machines.iter().map(|m| m.queued).sum(),
            held: machines.iter().map(|m| m.held).sum(),
            rpc_calls: self.rpc_calls,
            rpc_timeouts: self.rpc_timeouts,
            deadlock_sweeps: self.deadlock_sweeps,
            forced_releases: self.forced_releases,
            yields: self.yields,
            holds_placed: self.holds_placed,
            rendezvous_commits: self.rendezvous_commits,
            rendezvous_p50_secs: self.rendezvous.quantile(0.5).unwrap_or(0),
            rendezvous_p99_secs: self.rendezvous.quantile(0.99).unwrap_or(0),
            rendezvous_latency: self.rendezvous.snapshot("rendezvous_latency_secs"),
            machines,
            active_alerts: self.engine.active(),
            alerts_raised_total: self.engine.raised_total,
            alerts_resolved_total: self.engine.resolved_total,
            done: self.done,
            deadlocked: self.deadlocked,
        }
    }
}

/// Live per-machine aggregates, as exposed in `/state`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineTelemetry {
    pub index: usize,
    /// Node capacity (explicit or inferred; 0 until first inference).
    pub capacity: u64,
    pub used_nodes: u64,
    pub held_nodes: u64,
    pub running: usize,
    pub queued: usize,
    pub held: usize,
    /// Age of the oldest queued job at snapshot time.
    pub queue_age_secs: u64,
    /// Largest queue age ever observed.
    pub queue_age_high_water: u64,
    /// ∫ used_nodes dt — equals Σ size×runtime once drained.
    pub used_node_seconds: u64,
    /// ∫ held_nodes dt — capacity lost to coscheduling holds.
    pub held_node_seconds: u64,
    pub submitted: u64,
    pub started: u64,
    pub finished: u64,
}

impl MachineTelemetry {
    /// Instantaneous utilization `used / capacity` (0 when capacity
    /// unknown).
    pub fn utilization(&self) -> f64 {
        ratio(self.used_nodes, self.capacity)
    }

    /// Instantaneous held-node proportion `held / capacity`.
    pub fn held_node_proportion(&self) -> f64 {
        ratio(self.held_nodes, self.capacity)
    }

    /// Time-averaged utilization over the run so far.
    pub fn avg_utilization(&self, sim_time: u64) -> f64 {
        ratio(self.used_node_seconds, self.capacity * sim_time)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Point-in-time view of the whole telemetry plane: run totals, per-machine
/// aggregates, rendezvous latency, and alert state. Serializes to the JSON
/// served at `/state`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Sim time of the snapshot.
    pub sim_time: u64,
    /// Events consumed so far.
    pub events: u64,
    pub submitted: u64,
    pub started: u64,
    pub finished: u64,
    pub running: usize,
    pub queued: usize,
    pub held: usize,
    pub rpc_calls: u64,
    pub rpc_timeouts: u64,
    pub deadlock_sweeps: u64,
    pub forced_releases: u64,
    pub yields: u64,
    pub holds_placed: u64,
    pub rendezvous_commits: u64,
    pub rendezvous_p50_secs: u64,
    pub rendezvous_p99_secs: u64,
    /// Submit-to-synchronized-start latency distribution (sim-seconds).
    pub rendezvous_latency: HistogramSnapshot,
    pub machines: Vec<MachineTelemetry>,
    pub active_alerts: Vec<ActiveAlert>,
    pub alerts_raised_total: u64,
    pub alerts_resolved_total: u64,
    /// The run finished (set by the runner via [`StreamingMonitor::finish`]).
    pub done: bool,
    /// The run ended deadlocked (undrained queues at exhaustion).
    pub deadlocked: bool,
}

impl TelemetrySnapshot {
    /// Total capacity across machines.
    pub fn total_capacity(&self) -> u64 {
        self.machines.iter().map(|m| m.capacity).sum()
    }

    /// Run-wide instantaneous utilization.
    pub fn utilization(&self) -> f64 {
        ratio(
            self.machines.iter().map(|m| m.used_nodes).sum(),
            self.total_capacity(),
        )
    }

    /// Run-wide instantaneous held-node proportion.
    pub fn held_node_proportion(&self) -> f64 {
        ratio(
            self.machines.iter().map(|m| m.held_nodes).sum(),
            self.total_capacity(),
        )
    }

    /// Oldest queued-job age across machines.
    pub fn queue_age_secs(&self) -> u64 {
        self.machines
            .iter()
            .map(|m| m.queue_age_secs)
            .max()
            .unwrap_or(0)
    }

    /// All queues empty and everything submitted has finished.
    pub fn drained(&self) -> bool {
        self.running == 0 && self.queued == 0 && self.held == 0 && self.submitted > 0
    }

    /// Metric reading by scope ([`GLOBAL`] or a machine index) and name —
    /// the vocabulary alert rules are written against. Returns `None` for
    /// unknown names or out-of-range machine scopes.
    ///
    /// Global metrics: `submitted`, `started`, `finished`, `running`,
    /// `queued`, `held`, `rpc_calls`, `rpc_timeouts`, `deadlock_sweeps`,
    /// `forced_releases`, `yields`, `holds_placed`, `utilization`,
    /// `held_node_proportion`, `queue_age_secs`, `rendezvous_p50_secs`,
    /// `rendezvous_p99_secs`. Per-machine: `running`, `queued`, `held`,
    /// `used_nodes`, `held_nodes`, `capacity`, `utilization`,
    /// `held_node_proportion`, `queue_age_secs`, `queue_age_high_water`.
    pub fn metric(&self, scope: usize, name: &str) -> Option<f64> {
        if scope == GLOBAL {
            let v = match name {
                "submitted" => self.submitted as f64,
                "started" => self.started as f64,
                "finished" => self.finished as f64,
                "running" => self.running as f64,
                "queued" => self.queued as f64,
                "held" => self.held as f64,
                "rpc_calls" => self.rpc_calls as f64,
                "rpc_timeouts" => self.rpc_timeouts as f64,
                "deadlock_sweeps" => self.deadlock_sweeps as f64,
                "forced_releases" => self.forced_releases as f64,
                "yields" => self.yields as f64,
                "holds_placed" => self.holds_placed as f64,
                "utilization" => self.utilization(),
                "held_node_proportion" => self.held_node_proportion(),
                "queue_age_secs" => self.queue_age_secs() as f64,
                "rendezvous_p50_secs" => self.rendezvous_p50_secs as f64,
                "rendezvous_p99_secs" => self.rendezvous_p99_secs as f64,
                _ => return None,
            };
            return Some(v);
        }
        let m = self.machines.get(scope)?;
        let v = match name {
            "running" => m.running as f64,
            "queued" => m.queued as f64,
            "held" => m.held as f64,
            "used_nodes" => m.used_nodes as f64,
            "held_nodes" => m.held_nodes as f64,
            "capacity" => m.capacity as f64,
            "utilization" => m.utilization(),
            "held_node_proportion" => m.held_node_proportion(),
            "queue_age_secs" => m.queue_age_secs as f64,
            "queue_age_high_water" => m.queue_age_high_water as f64,
            _ => return None,
        };
        Some(v)
    }
}

/// The streaming monitor: an [`Observer`] folding events into a live
/// [`TelemetrySnapshot`]. Cloning shares state — keep one clone attached
/// to the simulation (e.g. as the second half of a
/// [`crate::observe::TeeObserver`]) and poll another from the serving
/// thread.
#[derive(Debug, Clone)]
pub struct StreamingMonitor {
    shared: Arc<Mutex<MonitorState>>,
}

impl Default for StreamingMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingMonitor {
    /// Monitor with no alert rules.
    pub fn new() -> Self {
        Self::with_rules(Vec::new())
    }

    /// Monitor evaluating the given rules every [`DEFAULT_TICK_SECS`] of
    /// sim time.
    pub fn with_rules(rules: Vec<AlertRule>) -> Self {
        StreamingMonitor {
            shared: Arc::new(Mutex::new(MonitorState::new(rules))),
        }
    }

    /// Set explicit machine capacities (index = machine index). Without
    /// this, capacity is inferred from scheduler-iteration events.
    pub fn with_capacities(self, capacities: &[u64]) -> Self {
        {
            let mut state = self.shared.lock().expect("monitor lock");
            for (i, &cap) in capacities.iter().enumerate() {
                let m = state.machine(i);
                m.capacity = cap;
                m.capacity_explicit = true;
            }
        }
        self
    }

    /// Set one machine's capacity explicitly (live domains attach one at a
    /// time and know their own capacity).
    pub fn set_capacity(&self, machine: usize, capacity: u64) {
        let mut state = self.shared.lock().expect("monitor lock");
        let m = state.machine(machine);
        m.capacity = capacity;
        m.capacity_explicit = true;
    }

    /// Override the alert evaluation cadence (sim-seconds; min 1).
    pub fn with_tick_secs(self, tick_secs: u64) -> Self {
        self.shared.lock().expect("monitor lock").tick_secs = tick_secs.max(1);
        self
    }

    /// Current snapshot (at the monitor's latest sim time).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let state = self.shared.lock().expect("monitor lock");
        state.snapshot_inner(state.last_time)
    }

    /// Alert transitions fired so far, in order.
    pub fn alert_history(&self) -> Vec<TraceRecord> {
        self.shared
            .lock()
            .expect("monitor lock")
            .alert_history
            .clone()
    }

    /// Mark the run finished. Runs a final alert evaluation at the last
    /// observed sim time so end-of-run conditions resolve/raise, then
    /// freezes `done`/`deadlocked` into snapshots.
    pub fn finish(&self, deadlocked: bool) {
        let mut state = self.shared.lock().expect("monitor lock");
        let now = state.last_time;
        state.eval_alerts(now);
        state.done = true;
        state.deadlocked = deadlocked;
    }
}

impl Observer for StreamingMonitor {
    #[inline]
    fn active(&self) -> bool {
        true
    }

    fn record(&mut self, time: u64, machine: usize, event: TraceEvent) {
        let record = TraceRecord {
            time,
            machine,
            event,
        };
        self.shared.lock().expect("monitor lock").apply(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::NO_SPAN;

    fn feed(monitor: &mut StreamingMonitor, time: u64, machine: usize, event: TraceEvent) {
        monitor.record(time, machine, event);
    }

    #[test]
    fn tracks_lifecycle_counts_and_nodes() {
        let mut m = StreamingMonitor::new().with_capacities(&[1024]);
        feed(
            &mut m,
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 256,
                paired: false,
            },
        );
        let s = m.snapshot();
        assert_eq!((s.queued, s.running, s.submitted), (1, 0, 1));
        feed(
            &mut m,
            10,
            0,
            TraceEvent::CoschedStart {
                job: 1,
                with_mate: false,
            },
        );
        let s = m.snapshot();
        assert_eq!((s.queued, s.running), (0, 1));
        assert_eq!(s.machines[0].used_nodes, 256);
        assert!((s.utilization() - 0.25).abs() < 1e-9);
        feed(&mut m, 110, 0, TraceEvent::JobEnded { job: 1 });
        let s = m.snapshot();
        assert_eq!((s.running, s.finished), (0, 1));
        assert_eq!(s.machines[0].used_nodes, 0);
        // 256 nodes for 100 seconds.
        assert_eq!(s.machines[0].used_node_seconds, 256 * 100);
        assert!(s.drained());
    }

    #[test]
    fn hold_demote_requeue_preserves_submit_age() {
        let mut m = StreamingMonitor::new().with_capacities(&[100]);
        feed(
            &mut m,
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 7,
                size: 50,
                paired: true,
            },
        );
        feed(
            &mut m,
            100,
            0,
            TraceEvent::CoschedHoldPlaced { job: 7, nodes: 50 },
        );
        let s = m.snapshot();
        assert_eq!((s.queued, s.held), (0, 1));
        assert_eq!(s.machines[0].held_nodes, 50);
        assert!((s.held_node_proportion() - 0.5).abs() < 1e-9);
        // 50 nodes held from t=100 to t=300.
        feed(
            &mut m,
            300,
            0,
            TraceEvent::CoschedDeadlockDemotion { job: 7 },
        );
        let s = m.snapshot();
        assert_eq!((s.queued, s.held), (1, 0));
        assert_eq!(s.machines[0].held_nodes, 0);
        assert_eq!(s.machines[0].held_node_seconds, 50 * 200);
        assert_eq!(s.forced_releases, 1);
        // Queue age counts from the original submit at t=0, not demotion.
        assert_eq!(s.machines[0].queue_age_secs, 300);
        feed(
            &mut m,
            400,
            0,
            TraceEvent::CoschedStart {
                job: 7,
                with_mate: true,
            },
        );
        let s = m.snapshot();
        assert_eq!(s.machines[0].queue_age_high_water, 400);
        assert_eq!((s.queued, s.running), (0, 1));
    }

    #[test]
    fn infers_capacity_from_sched_iterations() {
        let mut m = StreamingMonitor::new();
        feed(
            &mut m,
            0,
            1,
            TraceEvent::SchedIterationStart {
                queued: 0,
                running: 0,
                free_nodes: 2048,
            },
        );
        assert_eq!(m.snapshot().machines[1].capacity, 2048);
        // Inference is monotone: used + held + free never shrinks capacity.
        feed(
            &mut m,
            5,
            1,
            TraceEvent::SchedIterationStart {
                queued: 0,
                running: 1,
                free_nodes: 1024,
            },
        );
        assert_eq!(m.snapshot().machines[1].capacity, 2048);
    }

    #[test]
    fn rendezvous_spans_feed_latency_histogram() {
        let mut m = StreamingMonitor::new();
        feed(
            &mut m,
            100,
            GLOBAL,
            TraceEvent::SpanOpen {
                span: 1,
                parent: NO_SPAN,
                kind: SpanKind::PairRendezvous,
                job: 1,
                mate: 2,
            },
        );
        // Non-rendezvous spans are ignored.
        feed(
            &mut m,
            100,
            0,
            TraceEvent::SpanOpen {
                span: 2,
                parent: 1,
                kind: SpanKind::Hold,
                job: 1,
                mate: 2,
            },
        );
        feed(&mut m, 150, 0, TraceEvent::SpanClose { span: 2 });
        feed(&mut m, 612, GLOBAL, TraceEvent::SpanClose { span: 1 });
        let s = m.snapshot();
        assert_eq!(s.rendezvous_latency.count, 1);
        assert_eq!(s.rendezvous_latency.sum, 512);
        assert!(s.rendezvous_p50_secs >= 512);
    }

    #[test]
    fn rpc_timeouts_count_as_calls() {
        let mut m = StreamingMonitor::new();
        feed(
            &mut m,
            1,
            0,
            TraceEvent::RpcCall {
                kind: crate::trace::RpcKind::Ping,
                ok: true,
            },
        );
        feed(
            &mut m,
            2,
            0,
            TraceEvent::RpcTimeout {
                kind: crate::trace::RpcKind::TryStartMate,
            },
        );
        let s = m.snapshot();
        assert_eq!((s.rpc_calls, s.rpc_timeouts), (2, 1));
    }

    #[test]
    fn alert_fires_on_tick_and_resolves() {
        let rule = AlertRule::parse("pressure: held_node_proportion > 0.4 for 120").unwrap();
        let mut m = StreamingMonitor::with_rules(vec![rule])
            .with_capacities(&[100])
            .with_tick_secs(60);
        feed(
            &mut m,
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 60,
                paired: true,
            },
        );
        feed(
            &mut m,
            10,
            0,
            TraceEvent::CoschedHoldPlaced { job: 1, nodes: 60 },
        );
        // Advance sim time past the hold duration via an unrelated event.
        feed(&mut m, 400, 0, TraceEvent::EngineDispatch { seq: 1 });
        let s = m.snapshot();
        assert_eq!(s.active_alerts.len(), 1, "{:?}", s.active_alerts);
        assert_eq!(s.active_alerts[0].rule, "pressure");
        assert_eq!(s.active_alerts[0].machine, GLOBAL);
        assert_eq!(s.alerts_raised_total, 1);
        // Start the job: held proportion drops to zero → resolves on the
        // next tick.
        feed(
            &mut m,
            410,
            0,
            TraceEvent::CoschedStart {
                job: 1,
                with_mate: true,
            },
        );
        feed(&mut m, 600, 0, TraceEvent::EngineDispatch { seq: 2 });
        let s = m.snapshot();
        assert!(s.active_alerts.is_empty());
        assert_eq!(s.alerts_resolved_total, 1);
        let history = m.alert_history();
        assert_eq!(history.len(), 2);
        assert!(matches!(history[0].event, TraceEvent::AlertRaised { .. }));
        assert!(matches!(history[1].event, TraceEvent::AlertResolved { .. }));
    }

    #[test]
    fn finish_sets_health_flags_and_runs_final_eval() {
        let rule = AlertRule::parse("queued > 0").unwrap();
        let m = StreamingMonitor::with_rules(vec![rule]);
        let mut feeder = m.clone();
        feeder.record(
            5,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 1,
                paired: false,
            },
        );
        m.finish(true);
        let s = m.snapshot();
        assert!(s.done && s.deadlocked);
        assert_eq!(s.active_alerts.len(), 1, "final eval sees the stuck queue");
        assert!(!s.drained());
    }

    #[test]
    fn snapshot_serializes_to_json_and_back() {
        let mut m = StreamingMonitor::new().with_capacities(&[64, 64]);
        feed(
            &mut m,
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 32,
                paired: false,
            },
        );
        let snap = m.snapshot();
        let text = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn metric_vocabulary_covers_global_and_machine_scopes() {
        let mut m = StreamingMonitor::new().with_capacities(&[100]);
        feed(
            &mut m,
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 10,
                paired: false,
            },
        );
        let s = m.snapshot();
        assert_eq!(s.metric(GLOBAL, "queued"), Some(1.0));
        assert_eq!(s.metric(GLOBAL, "utilization"), Some(0.0));
        assert_eq!(s.metric(0, "capacity"), Some(100.0));
        assert_eq!(s.metric(0, "queued"), Some(1.0));
        assert_eq!(s.metric(GLOBAL, "nope"), None);
        assert_eq!(s.metric(7, "queued"), None);
    }
}
