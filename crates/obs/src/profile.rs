//! Wall-clock phase profiling.
//!
//! Measures where real time goes (scheduler iterations, release sweeps,
//! RPC round-trips) so Criterion regressions can be attributed to a phase.
//! Wall-clock data is inherently nondeterministic, so it is kept strictly
//! out of traces and report metrics: a [`PhaseProfiler`] lives beside the
//! simulation and is reported separately.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// The profiled phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// One scheduler iteration (pick/start loop) on one machine.
    SchedulerIteration,
    /// One periodic release sweep.
    ReleaseSweep,
    /// One cross-domain RPC round-trip.
    RpcCall,
    /// One event dispatched from the queue.
    EventDispatch,
}

impl Phase {
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::SchedulerIteration => "scheduler-iteration",
            Phase::ReleaseSweep => "release-sweep",
            Phase::RpcCall => "rpc-call",
            Phase::EventDispatch => "event-dispatch",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct PhaseStats {
    calls: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// Accumulates wall-clock samples per phase.
#[derive(Debug, Clone, Default)]
pub struct PhaseProfiler {
    phases: BTreeMap<Phase, PhaseStats>,
}

impl PhaseProfiler {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time a closure and attribute it to `phase`.
    #[inline]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let result = f();
        self.record(phase, start.elapsed().as_nanos() as u64);
        result
    }

    /// Record an externally measured sample (nanoseconds).
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        let stats = self.phases.entry(phase).or_insert(PhaseStats {
            calls: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        stats.calls += 1;
        stats.total_ns = stats.total_ns.saturating_add(nanos);
        stats.min_ns = stats.min_ns.min(nanos);
        stats.max_ns = stats.max_ns.max(nanos);
    }

    /// Merge another profiler's samples into this one.
    pub fn merge(&mut self, other: &PhaseProfiler) {
        for (&phase, stats) in &other.phases {
            let mine = self.phases.entry(phase).or_insert(PhaseStats {
                calls: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            });
            mine.calls += stats.calls;
            mine.total_ns = mine.total_ns.saturating_add(stats.total_ns);
            mine.min_ns = mine.min_ns.min(stats.min_ns);
            mine.max_ns = mine.max_ns.max(stats.max_ns);
        }
    }

    /// Serializable summary, one entry per phase seen.
    pub fn snapshot(&self) -> Vec<PhaseSnapshot> {
        self.phases
            .iter()
            .map(|(&phase, stats)| PhaseSnapshot {
                phase: phase.as_str().to_string(),
                calls: stats.calls,
                total_ns: stats.total_ns,
                mean_ns: stats.total_ns.checked_div(stats.calls).unwrap_or(0),
                min_ns: if stats.calls == 0 { 0 } else { stats.min_ns },
                max_ns: stats.max_ns,
            })
            .collect()
    }
}

/// Wall-clock summary for one phase. Nondeterministic by nature — never
/// embed this in a `SimulationReport`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    pub phase: String,
    pub calls: u64,
    pub total_ns: u64,
    pub mean_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_snapshots() {
        let mut p = PhaseProfiler::new();
        let out = p.time(Phase::SchedulerIteration, || 41 + 1);
        assert_eq!(out, 42);
        p.record(Phase::SchedulerIteration, 100);
        p.record(Phase::ReleaseSweep, 7);
        let snap = p.snapshot();
        assert_eq!(snap.len(), 2);
        let sweep = snap.iter().find(|s| s.phase == "release-sweep").unwrap();
        assert_eq!(sweep.calls, 1);
        assert_eq!(sweep.total_ns, 7);
        let iter = snap
            .iter()
            .find(|s| s.phase == "scheduler-iteration")
            .unwrap();
        assert_eq!(iter.calls, 2);
        assert!(iter.max_ns >= 100);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseProfiler::new();
        a.record(Phase::RpcCall, 10);
        let mut b = PhaseProfiler::new();
        b.record(Phase::RpcCall, 30);
        b.record(Phase::EventDispatch, 5);
        a.merge(&b);
        let snap = a.snapshot();
        let rpc = snap.iter().find(|s| s.phase == "rpc-call").unwrap();
        assert_eq!(rpc.calls, 2);
        assert_eq!(rpc.total_ns, 40);
        assert_eq!(rpc.mean_ns, 20);
    }
}
