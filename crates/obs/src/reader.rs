//! Reading JSONL traces back: the inverse of [`crate::observe::JsonlSink`].
//!
//! Every consumer of trace files (the `analyze` subcommands, the trace
//! analysis crate, tests) goes through [`TraceReader`] so that parse
//! failures are reported uniformly — with the 1-based line number and the
//! offending line — instead of as a context-free serde message.

use crate::trace::TraceRecord;
use std::io::BufRead;
use std::path::Path;

/// A parse failure, pinned to its position in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceReadError {
    /// 1-based line number of the bad record.
    pub line: usize,
    /// The underlying parse or I/O message.
    pub message: String,
    /// The offending line, truncated for display (empty for I/O errors).
    pub snippet: String,
}

impl std::fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, " in {:?}", self.snippet)?;
        }
        Ok(())
    }
}

impl std::error::Error for TraceReadError {}

const SNIPPET_MAX: usize = 80;

fn snippet_of(line: &str) -> String {
    if line.len() <= SNIPPET_MAX {
        return line.to_string();
    }
    let mut cut = SNIPPET_MAX;
    while !line.is_char_boundary(cut) {
        cut -= 1;
    }
    format!("{}…", &line[..cut])
}

/// Streaming reader over JSONL trace records.
///
/// Blank lines are skipped (a trailing newline is not an error); any other
/// malformed line aborts the iteration with a [`TraceReadError`] carrying
/// its line number.
#[derive(Debug)]
pub struct TraceReader<R> {
    input: R,
    line: usize,
}

impl<R: BufRead> TraceReader<R> {
    pub fn new(input: R) -> Self {
        TraceReader { input, line: 0 }
    }

    /// 1-based number of the last line handed out (0 before the first).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Read every remaining record.
    pub fn read_all(mut self) -> Result<Vec<TraceRecord>, TraceReadError> {
        let mut records = Vec::new();
        while let Some(record) = self.next_record()? {
            records.push(record);
        }
        Ok(records)
    }

    /// Pull the next record, `Ok(None)` at end of input.
    pub fn next_record(&mut self) -> Result<Option<TraceRecord>, TraceReadError> {
        let mut buf = String::new();
        loop {
            buf.clear();
            self.line += 1;
            let n = self.input.read_line(&mut buf).map_err(|e| TraceReadError {
                line: self.line,
                message: format!("read failed: {e}"),
                snippet: String::new(),
            })?;
            if n == 0 {
                return Ok(None);
            }
            let text = buf.trim_end_matches(['\n', '\r']);
            if text.trim().is_empty() {
                continue;
            }
            return serde_json::from_str::<TraceRecord>(text)
                .map(Some)
                .map_err(|e| TraceReadError {
                    line: self.line,
                    message: format!("invalid trace record: {e}"),
                    snippet: snippet_of(text),
                });
        }
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceReadError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_record().transpose()
    }
}

/// Parse a whole trace held in memory (tests, fixtures).
pub fn read_trace_str(text: &str) -> Result<Vec<TraceRecord>, TraceReadError> {
    TraceReader::new(text.as_bytes()).read_all()
}

/// Open and parse a trace file, prefixing errors with the path.
pub fn read_trace_file(path: impl AsRef<Path>) -> Result<Vec<TraceRecord>, String> {
    let path = path.as_ref();
    let file =
        std::fs::File::open(path).map_err(|e| format!("cannot open {}: {e}", path.display()))?;
    TraceReader::new(std::io::BufReader::new(file))
        .read_all()
        .map_err(|e| format!("{}:{e}", path.display()))
}

/// Serialize records back to the exact JSONL bytes [`crate::JsonlSink`]
/// writes — the round-trip counterpart of [`read_trace_str`].
pub fn write_trace_string(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&serde_json::to_string(r).expect("trace records always serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn sample(time: u64) -> TraceRecord {
        TraceRecord {
            time,
            machine: 0,
            event: TraceEvent::JobSubmitted {
                job: time,
                size: 8,
                paired: true,
            },
        }
    }

    #[test]
    fn roundtrips_jsonl() {
        let records = vec![sample(1), sample(2), sample(3)];
        let text = write_trace_string(&records);
        assert_eq!(read_trace_str(&text).unwrap(), records);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = format!(
            "\n{}\n\n{}\n",
            write_trace_string(&[sample(1)]).trim(),
            write_trace_string(&[sample(2)]).trim()
        );
        let records = read_trace_str(&text).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn malformed_line_is_pinned_to_its_number() {
        let good = write_trace_string(&[sample(1)]);
        let text = format!("{good}{{\"not\": \"a record\"}}\n");
        let err = read_trace_str(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("invalid trace record"), "{err}");
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(err.snippet.contains("not"), "{err:?}");
    }

    #[test]
    fn long_bad_lines_are_truncated_in_the_snippet() {
        let text = format!("{}\n", "x".repeat(500));
        let err = read_trace_str(&text).unwrap_err();
        assert!(err.snippet.len() < 200, "{}", err.snippet.len());
        assert!(err.snippet.ends_with('…'));
    }

    #[test]
    fn iterator_yields_then_errors() {
        let good = write_trace_string(&[sample(1)]);
        let text = format!("{good}garbage\n");
        let mut reader = TraceReader::new(text.as_bytes());
        assert!(reader.next().unwrap().is_ok());
        let err = reader.next().unwrap().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(
            reader.next().is_none(),
            "input is exhausted after the error"
        );
    }
}
