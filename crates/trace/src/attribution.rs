//! Wait-time attribution: decompose each job's queue wait into local
//! queueing vs. coscheduling-induced components.
//!
//! The paper's central trade-off (§V) is how much extra wait the hold and
//! yield schemes inflict in exchange for synchronized pair starts. The
//! trace makes that measurable per job: everything before the job first
//! deferred to its mate (first hold or yield) is ordinary local queueing —
//! it would have happened without coscheduling — and everything after is
//! coscheduling wait, further split into time spent holding reserved
//! resources versus re-queued time after yields or forced releases.

use crate::lifecycle::{JobLifecycle, LifecycleSet};
use cosched_metrics::table::Table;
use std::fmt;

/// The scheme a machine appears to have run, inferred from its events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchemeGuess {
    /// At least one hold was placed.
    Hold,
    /// No holds, but at least one yield.
    Yield,
    /// Neither — coscheduling off, or no pair ever deferred.
    Inactive,
}

impl SchemeGuess {
    pub fn letter(self) -> &'static str {
        match self {
            SchemeGuess::Hold => "H",
            SchemeGuess::Yield => "Y",
            SchemeGuess::Inactive => "-",
        }
    }
}

/// One job's wait decomposition (started jobs only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobAttribution {
    pub machine: usize,
    pub job: u64,
    pub paired: bool,
    /// submit → start.
    pub total_wait_secs: u64,
    /// submit → first deferral (or the whole wait when never deferred).
    pub local_queue_secs: u64,
    /// first deferral → start: wait the coscheduling protocol added.
    pub cosched_wait_secs: u64,
    /// Of the coscheduling wait, time spent holding reserved resources.
    pub hold_secs: u64,
    /// Yield give-backs taken.
    pub yields: u32,
    /// Holds force-released by the deadlock breaker.
    pub forced_releases: u32,
}

impl JobAttribution {
    fn from_lifecycle(lc: &JobLifecycle, horizon: u64) -> Option<Self> {
        let start = lc.start?;
        let total = start - lc.submit;
        let ready = lc.first_ready().unwrap_or(start).min(start);
        let cosched = start - ready;
        Some(JobAttribution {
            machine: lc.machine,
            job: lc.job,
            paired: lc.paired,
            total_wait_secs: total,
            local_queue_secs: total - cosched,
            cosched_wait_secs: cosched,
            hold_secs: lc.hold_secs(horizon).min(cosched),
            yields: lc.yields.len() as u32,
            forced_releases: lc.forced_releases,
        })
    }
}

/// Aggregated attribution for one machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineAttribution {
    pub machine: usize,
    /// Scheme the machine appears to have run.
    pub scheme: SchemeGuess,
    /// Jobs submitted / started / still waiting at end of trace.
    pub submitted: usize,
    pub started: usize,
    pub unstarted: usize,
    pub paired_jobs: usize,
    /// Sums over started jobs, in seconds.
    pub total_wait_secs: u64,
    pub local_queue_secs: u64,
    pub cosched_wait_secs: u64,
    pub hold_secs: u64,
    /// Event counts.
    pub yields: u64,
    pub forced_releases: u64,
    pub degradations: u64,
    pub escalations: u64,
    pub anchored_commits: u64,
    pub direct_commits: u64,
}

impl MachineAttribution {
    fn mean_mins(total_secs: u64, n: usize) -> f64 {
        if n == 0 {
            0.0
        } else {
            total_secs as f64 / n as f64 / 60.0
        }
    }

    /// Mean total wait over started jobs, minutes.
    pub fn mean_wait_mins(&self) -> f64 {
        Self::mean_mins(self.total_wait_secs, self.started)
    }

    /// Mean coscheduling-induced wait over started jobs, minutes.
    pub fn mean_cosched_wait_mins(&self) -> f64 {
        Self::mean_mins(self.cosched_wait_secs, self.started)
    }

    /// Share of total wait attributable to coscheduling.
    pub fn cosched_share(&self) -> f64 {
        if self.total_wait_secs == 0 {
            0.0
        } else {
            self.cosched_wait_secs as f64 / self.total_wait_secs as f64
        }
    }
}

/// The full attribution report: per-job rows plus per-machine aggregates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AttributionReport {
    pub per_job: Vec<JobAttribution>,
    pub machines: Vec<MachineAttribution>,
}

impl AttributionReport {
    /// Attribute every started job in `set`.
    pub fn from_lifecycles(set: &LifecycleSet) -> Self {
        let mut per_job = Vec::new();
        let mut machines: Vec<MachineAttribution> = Vec::new();
        for machine in set.machines() {
            let mut agg = MachineAttribution {
                machine,
                scheme: SchemeGuess::Inactive,
                submitted: 0,
                started: 0,
                unstarted: 0,
                paired_jobs: 0,
                total_wait_secs: 0,
                local_queue_secs: 0,
                cosched_wait_secs: 0,
                hold_secs: 0,
                yields: 0,
                forced_releases: 0,
                degradations: 0,
                escalations: 0,
                anchored_commits: 0,
                direct_commits: 0,
            };
            let mut any_hold = false;
            let mut any_yield = false;
            for lc in set.machine_jobs(machine) {
                agg.submitted += 1;
                agg.paired_jobs += usize::from(lc.paired);
                any_hold |= !lc.holds.is_empty() || lc.open_hold.is_some();
                any_yield |= !lc.yields.is_empty();
                agg.degradations += u64::from(lc.degradations);
                agg.escalations += u64::from(lc.escalations);
                if let Some(rv) = lc.rendezvous {
                    // Counted on the committing side only; `rv.anchored`
                    // tells which path the pair took.
                    if rv.anchored {
                        agg.anchored_commits += 1;
                    } else {
                        agg.direct_commits += 1;
                    }
                }
                match JobAttribution::from_lifecycle(lc, set.horizon) {
                    Some(ja) => {
                        agg.started += 1;
                        agg.total_wait_secs += ja.total_wait_secs;
                        agg.local_queue_secs += ja.local_queue_secs;
                        agg.cosched_wait_secs += ja.cosched_wait_secs;
                        agg.hold_secs += ja.hold_secs;
                        agg.yields += u64::from(ja.yields);
                        agg.forced_releases += u64::from(ja.forced_releases);
                        per_job.push(ja);
                    }
                    None => {
                        agg.unstarted += 1;
                        // Holds/yields of never-started jobs still count as
                        // coscheduling activity (deadlocked traces).
                        agg.hold_secs += lc.hold_secs(set.horizon);
                        agg.yields += lc.yields.len() as u64;
                        agg.forced_releases += u64::from(lc.forced_releases);
                    }
                }
            }
            agg.scheme = if any_hold {
                SchemeGuess::Hold
            } else if any_yield {
                SchemeGuess::Yield
            } else {
                SchemeGuess::Inactive
            };
            machines.push(agg);
        }
        AttributionReport { per_job, machines }
    }

    /// Combined scheme label across machines, e.g. "HY" (machine order).
    pub fn scheme_label(&self) -> String {
        self.machines.iter().map(|m| m.scheme.letter()).collect()
    }

    /// Aggregate row for one machine, if present.
    pub fn machine(&self, machine: usize) -> Option<&MachineAttribution> {
        self.machines.iter().find(|m| m.machine == machine)
    }
}

impl fmt::Display for AttributionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut table = Table::new(
            format!(
                "wait-time attribution — inferred scheme combo {}",
                self.scheme_label()
            ),
            &[
                "machine",
                "scheme",
                "jobs",
                "started",
                "paired",
                "wait (min avg)",
                "local-queue",
                "cosched",
                "cosched %",
                "hold (min avg)",
                "yields",
                "forced rel.",
            ],
        );
        for m in &self.machines {
            table.row(&[
                format!("{}", m.machine),
                m.scheme.letter().to_string(),
                format!("{}", m.submitted),
                format!("{}", m.started),
                format!("{}", m.paired_jobs),
                format!("{:.1}", m.mean_wait_mins()),
                format!(
                    "{:.1}",
                    MachineAttribution::mean_mins(m.local_queue_secs, m.started)
                ),
                format!("{:.1}", m.mean_cosched_wait_mins()),
                format!("{:.1}%", m.cosched_share() * 100.0),
                format!(
                    "{:.1}",
                    MachineAttribution::mean_mins(m.hold_secs, m.submitted)
                ),
                format!("{}", m.yields),
                format!("{}", m.forced_releases),
            ]);
        }
        write!(f, "{table}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::trace::{TraceEvent, TraceRecord};

    fn rec(time: u64, machine: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time,
            machine,
            event,
        }
    }

    /// Machine 0 holds (H side), machine 1 yields (Y side): a canonical HY
    /// pair plus one unpaired job per machine.
    fn hy_records() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    size: 10,
                    paired: true,
                },
            ),
            rec(
                0,
                1,
                TraceEvent::JobSubmitted {
                    job: 1,
                    size: 10,
                    paired: true,
                },
            ),
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 2,
                    size: 5,
                    paired: false,
                },
            ),
            rec(
                0,
                1,
                TraceEvent::JobSubmitted {
                    job: 2,
                    size: 5,
                    paired: false,
                },
            ),
            // Unpaired jobs start after pure local queueing.
            rec(
                30,
                0,
                TraceEvent::CoschedStart {
                    job: 2,
                    with_mate: false,
                },
            ),
            rec(
                30,
                1,
                TraceEvent::CoschedStart {
                    job: 2,
                    with_mate: false,
                },
            ),
            // Paired job on 0 holds at 60, mate on 1 yields twice, both
            // start together at 180.
            rec(60, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 10 }),
            rec(
                90,
                1,
                TraceEvent::CoschedYield {
                    job: 1,
                    yields_so_far: 1,
                },
            ),
            rec(
                120,
                1,
                TraceEvent::CoschedYield {
                    job: 1,
                    yields_so_far: 2,
                },
            ),
            rec(
                180,
                1,
                TraceEvent::CoschedRendezvousCommit {
                    job: 1,
                    mate: 1,
                    anchored: true,
                },
            ),
            rec(
                180,
                1,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: true,
                },
            ),
            rec(
                180,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: true,
                },
            ),
            rec(500, 0, TraceEvent::JobEnded { job: 1 }),
            rec(500, 1, TraceEvent::JobEnded { job: 1 }),
        ]
    }

    #[test]
    fn decomposes_hold_and_yield_sides() {
        let set = crate::lifecycle::LifecycleSet::from_records(&hy_records()).unwrap();
        let report = AttributionReport::from_lifecycles(&set);
        assert_eq!(report.scheme_label(), "HY");

        let m0 = report.machine(0).unwrap();
        assert_eq!(m0.scheme, SchemeGuess::Hold);
        assert_eq!(m0.submitted, 2);
        assert_eq!(m0.started, 2);
        // Paired job: wait 180, local 60, cosched 120, hold 120.
        assert_eq!(m0.cosched_wait_secs, 120);
        assert_eq!(m0.hold_secs, 120);
        assert_eq!(m0.yields, 0);
        // Unpaired job contributes only local queueing.
        assert_eq!(m0.total_wait_secs, 180 + 30);
        assert_eq!(m0.local_queue_secs, 60 + 30);

        let m1 = report.machine(1).unwrap();
        assert_eq!(m1.scheme, SchemeGuess::Yield);
        assert_eq!(m1.hold_secs, 0, "yield side must show zero hold time");
        assert_eq!(m1.yields, 2);
        // Paired job on 1: first yield at 90 → cosched wait 90.
        assert_eq!(m1.cosched_wait_secs, 90);
        assert_eq!(m1.anchored_commits, 1);
    }

    #[test]
    fn per_job_rows_cover_started_jobs_only() {
        let mut records = hy_records();
        records.push(rec(
            600,
            0,
            TraceEvent::JobSubmitted {
                job: 9,
                size: 1,
                paired: false,
            },
        ));
        let set = crate::lifecycle::LifecycleSet::from_records(&records).unwrap();
        let report = AttributionReport::from_lifecycles(&set);
        assert_eq!(report.per_job.len(), 4);
        let m0 = report.machine(0).unwrap();
        assert_eq!(m0.submitted, 3);
        assert_eq!(m0.unstarted, 1);
    }

    #[test]
    fn display_renders_a_table() {
        let set = crate::lifecycle::LifecycleSet::from_records(&hy_records()).unwrap();
        let text = AttributionReport::from_lifecycles(&set).to_string();
        assert!(text.contains("wait-time attribution"), "{text}");
        assert!(text.contains("HY"), "{text}");
        assert!(text.contains("machine"), "{text}");
    }
}
