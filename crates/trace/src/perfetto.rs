//! Chrome trace-event JSON export — load a cosched trace into Perfetto.
//!
//! Maps the two-machine simulation onto the trace-event model: machines
//! become *processes* (pid = machine + 1; pid 0 is the synthetic "coupled"
//! process holding pair-rendezvous tracks), jobs become *threads*
//! (tid = job + 1; tid 0 is the scheduler track). Sim time is seconds; the
//! exported `ts` is microseconds with the intra-instant record sequence
//! added (`ts = time·10⁶ + seq`), so causal order within one sim instant —
//! a whole rendezvous can happen "at" one second — stays visible when
//! zoomed in.
//!
//! Span mapping:
//! * closed non-root spans → `X` complete events on their machine/job track;
//! * pair-rendezvous roots → `b`/`e` async events (id = span id, cat
//!   `pair`) in the coupled process, so a pair's full cross-machine
//!   lifetime is one collapsible track (an unclosed root exports `b` only);
//! * every `Rpc` span with an `RpcHandler` child → an `s`/`f` flow pair
//!   (id = rpc span id) drawing the cross-machine arrow from caller to
//!   handler;
//! * lifecycle moments (submit, start, yield, demotion, rendezvous commit)
//!   → thread-scoped `i` instant events.
//!
//! The output is hand-assembled JSON (all names are fixed ASCII labels, so
//! no escaping is needed) and deterministic: same records ⇒ byte-identical
//! export.

use crate::span_tree::{SpanTree, SpanTreeError};
use cosched_obs::trace::{SpanKind, TraceRecord};
use cosched_obs::{TraceEvent, GLOBAL, NO_JOB};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Microseconds-per-second scale for `ts` (sim seconds → trace-event µs).
const TS_SCALE: u64 = 1_000_000;

fn pid_of(machine: usize) -> u64 {
    if machine == GLOBAL {
        0
    } else {
        machine as u64 + 1
    }
}

fn tid_of(job: u64) -> u64 {
    if job == NO_JOB {
        0
    } else {
        job + 1
    }
}

fn span_name(kind: SpanKind) -> String {
    match kind {
        SpanKind::Rpc(k) => format!("rpc:{}", k.as_str()),
        SpanKind::RpcHandler(k) => format!("rpc-handler:{}", k.as_str()),
        other => other.label().to_string(),
    }
}

/// Render a trace to Chrome trace-event JSON (object format, ready for
/// `ui.perfetto.dev` or `chrome://tracing`). Fails only when the span
/// records themselves are malformed.
pub fn render_perfetto(records: &[TraceRecord]) -> Result<String, SpanTreeError> {
    let tree = SpanTree::from_records(records)?;

    // ts per record: µs plus intra-instant sequence (resets each new time).
    let mut ts = Vec::with_capacity(records.len());
    let mut last_time = u64::MAX;
    let mut seq = 0u64;
    for r in records {
        if r.time != last_time {
            last_time = r.time;
            seq = 0;
        } else {
            seq += 1;
        }
        ts.push(r.time * TS_SCALE + seq);
    }

    let mut events: Vec<String> = Vec::new();

    // Metadata: name every process and the scheduler track of each machine.
    let mut pids: BTreeSet<u64> = records.iter().map(|r| pid_of(r.machine)).collect();
    pids.insert(0);
    for pid in &pids {
        let name = if *pid == 0 {
            "coupled (pairs)".to_string()
        } else {
            format!("machine {}", pid - 1)
        };
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"{name}\"}}}}"
        ));
        if *pid != 0 {
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"scheduler\"}}}}"
            ));
        }
    }

    // Instant events for lifecycle moments, in record order.
    for (i, r) in records.iter().enumerate() {
        let (name, job) = match r.event {
            TraceEvent::JobSubmitted { job, .. } => ("submit", job),
            TraceEvent::CoschedStart { job, .. } => ("start", job),
            TraceEvent::CoschedYield { job, .. } => ("yield", job),
            TraceEvent::CoschedDeadlockDemotion { job } => ("demotion", job),
            TraceEvent::CoschedRendezvousCommit { job, .. } => ("rendezvous-commit", job),
            _ => continue,
        };
        events.push(format!(
            "{{\"ph\":\"i\",\"name\":\"{name}\",\"cat\":\"lifecycle\",\"s\":\"t\",\
             \"ts\":{},\"pid\":{},\"tid\":{}}}",
            ts[i],
            pid_of(r.machine),
            tid_of(job),
        ));
    }

    // Spans, in id (= open) order.
    for node in tree.spans() {
        let open_ts = ts[node.open_seq];
        if matches!(node.kind, SpanKind::PairRendezvous) {
            // Async b/e pair in the coupled process, on the machine-0
            // member's track; id ties begin to end.
            events.push(format!(
                "{{\"ph\":\"b\",\"cat\":\"pair\",\"name\":\"pair-rendezvous\",\
                 \"id\":{},\"ts\":{open_ts},\"pid\":0,\"tid\":{},\
                 \"args\":{{\"span\":{},\"job0\":{},\"job1\":{}}}}}",
                node.id,
                tid_of(node.job),
                node.id,
                node.job,
                node.mate,
            ));
            if let Some(close_seq) = node.close_seq {
                events.push(format!(
                    "{{\"ph\":\"e\",\"cat\":\"pair\",\"name\":\"pair-rendezvous\",\
                     \"id\":{},\"ts\":{},\"pid\":0,\"tid\":{}}}",
                    node.id,
                    ts[close_seq],
                    tid_of(node.job),
                ));
            }
            continue;
        }
        // Non-root spans: only closed ones become X events (an open span
        // has no duration to draw).
        let Some(close_seq) = node.close_seq else {
            continue;
        };
        let dur = ts[close_seq] - open_ts;
        events.push(format!(
            "{{\"ph\":\"X\",\"cat\":\"{}\",\"name\":\"{}\",\"ts\":{open_ts},\
             \"dur\":{dur},\"pid\":{},\"tid\":{},\"args\":{{\"span\":{},\"parent\":{}}}}}",
            node.kind.label(),
            span_name(node.kind),
            pid_of(node.machine),
            tid_of(node.job),
            node.id,
            node.parent,
        ));
    }

    // Flow arrows: one s/f pair per Rpc span that has an RpcHandler child.
    for node in tree.spans() {
        if !matches!(node.kind, SpanKind::Rpc(_)) {
            continue;
        }
        let Some(handler) = node
            .children
            .iter()
            .filter_map(|&c| tree.get(c))
            .find(|c| matches!(c.kind, SpanKind::RpcHandler(_)))
        else {
            continue;
        };
        events.push(format!(
            "{{\"ph\":\"s\",\"cat\":\"rpc-flow\",\"name\":\"{}\",\"id\":{},\
             \"ts\":{},\"pid\":{},\"tid\":{}}}",
            span_name(node.kind),
            node.id,
            ts[node.open_seq],
            pid_of(node.machine),
            tid_of(node.job),
        ));
        events.push(format!(
            "{{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"rpc-flow\",\"name\":\"{}\",\"id\":{},\
             \"ts\":{},\"pid\":{},\"tid\":{}}}",
            span_name(node.kind),
            node.id,
            ts[handler.open_seq],
            pid_of(handler.machine),
            tid_of(handler.job),
        ));
    }

    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    let _ = write!(out, "\n],\"displayTimeUnit\":\"ms\"}}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::trace::RpcKind;
    use cosched_obs::NO_SPAN;
    use serde_json::Value;

    fn rec(time: u64, machine: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time,
            machine,
            event,
        }
    }

    fn sample_trace() -> Vec<TraceRecord> {
        vec![
            rec(
                0,
                GLOBAL,
                TraceEvent::SpanOpen {
                    span: 1,
                    parent: NO_SPAN,
                    kind: SpanKind::PairRendezvous,
                    job: 1,
                    mate: 2,
                },
            ),
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    size: 10,
                    paired: true,
                },
            ),
            rec(
                7,
                0,
                TraceEvent::SpanOpen {
                    span: 2,
                    parent: 1,
                    kind: SpanKind::Rpc(RpcKind::GetMateStatus),
                    job: 1,
                    mate: NO_JOB,
                },
            ),
            rec(
                7,
                1,
                TraceEvent::SpanOpen {
                    span: 3,
                    parent: 2,
                    kind: SpanKind::RpcHandler(RpcKind::GetMateStatus),
                    job: 1,
                    mate: NO_JOB,
                },
            ),
            rec(7, 1, TraceEvent::SpanClose { span: 3 }),
            rec(7, 0, TraceEvent::SpanClose { span: 2 }),
            rec(
                9,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: true,
                },
            ),
            rec(9, GLOBAL, TraceEvent::SpanClose { span: 1 }),
        ]
    }

    fn parse(json: &str) -> Vec<Value> {
        let v: Value = serde_json::from_str(json).expect("exporter must emit valid JSON");
        v.get("traceEvents")
            .expect("traceEvents key")
            .as_array()
            .expect("traceEvents must be an array")
            .to_vec()
    }

    #[test]
    fn emits_valid_json_with_required_keys() {
        let json = render_perfetto(&sample_trace()).unwrap();
        let events = parse(&json);
        assert!(!events.is_empty());
        for e in &events {
            let ph = e.get("ph").and_then(Value::as_str).expect("ph");
            assert!(e.get("pid").and_then(Value::as_u64).is_some(), "{e}");
            match ph {
                "X" => {
                    assert!(e.get("dur").and_then(Value::as_u64).is_some(), "{e}");
                    assert!(e.get("ts").is_some(), "{e}");
                }
                "b" | "e" | "s" | "f" => {
                    assert!(e.get("id").is_some(), "{e}");
                    assert!(e.get("ts").is_some(), "{e}");
                }
                "i" => assert_eq!(e.get("s").and_then(Value::as_str), Some("t"), "{e}"),
                "M" => assert!(e.get("args").is_some(), "{e}"),
                other => panic!("unexpected ph {other}"),
            }
        }
    }

    #[test]
    fn rpc_spans_carry_cross_machine_flow_pairs() {
        let json = render_perfetto(&sample_trace()).unwrap();
        let events = parse(&json);
        let flow_s: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("s"))
            .collect();
        let flow_f: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("f"))
            .collect();
        assert_eq!(flow_s.len(), 1);
        assert_eq!(flow_f.len(), 1);
        // Same flow id, different processes (machine 0 → machine 1).
        assert_eq!(
            flow_s[0].get("id").and_then(Value::as_u64),
            flow_f[0].get("id").and_then(Value::as_u64)
        );
        assert_eq!(flow_s[0].get("pid").and_then(Value::as_u64), Some(1));
        assert_eq!(flow_f[0].get("pid").and_then(Value::as_u64), Some(2));
        assert_eq!(flow_f[0].get("bp").and_then(Value::as_str), Some("e"));
    }

    #[test]
    fn pair_root_becomes_async_begin_end_in_coupled_process() {
        let json = render_perfetto(&sample_trace()).unwrap();
        let events = parse(&json);
        let b: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("b"))
            .collect();
        let e_: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("e"))
            .collect();
        assert_eq!(b.len(), 1);
        assert_eq!(e_.len(), 1);
        assert_eq!(b[0].get("pid").and_then(Value::as_u64), Some(0));
        assert_eq!(b[0].get("ts").and_then(Value::as_u64), Some(0));
        // Close at t=9 with intra-instant seq 1 (second record at t=9).
        assert_eq!(e_[0].get("ts").and_then(Value::as_u64), Some(9_000_001));
    }

    #[test]
    fn intra_instant_sequence_keeps_causal_order() {
        let json = render_perfetto(&sample_trace()).unwrap();
        let events = parse(&json);
        // The rpc X span opens at t=7 seq 0; the handler at t=7 seq 1 —
        // strictly increasing ts despite identical sim time.
        let xs: Vec<u64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .filter_map(|e| e.get("ts").and_then(Value::as_u64))
            .collect();
        assert_eq!(xs, vec![7_000_000, 7_000_001]);
    }

    #[test]
    fn export_is_deterministic() {
        let a = render_perfetto(&sample_trace()).unwrap();
        let b = render_perfetto(&sample_trace()).unwrap();
        assert_eq!(a, b);
    }
}
