//! Rebuild the causal span tree from a flat trace.
//!
//! The driver emits `SpanOpen`/`SpanClose` records interleaved with the
//! rest of the event stream; this module folds them back into a forest of
//! [`SpanNode`]s. Intra-instant ordering matters (sim time only advances
//! between events, so a whole rendezvous can happen "at" one second): each
//! node keeps the record index of its open and close, which downstream
//! consumers use as a deterministic tie-breaker.

use cosched_obs::trace::{SpanKind, TraceRecord};
use cosched_obs::{TraceEvent, NO_SPAN};
use std::collections::BTreeMap;

/// One reconstructed span.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Span id (unique within a trace, dense from 1).
    pub id: u64,
    /// Parent span id ([`NO_SPAN`] for roots).
    pub parent: u64,
    /// What the span covers.
    pub kind: SpanKind,
    /// Machine the span was emitted on (`usize::MAX` = global).
    pub machine: usize,
    /// Subject job id (`u64::MAX` when not job-scoped).
    pub job: u64,
    /// Mate job id (`u64::MAX` when not applicable).
    pub mate: u64,
    /// Open sim time (seconds).
    pub open: u64,
    /// Record index of the open (intra-instant order).
    pub open_seq: usize,
    /// Close sim time, if the span closed before the trace ended.
    pub close: Option<u64>,
    /// Record index of the close.
    pub close_seq: Option<usize>,
    /// Child span ids, in open order.
    pub children: Vec<u64>,
}

impl SpanNode {
    /// Duration in sim seconds (0 for still-open or same-instant spans).
    pub fn duration(&self) -> u64 {
        self.close.map_or(0, |c| c.saturating_sub(self.open))
    }
}

/// Errors from span-tree reconstruction — each indicates an emission bug.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpanTreeError {
    /// A span id was opened twice.
    DuplicateOpen(u64),
    /// A close arrived for an id that was never opened.
    CloseWithoutOpen(u64),
    /// A span closed twice.
    DuplicateClose(u64),
    /// A span's parent id does not exist in the trace.
    UnknownParent { span: u64, parent: u64 },
}

impl std::fmt::Display for SpanTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanTreeError::DuplicateOpen(id) => write!(f, "span {id} opened twice"),
            SpanTreeError::CloseWithoutOpen(id) => write!(f, "span {id} closed but never opened"),
            SpanTreeError::DuplicateClose(id) => write!(f, "span {id} closed twice"),
            SpanTreeError::UnknownParent { span, parent } => {
                write!(f, "span {span} parents under unknown span {parent}")
            }
        }
    }
}

impl std::error::Error for SpanTreeError {}

/// The reconstructed span forest of one trace.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    spans: BTreeMap<u64, SpanNode>,
    roots: Vec<u64>,
}

impl SpanTree {
    /// Fold a record stream into its span forest. Non-span events pass
    /// through untouched; malformed span nesting is an error.
    pub fn from_records(records: &[TraceRecord]) -> Result<SpanTree, SpanTreeError> {
        let mut tree = SpanTree::default();
        for (seq, rec) in records.iter().enumerate() {
            match &rec.event {
                TraceEvent::SpanOpen {
                    span,
                    parent,
                    kind,
                    job,
                    mate,
                } => {
                    if tree.spans.contains_key(span) {
                        return Err(SpanTreeError::DuplicateOpen(*span));
                    }
                    if *parent != NO_SPAN {
                        match tree.spans.get_mut(parent) {
                            Some(p) => p.children.push(*span),
                            None => {
                                return Err(SpanTreeError::UnknownParent {
                                    span: *span,
                                    parent: *parent,
                                })
                            }
                        }
                    } else {
                        tree.roots.push(*span);
                    }
                    tree.spans.insert(
                        *span,
                        SpanNode {
                            id: *span,
                            parent: *parent,
                            kind: *kind,
                            machine: rec.machine,
                            job: *job,
                            mate: *mate,
                            open: rec.time,
                            open_seq: seq,
                            close: None,
                            close_seq: None,
                            children: Vec::new(),
                        },
                    );
                }
                TraceEvent::SpanClose { span } => {
                    let node = tree
                        .spans
                        .get_mut(span)
                        .ok_or(SpanTreeError::CloseWithoutOpen(*span))?;
                    if node.close.is_some() {
                        return Err(SpanTreeError::DuplicateClose(*span));
                    }
                    node.close = Some(rec.time);
                    node.close_seq = Some(seq);
                }
                _ => {}
            }
        }
        Ok(tree)
    }

    /// Number of spans in the trace.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the trace carried no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Look up a span by id.
    pub fn get(&self, id: u64) -> Option<&SpanNode> {
        self.spans.get(&id)
    }

    /// All spans in id (= open) order.
    pub fn spans(&self) -> impl Iterator<Item = &SpanNode> {
        self.spans.values()
    }

    /// Root span ids in open order.
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// Pair-rendezvous root spans in open order.
    pub fn pair_roots(&self) -> impl Iterator<Item = &SpanNode> {
        self.roots
            .iter()
            .filter_map(|id| self.spans.get(id))
            .filter(|n| matches!(n.kind, SpanKind::PairRendezvous))
    }

    /// All descendants of `id` (depth-first, children in open order).
    pub fn descendants(&self, id: u64) -> Vec<&SpanNode> {
        let mut out = Vec::new();
        let mut stack: Vec<u64> = match self.spans.get(&id) {
            Some(n) => n.children.iter().rev().copied().collect(),
            None => return out,
        };
        while let Some(next) = stack.pop() {
            if let Some(node) = self.spans.get(&next) {
                out.push(node);
                stack.extend(node.children.iter().rev().copied());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::trace::RpcKind;
    use cosched_obs::{GLOBAL, NO_JOB};

    fn rec(time: u64, machine: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time,
            machine,
            event,
        }
    }

    fn open(span: u64, parent: u64, kind: SpanKind) -> TraceEvent {
        TraceEvent::SpanOpen {
            span,
            parent,
            kind,
            job: NO_JOB,
            mate: NO_JOB,
        }
    }

    #[test]
    fn rebuilds_nesting_and_durations() {
        let records = vec![
            rec(10, GLOBAL, open(1, 0, SpanKind::PairRendezvous)),
            rec(10, 0, open(2, 1, SpanKind::Rpc(RpcKind::GetMateStatus))),
            rec(
                10,
                1,
                open(3, 2, SpanKind::RpcHandler(RpcKind::GetMateStatus)),
            ),
            rec(10, 1, TraceEvent::SpanClose { span: 3 }),
            rec(10, 0, TraceEvent::SpanClose { span: 2 }),
            rec(25, GLOBAL, TraceEvent::SpanClose { span: 1 }),
        ];
        let tree = SpanTree::from_records(&records).unwrap();
        assert_eq!(tree.len(), 3);
        assert_eq!(tree.roots(), &[1]);
        assert_eq!(tree.get(1).unwrap().children, vec![2]);
        assert_eq!(tree.get(2).unwrap().children, vec![3]);
        assert_eq!(tree.get(1).unwrap().duration(), 15);
        assert_eq!(tree.get(3).unwrap().duration(), 0);
        assert_eq!(tree.pair_roots().count(), 1);
        let desc: Vec<u64> = tree.descendants(1).iter().map(|n| n.id).collect();
        assert_eq!(desc, vec![2, 3]);
    }

    #[test]
    fn open_span_survives_truncated_trace() {
        let records = vec![rec(5, 0, open(1, 0, SpanKind::Hold))];
        let tree = SpanTree::from_records(&records).unwrap();
        assert_eq!(tree.get(1).unwrap().close, None);
    }

    #[test]
    fn malformed_nesting_is_rejected() {
        let dup = vec![
            rec(1, 0, open(1, 0, SpanKind::Hold)),
            rec(1, 0, open(1, 0, SpanKind::Hold)),
        ];
        assert_eq!(
            SpanTree::from_records(&dup).unwrap_err(),
            SpanTreeError::DuplicateOpen(1)
        );
        let orphan = vec![rec(1, 0, TraceEvent::SpanClose { span: 9 })];
        assert_eq!(
            SpanTree::from_records(&orphan).unwrap_err(),
            SpanTreeError::CloseWithoutOpen(9)
        );
        let bad_parent = vec![rec(1, 0, open(2, 7, SpanKind::Hold))];
        assert_eq!(
            SpanTree::from_records(&bad_parent).unwrap_err(),
            SpanTreeError::UnknownParent { span: 2, parent: 7 }
        );
    }
}
