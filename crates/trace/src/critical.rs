//! Rendezvous critical-path analysis: where did a mate pair's wait go?
//!
//! For every pair that reached its synchronized start, rebuild the causal
//! chain from the *first submit of either member* to the *instant both
//! started*, and attribute every second of it to the thing that was
//! actually binding at that moment:
//!
//! * **local-queue** — the chain was blocked on a member that was not yet
//!   schedulable (not yet submitted, or queued behind other work). This is
//!   the mate-caused wait of the paper's §V: the other member may well be
//!   burning a hold meanwhile, but the *cause* is this member's queue.
//! * **hold** — both members were holding resources (transient deadlock
//!   configurations).
//! * **yield** — the binding member was schedulable but gave way to wait
//!   for its mate (yield scheme back-off episode).
//!
//! plus zero-duration **link** segments threaded into the chain at their
//! instants: **rpc** (cross-machine edges under the pair's root span),
//! **demotion** (§IV-E1 deadlock-breaker releases of a member's hold) and
//! **backfill-shadow** (the member blocked the head of its queue and
//! engaged conservative-backfill draining).
//!
//! The partition is exhaustive and gap-free by construction: the timed
//! segment durations of a pair always sum to its total wait, which
//! [`PairPath::check`] verifies and the fixture tests pin.
//!
//! Aggregates are grouped per scheme *combo* — each member is classed `H`
//! (ever held), `Y` (never held, ever yielded) or `-` (started without
//! deferring), giving `HH`/`HY`/`YH`/`YY`/`H-`/… keys matching the
//! paper's scheme matrix.

use crate::lifecycle::{JobLifecycle, LifecycleError, LifecycleSet};
use crate::span_tree::{SpanTree, SpanTreeError};
use cosched_obs::trace::{SpanKind, TraceRecord};
use cosched_obs::TraceEvent;
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// What a critical-path segment was waiting on (or marking, for
/// zero-duration link segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum SegmentClass {
    /// Blocked on a member that was not yet schedulable.
    LocalQueue,
    /// Both members holding resources.
    Hold,
    /// Binding member inside a yield back-off episode.
    Yield,
    /// Cross-machine RPC edge (zero sim duration).
    Rpc,
    /// Deadlock-breaker demotion of a member's hold (zero duration).
    Demotion,
    /// Member engaged conservative-backfill draining (zero duration).
    BackfillShadow,
}

impl SegmentClass {
    /// All classes, in display order.
    pub const ALL: [SegmentClass; 6] = [
        SegmentClass::LocalQueue,
        SegmentClass::Hold,
        SegmentClass::Yield,
        SegmentClass::Rpc,
        SegmentClass::Demotion,
        SegmentClass::BackfillShadow,
    ];

    /// Stable kebab-case label.
    pub fn label(self) -> &'static str {
        match self {
            SegmentClass::LocalQueue => "local-queue",
            SegmentClass::Hold => "hold",
            SegmentClass::Yield => "yield",
            SegmentClass::Rpc => "rpc",
            SegmentClass::Demotion => "demotion",
            SegmentClass::BackfillShadow => "backfill-shadow",
        }
    }

    fn index(self) -> usize {
        SegmentClass::ALL.iter().position(|&c| c == self).unwrap()
    }

    /// True for the instantaneous link classes.
    pub fn is_link(self) -> bool {
        matches!(
            self,
            SegmentClass::Rpc | SegmentClass::Demotion | SegmentClass::BackfillShadow
        )
    }
}

/// One segment of a pair's critical path: `[from, to)` in sim seconds
/// (`from == to` for link segments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Segment {
    pub class: SegmentClass,
    pub from: u64,
    pub to: u64,
}

impl Segment {
    /// Sim-seconds covered (0 for links).
    pub fn secs(&self) -> u64 {
        self.to - self.from
    }
}

/// The reconstructed critical path of one mate pair that reached its
/// synchronized start.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PairPath {
    /// Machine-0 member job id.
    pub job0: u64,
    /// Machine-1 member job id.
    pub job1: u64,
    /// The pair's root rendezvous span id.
    pub root_span: u64,
    /// Scheme combo: machine-0 member class then machine-1 member class,
    /// each `H` / `Y` / `-`.
    pub combo: String,
    /// First submit of either member.
    pub first_submit: u64,
    /// Instant both members were started.
    pub sync_start: u64,
    /// Time-ordered, gap-free chain over `[first_submit, sync_start)` with
    /// zero-duration links interleaved.
    pub segments: Vec<Segment>,
}

impl PairPath {
    /// Total wait from first submit to synchronized start.
    pub fn total_wait(&self) -> u64 {
        self.sync_start - self.first_submit
    }

    /// Sum of timed segment durations (equals [`Self::total_wait`] for a
    /// well-formed path).
    pub fn timed_secs(&self) -> u64 {
        self.segments.iter().map(Segment::secs).sum()
    }

    /// Seconds attributed to one class.
    pub fn class_secs(&self, class: SegmentClass) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.class == class)
            .map(Segment::secs)
            .sum()
    }

    /// Number of link segments of one class.
    pub fn link_count(&self, class: SegmentClass) -> usize {
        self.segments
            .iter()
            .filter(|s| s.class == class && s.from == s.to)
            .count()
    }

    /// Verify the chain is gap-free: timed segments tile
    /// `[first_submit, sync_start)` exactly (links sit on boundaries or
    /// inside, and never overlap-extend), and durations sum to the total
    /// wait. Returns a description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        let mut cursor = self.first_submit;
        for seg in &self.segments {
            if seg.to < seg.from {
                return Err(format!("segment {seg:?} runs backwards"));
            }
            if seg.from == seg.to {
                if seg.from < self.first_submit || seg.to > self.sync_start {
                    return Err(format!("link {seg:?} outside the wait window"));
                }
                continue;
            }
            if seg.from != cursor {
                return Err(format!(
                    "gap: timed segment {seg:?} starts at {} but the chain is at {cursor}",
                    seg.from
                ));
            }
            cursor = seg.to;
        }
        if cursor != self.sync_start {
            return Err(format!(
                "chain ends at {cursor}, synchronized start is {}",
                self.sync_start
            ));
        }
        if self.timed_secs() != self.total_wait() {
            return Err(format!(
                "timed segments sum to {} but total wait is {}",
                self.timed_secs(),
                self.total_wait()
            ));
        }
        Ok(())
    }
}

/// Per-combo aggregate over all completed pairs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ComboAggregate {
    /// Scheme combo key (`HH`, `HY`, `YH`, `YY`, `H-`, …).
    pub combo: String,
    /// Pairs in this combo.
    pub pairs: u64,
    /// Summed total wait.
    pub total_wait: u64,
    /// Seconds per class, indexed like [`SegmentClass::ALL`].
    pub class_secs: [u64; 6],
    /// Link-segment counts per class, indexed like [`SegmentClass::ALL`].
    pub link_counts: [u64; 6],
}

impl ComboAggregate {
    fn new(combo: &str) -> Self {
        ComboAggregate {
            combo: combo.to_string(),
            pairs: 0,
            total_wait: 0,
            class_secs: [0; 6],
            link_counts: [0; 6],
        }
    }
}

/// Errors from critical-path reconstruction.
#[derive(Debug, Clone, PartialEq)]
pub enum CriticalPathError {
    Lifecycle(LifecycleError),
    Spans(SpanTreeError),
    /// A pair root span references a job the trace never submitted.
    MissingLifecycle {
        machine: usize,
        job: u64,
    },
    /// A pair closed its root span but a member has no start event.
    MemberNeverStarted {
        machine: usize,
        job: u64,
    },
}

impl fmt::Display for CriticalPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CriticalPathError::Lifecycle(e) => write!(f, "lifecycle reconstruction: {e}"),
            CriticalPathError::Spans(e) => write!(f, "span-tree reconstruction: {e}"),
            CriticalPathError::MissingLifecycle { machine, job } => {
                write!(
                    f,
                    "pair root references unsubmitted job {job} on machine {machine}"
                )
            }
            CriticalPathError::MemberNeverStarted { machine, job } => {
                write!(
                    f,
                    "pair root closed but job {job} on machine {machine} never started"
                )
            }
        }
    }
}

impl std::error::Error for CriticalPathError {}

impl From<LifecycleError> for CriticalPathError {
    fn from(e: LifecycleError) -> Self {
        CriticalPathError::Lifecycle(e)
    }
}

impl From<SpanTreeError> for CriticalPathError {
    fn from(e: SpanTreeError) -> Self {
        CriticalPathError::Spans(e)
    }
}

/// The critical-path analysis of one trace.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CriticalPathReport {
    /// One path per pair that reached its synchronized start, in root-span
    /// open order.
    pub pairs: Vec<PairPath>,
    /// Pair root spans still open at end of trace (pair never fully
    /// started — deadlocked or truncated run).
    pub unfinished: usize,
    /// Per-combo aggregates, sorted by combo key.
    pub combos: Vec<ComboAggregate>,
}

/// Where a member is in its life at some instant, for binding-state
/// classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemberState {
    Unsubmitted,
    Queued,
    Held,
    YieldWait,
    Started,
}

fn state_at(lc: &JobLifecycle, t: u64) -> MemberState {
    if t < lc.submit {
        return MemberState::Unsubmitted;
    }
    if lc.start.is_some_and(|s| t >= s) {
        return MemberState::Started;
    }
    if lc.holds.iter().any(|&(a, b)| t >= a && t < b) || lc.open_hold.is_some_and(|a| t >= a) {
        return MemberState::Held;
    }
    if lc.yields.first().is_some_and(|&y| t >= y) {
        return MemberState::YieldWait;
    }
    MemberState::Queued
}

/// Class of an interval given one member's non-started state.
fn class_of_waiting(state: MemberState) -> SegmentClass {
    match state {
        MemberState::Unsubmitted | MemberState::Queued => SegmentClass::LocalQueue,
        MemberState::Held => SegmentClass::Hold,
        MemberState::YieldWait => SegmentClass::Yield,
        // Both-started intervals never reach classification.
        MemberState::Started => SegmentClass::LocalQueue,
    }
}

fn classify(s0: MemberState, s1: MemberState) -> SegmentClass {
    use MemberState::*;
    // One member already started (or holding): the chain runs through the
    // other member — classify by what *it* is doing.
    match (s0, s1) {
        (Started, other) | (other, Started) => class_of_waiting(other),
        (Held, Held) => SegmentClass::Hold,
        (Held, other) | (other, Held) => class_of_waiting(other),
        (Unsubmitted, _) | (_, Unsubmitted) => SegmentClass::LocalQueue,
        (YieldWait, _) | (_, YieldWait) => SegmentClass::Yield,
        (Queued, Queued) => SegmentClass::LocalQueue,
    }
}

/// `H` when the member ever held, else `Y` when it ever yielded, else `-`.
fn member_class(lc: &JobLifecycle) -> char {
    if !lc.holds.is_empty() || lc.open_hold.is_some() {
        'H'
    } else if !lc.yields.is_empty() {
        'Y'
    } else {
        '-'
    }
}

impl CriticalPathReport {
    /// Reconstruct every completed pair's critical path from a trace.
    ///
    /// Requires a trace recorded with spans (PR-4 observer output); traces
    /// without span records yield an empty report rather than an error.
    pub fn from_records(records: &[TraceRecord]) -> Result<Self, CriticalPathError> {
        let lifecycles = LifecycleSet::from_records(records)?;
        let tree = SpanTree::from_records(records)?;

        let mut pairs = Vec::new();
        let mut unfinished = 0usize;
        for root in tree.pair_roots() {
            if root.close.is_none() {
                unfinished += 1;
                continue;
            }
            let lc0 =
                lifecycles
                    .jobs
                    .get(&(0, root.job))
                    .ok_or(CriticalPathError::MissingLifecycle {
                        machine: 0,
                        job: root.job,
                    })?;
            let lc1 = lifecycles.jobs.get(&(1, root.mate)).ok_or(
                CriticalPathError::MissingLifecycle {
                    machine: 1,
                    job: root.mate,
                },
            )?;
            let start0 = lc0.start.ok_or(CriticalPathError::MemberNeverStarted {
                machine: 0,
                job: lc0.job,
            })?;
            let start1 = lc1.start.ok_or(CriticalPathError::MemberNeverStarted {
                machine: 1,
                job: lc1.job,
            })?;

            let t0 = lc0.submit.min(lc1.submit);
            let sync = start0.max(start1);

            // Elementary boundaries: every instant a member's state can flip.
            let mut cuts: Vec<u64> = vec![t0, sync];
            for lc in [lc0, lc1] {
                let mut push = |t: u64| {
                    if t > t0 && t < sync {
                        cuts.push(t);
                    }
                };
                push(lc.submit);
                if let Some(s) = lc.start {
                    push(s);
                }
                for &(a, b) in &lc.holds {
                    push(a);
                    push(b);
                }
                if let Some(a) = lc.open_hold {
                    push(a);
                }
                if let Some(&y) = lc.yields.first() {
                    push(y);
                }
            }
            cuts.sort_unstable();
            cuts.dedup();

            // Classify each elementary interval, merging same-class runs.
            let mut segments: Vec<Segment> = Vec::new();
            for w in cuts.windows(2) {
                let (a, b) = (w[0], w[1]);
                let class = classify(state_at(lc0, a), state_at(lc1, a));
                match segments.last_mut() {
                    Some(last) if last.class == class && last.to == a => last.to = b,
                    _ => segments.push(Segment {
                        class,
                        from: a,
                        to: b,
                    }),
                }
            }

            // Zero-duration links, gathered then spliced in time order.
            let mut links: Vec<Segment> = Vec::new();
            for node in tree.descendants(root.id) {
                if matches!(node.kind, SpanKind::Rpc(_)) && node.open >= t0 && node.open <= sync {
                    links.push(Segment {
                        class: SegmentClass::Rpc,
                        from: node.open,
                        to: node.open,
                    });
                }
            }
            for rec in records {
                let link = |class| Segment {
                    class,
                    from: rec.time,
                    to: rec.time,
                };
                match rec.event {
                    TraceEvent::CoschedDeadlockDemotion { job }
                        if (rec.machine == 0 && job == lc0.job)
                            || (rec.machine == 1 && job == lc1.job) =>
                    {
                        links.push(link(SegmentClass::Demotion));
                    }
                    TraceEvent::SchedDrainEngaged { blocked_job, .. }
                        if (rec.machine == 0 && blocked_job == lc0.job)
                            || (rec.machine == 1 && blocked_job == lc1.job) =>
                    {
                        links.push(link(SegmentClass::BackfillShadow));
                    }
                    _ => {}
                }
            }
            links.retain(|l| l.from >= t0 && l.to <= sync);
            segments.extend(links);
            segments.sort_by_key(|s| (s.from, s.to));

            let path = PairPath {
                job0: lc0.job,
                job1: lc1.job,
                root_span: root.id,
                combo: format!("{}{}", member_class(lc0), member_class(lc1)),
                first_submit: t0,
                sync_start: sync,
                segments,
            };
            debug_assert_eq!(path.check(), Ok(()));
            pairs.push(path);
        }

        // Per-combo aggregation, sorted by combo key.
        let mut combos: BTreeMap<String, ComboAggregate> = BTreeMap::new();
        for path in &pairs {
            let agg = combos
                .entry(path.combo.clone())
                .or_insert_with(|| ComboAggregate::new(&path.combo));
            agg.pairs += 1;
            agg.total_wait += path.total_wait();
            for seg in &path.segments {
                let i = seg.class.index();
                agg.class_secs[i] += seg.secs();
                if seg.from == seg.to {
                    agg.link_counts[i] += 1;
                }
            }
        }

        Ok(CriticalPathReport {
            pairs,
            unfinished,
            combos: combos.into_values().collect(),
        })
    }
}

impl fmt::Display for CriticalPathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<5} {:>5} {:>12} {:>12} {:>10} {:>10} {:>6} {:>9} {:>7}",
            "combo",
            "pairs",
            "total-wait",
            "local-queue",
            "hold",
            "yield",
            "rpcs",
            "demotions",
            "shadows"
        )?;
        for agg in &self.combos {
            writeln!(
                f,
                "{:<5} {:>5} {:>12} {:>12} {:>10} {:>10} {:>6} {:>9} {:>7}",
                agg.combo,
                agg.pairs,
                agg.total_wait,
                agg.class_secs[SegmentClass::LocalQueue.index()],
                agg.class_secs[SegmentClass::Hold.index()],
                agg.class_secs[SegmentClass::Yield.index()],
                agg.link_counts[SegmentClass::Rpc.index()],
                agg.link_counts[SegmentClass::Demotion.index()],
                agg.link_counts[SegmentClass::BackfillShadow.index()],
            )?;
        }
        if self.unfinished > 0 {
            writeln!(
                f,
                "unfinished pairs (root span never closed): {}",
                self.unfinished
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::{GLOBAL, NO_JOB, NO_SPAN};

    fn rec(time: u64, machine: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time,
            machine,
            event,
        }
    }

    /// A hand-built HY pair: member 1 on machine 0 holds, member 2 on
    /// machine 1 arrives late and yields before the rendezvous.
    fn hy_pair_trace() -> Vec<TraceRecord> {
        use cosched_obs::trace::RpcKind;
        vec![
            rec(
                0,
                GLOBAL,
                TraceEvent::SpanOpen {
                    span: 1,
                    parent: NO_SPAN,
                    kind: SpanKind::PairRendezvous,
                    job: 1,
                    mate: 2,
                },
            ),
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    size: 10,
                    paired: true,
                },
            ),
            rec(10, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 10 }),
            rec(
                50,
                1,
                TraceEvent::JobSubmitted {
                    job: 2,
                    size: 10,
                    paired: true,
                },
            ),
            rec(
                60,
                1,
                TraceEvent::CoschedYield {
                    job: 2,
                    yields_so_far: 1,
                },
            ),
            rec(
                100,
                0,
                TraceEvent::SpanOpen {
                    span: 2,
                    parent: 1,
                    kind: SpanKind::Rpc(RpcKind::StartJob),
                    job: 1,
                    mate: NO_JOB,
                },
            ),
            rec(100, 0, TraceEvent::SpanClose { span: 2 }),
            rec(
                100,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: true,
                },
            ),
            rec(
                100,
                1,
                TraceEvent::CoschedStart {
                    job: 2,
                    with_mate: true,
                },
            ),
            rec(100, GLOBAL, TraceEvent::SpanClose { span: 1 }),
        ]
    }

    #[test]
    fn reconstructs_gap_free_hy_path() {
        let report = CriticalPathReport::from_records(&hy_pair_trace()).unwrap();
        assert_eq!(report.pairs.len(), 1);
        assert_eq!(report.unfinished, 0);
        let path = &report.pairs[0];
        assert_eq!((path.job0, path.job1), (1, 2));
        assert_eq!(path.combo, "HY");
        assert_eq!(path.first_submit, 0);
        assert_eq!(path.sync_start, 100);
        path.check().unwrap();
        assert_eq!(path.timed_secs(), path.total_wait());
        // [0,50) mate unsubmitted → local-queue; [50,60) mate queued →
        // local-queue; [60,100) mate yielding → yield; StartJob RPC link.
        assert_eq!(path.class_secs(SegmentClass::LocalQueue), 60);
        assert_eq!(path.class_secs(SegmentClass::Yield), 40);
        assert_eq!(path.class_secs(SegmentClass::Hold), 0);
        assert_eq!(path.link_count(SegmentClass::Rpc), 1);
    }

    #[test]
    fn aggregates_per_combo() {
        let report = CriticalPathReport::from_records(&hy_pair_trace()).unwrap();
        assert_eq!(report.combos.len(), 1);
        let agg = &report.combos[0];
        assert_eq!(agg.combo, "HY");
        assert_eq!(agg.pairs, 1);
        assert_eq!(agg.total_wait, 100);
        assert_eq!(agg.class_secs[SegmentClass::LocalQueue.index()], 60);
        assert_eq!(agg.link_counts[SegmentClass::Rpc.index()], 1);
        let table = report.to_string();
        assert!(table.contains("combo"), "{table}");
        assert!(table.contains("HY"), "{table}");
    }

    #[test]
    fn unclosed_root_counts_as_unfinished() {
        let records = vec![
            rec(
                0,
                GLOBAL,
                TraceEvent::SpanOpen {
                    span: 1,
                    parent: NO_SPAN,
                    kind: SpanKind::PairRendezvous,
                    job: 1,
                    mate: 2,
                },
            ),
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    size: 10,
                    paired: true,
                },
            ),
        ];
        let report = CriticalPathReport::from_records(&records).unwrap();
        assert!(report.pairs.is_empty());
        assert_eq!(report.unfinished, 1);
    }

    #[test]
    fn spanless_trace_yields_empty_report() {
        let records = vec![rec(
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 10,
                paired: false,
            },
        )];
        let report = CriticalPathReport::from_records(&records).unwrap();
        assert!(report.pairs.is_empty());
        assert_eq!(report.unfinished, 0);
    }

    #[test]
    fn demotion_links_splice_into_the_chain() {
        let mut records = hy_pair_trace();
        // Demote the holder at t=70, re-hold at 80 (state machine requires
        // queued → held again before its start).
        records.insert(
            5,
            rec(70, 0, TraceEvent::CoschedDeadlockDemotion { job: 1 }),
        );
        records.insert(
            6,
            rec(80, 0, TraceEvent::CoschedHoldPlaced { job: 1, nodes: 10 }),
        );
        let report = CriticalPathReport::from_records(&records).unwrap();
        let path = &report.pairs[0];
        path.check().unwrap();
        assert_eq!(path.link_count(SegmentClass::Demotion), 1);
        assert_eq!(path.timed_secs(), path.total_wait());
    }
}
