//! Trace analysis for the coupled-coscheduling stack: turn the JSONL event
//! streams emitted by `cosched-obs` into answers.
//!
//! The observability layer writes; this crate reads. Four pieces:
//!
//! * **Lifecycle reconstruction** ([`lifecycle`]) — fold the interleaved
//!   [`cosched_obs::TraceRecord`] stream back into per-job timelines
//!   (submit → queued ⇄ held → running → finished), strictly validating
//!   event ordering so emission bugs fail loudly.
//! * **Wait-time attribution** ([`attribution`]) — decompose each job's
//!   wait into local queueing vs. coscheduling components (hold time,
//!   yield give-backs, forced releases), aggregated per machine with the
//!   machine's scheme (hold/yield) inferred from its events. This is the
//!   paper's §V trade-off made measurable from a trace alone.
//! * **Trace diffing** ([`diff`]) — align two same-workload traces by
//!   `(machine, job)` and report per-job and aggregate deltas; two
//!   same-seed traces of the same scheme must diff to zero, which makes
//!   the differ a determinism regression check.
//! * **Causal spans** ([`span_tree`], [`critical`]) — rebuild the
//!   `SpanOpen`/`SpanClose` forest the driver emits around rendezvous,
//!   holds, yields, RPCs and sweeps, then compute each mate pair's
//!   critical path from first submit to synchronized start, attributed to
//!   segment classes (local-queue / hold / yield / rpc / demotion /
//!   backfill-shadow) and aggregated per scheme combo.
//! * **Exposition** ([`prom`], [`render`], [`perfetto`]) — Prometheus
//!   text-format output for [`cosched_obs::MetricsSnapshot`]s and
//!   transport metrics, ASCII Gantt/utilization timelines rendered
//!   deterministically from lifecycles, and Chrome trace-event JSON
//!   (Perfetto-loadable) with cross-machine flow arrows for RPC edges.
//!
//! Everything consumes plain `&[TraceRecord]`, read back through
//! [`cosched_obs::reader::TraceReader`]; no simulation types are needed,
//! so traces can be analyzed long after (and far away from) the run that
//! produced them.

pub mod attribution;
pub mod critical;
pub mod diff;
pub mod lifecycle;
pub mod perfetto;
pub mod prom;
pub mod render;
pub mod span_tree;

pub use attribution::{AttributionReport, JobAttribution, MachineAttribution, SchemeGuess};
pub use critical::{ComboAggregate, CriticalPathReport, PairPath, Segment, SegmentClass};
pub use diff::{DiffReport, JobDelta};
pub use lifecycle::{JobLifecycle, LifecycleError, LifecycleSet, Rendezvous};
pub use perfetto::render_perfetto;
pub use prom::{
    escape_label_value, render_prometheus, render_prometheus_into, render_telemetry_prometheus,
    render_telemetry_prometheus_into, render_transport_prometheus,
    render_transport_prometheus_into, sanitize_name, PromWriter,
};
pub use render::{render_gantt, render_utilization};
pub use span_tree::{SpanNode, SpanTree, SpanTreeError};
