//! Trace analysis for the coupled-coscheduling stack: turn the JSONL event
//! streams emitted by `cosched-obs` into answers.
//!
//! The observability layer writes; this crate reads. Four pieces:
//!
//! * **Lifecycle reconstruction** ([`lifecycle`]) — fold the interleaved
//!   [`cosched_obs::TraceRecord`] stream back into per-job timelines
//!   (submit → queued ⇄ held → running → finished), strictly validating
//!   event ordering so emission bugs fail loudly.
//! * **Wait-time attribution** ([`attribution`]) — decompose each job's
//!   wait into local queueing vs. coscheduling components (hold time,
//!   yield give-backs, forced releases), aggregated per machine with the
//!   machine's scheme (hold/yield) inferred from its events. This is the
//!   paper's §V trade-off made measurable from a trace alone.
//! * **Trace diffing** ([`diff`]) — align two same-workload traces by
//!   `(machine, job)` and report per-job and aggregate deltas; two
//!   same-seed traces of the same scheme must diff to zero, which makes
//!   the differ a determinism regression check.
//! * **Exposition** ([`prom`], [`render`]) — Prometheus text-format output
//!   for [`cosched_obs::MetricsSnapshot`]s, and ASCII Gantt/utilization
//!   timelines rendered deterministically from lifecycles.
//!
//! Everything consumes plain `&[TraceRecord]`, read back through
//! [`cosched_obs::reader::TraceReader`]; no simulation types are needed,
//! so traces can be analyzed long after (and far away from) the run that
//! produced them.

pub mod attribution;
pub mod diff;
pub mod lifecycle;
pub mod prom;
pub mod render;

pub use attribution::{AttributionReport, JobAttribution, MachineAttribution, SchemeGuess};
pub use diff::{DiffReport, JobDelta};
pub use lifecycle::{JobLifecycle, LifecycleError, LifecycleSet, Rendezvous};
pub use prom::{render_prometheus, sanitize_name};
pub use render::{render_gantt, render_utilization};
