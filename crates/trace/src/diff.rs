//! Trace diffing: align two same-workload traces by `(machine, job id)`
//! and report what changed.
//!
//! Two uses drive the design. Comparing *schemes* (an HH trace against a
//! YY trace of the same workload) shows per-job how much wait a policy
//! shifted and where. Comparing *refactors* (the same scheme before and
//! after a change, same seed) must come out exactly empty — the
//! determinism invariant carried through the analysis layer — so
//! [`DiffReport::is_identical`] is a meaningful regression check, not just
//! a summary statistic.

use crate::lifecycle::LifecycleSet;
use cosched_metrics::table::Table;
use std::fmt;

/// Per-job delta between trace A and trace B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobDelta {
    pub machine: usize,
    pub job: u64,
    /// Wait in A and B (started jobs; `None` = never started there).
    pub wait_a: Option<u64>,
    pub wait_b: Option<u64>,
    /// `wait_b - wait_a` when both started.
    pub wait_delta: Option<i64>,
    /// `start_b - start_a` when both started.
    pub start_skew: Option<i64>,
    /// Hold-time delta (B minus A), clipped to each trace's horizon.
    pub hold_delta: i64,
}

impl JobDelta {
    /// True when nothing about the job moved (two never-started jobs with
    /// equal hold history also count as unchanged).
    pub fn is_zero(&self) -> bool {
        self.wait_a == self.wait_b && self.start_skew == Some(0) && self.hold_delta == 0
    }
}

/// Aggregate outcome of a diff.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Jobs present in exactly one trace (different workloads).
    pub only_in_a: usize,
    pub only_in_b: usize,
    /// Jobs compared (present in both).
    pub compared: usize,
    /// Of those, jobs whose wait/start/hold all matched exactly.
    pub unchanged: usize,
    /// Jobs started in one trace but not the other.
    pub start_status_changed: usize,
    /// Largest |wait_b - wait_a| in seconds.
    pub max_abs_wait_delta: u64,
    /// Mean signed wait delta (B minus A) over compared started jobs, secs.
    pub mean_wait_delta_secs: f64,
    /// Largest |start_b - start_a| in seconds.
    pub max_abs_start_skew: u64,
    /// Delivered node-seconds (size × runtime of finished jobs) per trace —
    /// the utilization numerator; horizons for context.
    pub delivered_node_secs: [u64; 2],
    pub horizons: [u64; 2],
    /// The jobs that moved the most (by |wait delta|), capped.
    pub top_movers: Vec<JobDelta>,
}

/// How many movers the report retains.
const TOP_MOVERS: usize = 10;

impl DiffReport {
    /// Diff `b` against baseline `a`.
    pub fn compare(a: &LifecycleSet, b: &LifecycleSet) -> Self {
        let mut report = DiffReport {
            horizons: [a.horizon, b.horizon],
            ..Default::default()
        };
        let mut movers: Vec<JobDelta> = Vec::new();
        let mut wait_delta_sum = 0i64;
        let mut wait_delta_n = 0u64;
        for (key, la) in &a.jobs {
            let Some(lb) = b.jobs.get(key) else {
                report.only_in_a += 1;
                continue;
            };
            report.compared += 1;
            let (wait_a, wait_b) = (la.wait_secs(), lb.wait_secs());
            let wait_delta = match (wait_a, wait_b) {
                (Some(x), Some(y)) => Some(y as i64 - x as i64),
                _ => None,
            };
            let start_skew = match (la.start, lb.start) {
                (Some(x), Some(y)) => Some(y as i64 - x as i64),
                (None, None) => Some(0),
                _ => {
                    report.start_status_changed += 1;
                    None
                }
            };
            let hold_delta = lb.hold_secs(b.horizon) as i64 - la.hold_secs(a.horizon) as i64;
            let delta = JobDelta {
                machine: key.0,
                job: key.1,
                wait_a,
                wait_b,
                wait_delta,
                start_skew,
                hold_delta,
            };
            if let Some(d) = wait_delta {
                report.max_abs_wait_delta = report.max_abs_wait_delta.max(d.unsigned_abs());
                wait_delta_sum += d;
                wait_delta_n += 1;
            }
            if let Some(s) = start_skew {
                report.max_abs_start_skew = report.max_abs_start_skew.max(s.unsigned_abs());
            }
            if delta.is_zero() {
                report.unchanged += 1;
            } else {
                movers.push(delta);
            }
        }
        report.only_in_b = b.jobs.len() - report.compared;
        report.mean_wait_delta_secs = if wait_delta_n == 0 {
            0.0
        } else {
            wait_delta_sum as f64 / wait_delta_n as f64
        };
        for (i, set) in [a, b].into_iter().enumerate() {
            report.delivered_node_secs[i] = set
                .jobs
                .values()
                .filter_map(|lc| lc.run_secs().map(|r| r * lc.size))
                .sum();
        }
        // Deterministic mover order: largest |wait delta| first, then key.
        movers.sort_by_key(|d| {
            (
                std::cmp::Reverse(d.wait_delta.map_or(u64::MAX, i64::unsigned_abs)),
                d.machine,
                d.job,
            )
        });
        movers.truncate(TOP_MOVERS);
        report.top_movers = movers;
        report
    }

    /// The determinism check: same workload, every job identical.
    pub fn is_identical(&self) -> bool {
        self.only_in_a == 0
            && self.only_in_b == 0
            && self.unchanged == self.compared
            && self.start_status_changed == 0
    }
}

impl fmt::Display for DiffReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace diff: {} jobs compared, {} unchanged, {} only in A, {} only in B",
            self.compared, self.unchanged, self.only_in_a, self.only_in_b
        )?;
        if self.is_identical() {
            return writeln!(f, "traces are identical per job (zero delta everywhere)");
        }
        writeln!(
            f,
            "wait delta (B−A): mean {:+.1}s, max |Δ| {}s; max start skew {}s; start-status changes {}",
            self.mean_wait_delta_secs,
            self.max_abs_wait_delta,
            self.max_abs_start_skew,
            self.start_status_changed
        )?;
        writeln!(
            f,
            "delivered node-seconds: A {} (horizon {}s) vs B {} (horizon {}s)",
            self.delivered_node_secs[0],
            self.horizons[0],
            self.delivered_node_secs[1],
            self.horizons[1]
        )?;
        if !self.top_movers.is_empty() {
            let mut table = Table::new(
                "largest per-job wait deltas",
                &[
                    "machine/job",
                    "wait A (s)",
                    "wait B (s)",
                    "Δwait (s)",
                    "start skew (s)",
                    "Δhold (s)",
                ],
            );
            let opt = |v: Option<u64>| v.map_or("—".to_string(), |x| x.to_string());
            let opt_i = |v: Option<i64>| v.map_or("—".to_string(), |x| format!("{x:+}"));
            for d in &self.top_movers {
                table.row(&[
                    format!("{}/{}", d.machine, d.job),
                    opt(d.wait_a),
                    opt(d.wait_b),
                    opt_i(d.wait_delta),
                    opt_i(d.start_skew),
                    format!("{:+}", d.hold_delta),
                ]);
            }
            write!(f, "{table}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::trace::{TraceEvent, TraceRecord};

    fn rec(time: u64, machine: usize, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time,
            machine,
            event,
        }
    }

    fn simple_trace(start_at: u64) -> LifecycleSet {
        let records = vec![
            rec(
                0,
                0,
                TraceEvent::JobSubmitted {
                    job: 1,
                    size: 4,
                    paired: false,
                },
            ),
            rec(
                start_at,
                0,
                TraceEvent::CoschedStart {
                    job: 1,
                    with_mate: false,
                },
            ),
            rec(start_at + 100, 0, TraceEvent::JobEnded { job: 1 }),
        ];
        LifecycleSet::from_records(&records).unwrap()
    }

    #[test]
    fn identical_traces_report_zero_delta() {
        let a = simple_trace(50);
        let b = simple_trace(50);
        let report = DiffReport::compare(&a, &b);
        assert!(report.is_identical(), "{report:?}");
        assert_eq!(report.compared, 1);
        assert_eq!(report.unchanged, 1);
        assert_eq!(report.max_abs_wait_delta, 0);
        assert!(report.top_movers.is_empty());
        assert!(report.to_string().contains("identical per job"));
    }

    #[test]
    fn shifted_start_shows_up_as_wait_and_skew() {
        let a = simple_trace(50);
        let b = simple_trace(80);
        let report = DiffReport::compare(&a, &b);
        assert!(!report.is_identical());
        assert_eq!(report.max_abs_wait_delta, 30);
        assert_eq!(report.max_abs_start_skew, 30);
        assert_eq!(report.mean_wait_delta_secs, 30.0);
        assert_eq!(report.top_movers.len(), 1);
        assert_eq!(report.top_movers[0].wait_delta, Some(30));
        assert!(report.to_string().contains("largest per-job wait deltas"));
    }

    #[test]
    fn disjoint_jobs_are_counted_not_compared() {
        let a = simple_trace(50);
        let records = vec![rec(
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 2,
                size: 4,
                paired: false,
            },
        )];
        let b = LifecycleSet::from_records(&records).unwrap();
        let report = DiffReport::compare(&a, &b);
        assert_eq!(report.only_in_a, 1);
        assert_eq!(report.only_in_b, 1);
        assert_eq!(report.compared, 0);
        assert!(!report.is_identical());
    }

    #[test]
    fn started_vs_unstarted_is_a_status_change() {
        let a = simple_trace(50);
        let records = vec![rec(
            0,
            0,
            TraceEvent::JobSubmitted {
                job: 1,
                size: 4,
                paired: false,
            },
        )];
        let b = LifecycleSet::from_records(&records).unwrap();
        let report = DiffReport::compare(&a, &b);
        assert_eq!(report.start_status_changed, 1);
        assert!(!report.is_identical());
    }

    #[test]
    fn delivered_node_seconds_follow_runtimes() {
        let a = simple_trace(50);
        let b = simple_trace(80);
        let report = DiffReport::compare(&a, &b);
        // Both runs: one 4-node job running 100 s.
        assert_eq!(report.delivered_node_secs, [400, 400]);
    }
}
