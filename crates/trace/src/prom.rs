//! Prometheus text-format exposition of [`MetricsSnapshot`]s.
//!
//! Renders the deterministic metrics registry in the exposition format
//! scrapers expect (text format version 0.0.4): counters as single
//! samples, log₂ histograms as cumulative `_bucket{le="…"}` series with
//! `_sum`/`_count`. Metric names are sanitized to `[a-zA-Z0-9_:]` and the
//! output is sorted by exposed name, so equal snapshots render to
//! byte-identical text — the registry's determinism contract carried
//! through to the wire format.

use cosched_obs::metrics::{CounterSnapshot, HistogramSnapshot, MetricsSnapshot};
use cosched_proto::TransportMetrics;
use std::fmt::Write as _;

/// Sanitize a registry metric name into a legal Prometheus metric name.
///
/// Dots and dashes (the registry's namespace separators) become
/// underscores; a leading digit is prefixed. `cosched.holds` →
/// `cosched_holds`.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if c.is_ascii_digit() {
            // A digit cannot lead; prefix and keep it.
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Render a whole snapshot to Prometheus text format.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    // Sort by exposed (sanitized) name so sanitization collisions or
    // reorderings cannot make output order depend on registry internals.
    let mut counters: Vec<(String, &CounterSnapshot)> = snapshot
        .counters
        .iter()
        .map(|c| (sanitize_name(&c.name), c))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<(String, &HistogramSnapshot)> = snapshot
        .histograms
        .iter()
        .map(|h| (sanitize_name(&h.name), h))
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::new();
    for (name, c) in counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for (name, h) in histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        render_histogram_series(&mut out, &name, None, h);
    }
    out
}

/// Append one histogram's cumulative bucket/sum/count series, optionally
/// labeled (the `# TYPE` header is the caller's responsibility so several
/// labeled series can share one family).
fn render_histogram_series(
    out: &mut String,
    name: &str,
    label: Option<(&str, &str)>,
    h: &HistogramSnapshot,
) {
    let prefix = match label {
        Some((k, v)) => format!("{k}=\"{v}\","),
        None => String::new(),
    };
    let plain = match label {
        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
        None => String::new(),
    };
    let mut cumulative = 0u64;
    for b in &h.buckets {
        cumulative += b.count;
        let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"{}\"}} {cumulative}", b.le);
    }
    let _ = writeln!(out, "{name}_bucket{{{prefix}le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum{plain} {}", h.sum);
    let _ = writeln!(out, "{name}_count{plain} {}", h.count);
}

/// Render an instrumented transport's activity
/// ([`cosched_proto::TransportMetrics`]) to Prometheus text format:
/// aggregate request/failure counters, per-kind call and timeout counters
/// (as a `kind` label), and wall-clock latency histograms both aggregate
/// and per kind. Per-kind series are emitted in the snapshot's order
/// (fixed kind order), so equal snapshots render byte-identically.
pub fn render_transport_prometheus(metrics: &TransportMetrics) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE cosched_rpc_requests_total counter");
    let _ = writeln!(out, "cosched_rpc_requests_total {}", metrics.calls);
    let _ = writeln!(out, "# TYPE cosched_rpc_failures_total counter");
    let _ = writeln!(out, "cosched_rpc_failures_total {}", metrics.failures);
    let _ = writeln!(out, "# TYPE cosched_rpc_calls_total counter");
    for (kind, n) in &metrics.calls_by_kind {
        let _ = writeln!(out, "cosched_rpc_calls_total{{kind=\"{kind}\"}} {n}");
    }
    let _ = writeln!(out, "# TYPE cosched_rpc_timeouts_total counter");
    let _ = writeln!(out, "cosched_rpc_timeouts_total {}", metrics.timeouts);
    for (kind, n) in &metrics.timeouts_by_kind {
        let _ = writeln!(out, "cosched_rpc_timeouts_total{{kind=\"{kind}\"}} {n}");
    }
    let _ = writeln!(out, "# TYPE cosched_rpc_latency_ns histogram");
    render_histogram_series(
        &mut out,
        "cosched_rpc_latency_ns",
        None,
        &metrics.latency_ns,
    );
    for (kind, h) in &metrics.latency_by_kind {
        render_histogram_series(&mut out, "cosched_rpc_latency_ns", Some(("kind", kind)), h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosched_obs::MetricsRegistry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("cosched.holds"), "cosched_holds");
        assert_eq!(sanitize_name("rpc-timeouts"), "rpc_timeouts");
        assert_eq!(sanitize_name("job.wait_secs"), "job_wait_secs");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("ok:name_1"), "ok:name_1");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn renders_counters_and_cumulative_histograms() {
        let mut reg = MetricsRegistry::new();
        reg.set("cosched.holds", 3);
        reg.set("rpc.calls", 7);
        for v in [0u64, 1, 2, 1000] {
            reg.observe("job.wait_secs", v);
        }
        let text = render_prometheus(&reg.snapshot());
        assert!(
            text.contains("# TYPE cosched_holds counter\ncosched_holds 3\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE job_wait_secs histogram"), "{text}");
        // Buckets are cumulative: 0→1, 1→2, ≤3→3, ≤1023→4, +Inf→4.
        assert!(text.contains("job_wait_secs_bucket{le=\"0\"} 1"), "{text}");
        assert!(text.contains("job_wait_secs_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("job_wait_secs_bucket{le=\"3\"} 3"), "{text}");
        assert!(
            text.contains("job_wait_secs_bucket{le=\"1023\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("job_wait_secs_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("job_wait_secs_sum 1003"), "{text}");
        assert!(text.contains("job_wait_secs_count 4"), "{text}");
    }

    #[test]
    fn renders_transport_metrics_with_kind_labels() {
        use cosched_proto::{InstrumentedTransport, Request, Response, Transport};
        let mut t =
            InstrumentedTransport::new(cosched_proto::transport::Loopback(|_req: Request| {
                Response::Pong
            }));
        t.call(&Request::Ping).unwrap();
        t.call(&Request::Ping).unwrap();
        t.call(&Request::GetMateJob {
            for_job: cosched_workload::JobId(3),
        })
        .unwrap();
        let text = render_transport_prometheus(&t.metrics());
        assert!(text.contains("cosched_rpc_requests_total 3"), "{text}");
        assert!(
            text.contains("cosched_rpc_calls_total{kind=\"ping\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cosched_rpc_calls_total{kind=\"get_mate_job\"} 1"),
            "{text}"
        );
        assert!(text.contains("cosched_rpc_timeouts_total 0"), "{text}");
        assert!(
            text.contains("cosched_rpc_latency_ns_bucket{kind=\"ping\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("cosched_rpc_latency_ns_count 3"), "{text}");
        assert!(
            text.contains("cosched_rpc_latency_ns_count{kind=\"get_mate_job\"} 1"),
            "{text}"
        );
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let build = |order: &[&'static str]| {
            let mut reg = MetricsRegistry::new();
            for &n in order {
                reg.inc(n);
            }
            render_prometheus(&reg.snapshot())
        };
        let t1 = build(&["z.last", "a.first", "m.mid"]);
        let t2 = build(&["m.mid", "z.last", "a.first"]);
        assert_eq!(t1, t2);
        let a = t1.find("a_first").unwrap();
        let m = t1.find("m_mid").unwrap();
        let z = t1.find("z_last").unwrap();
        assert!(a < m && m < z, "{t1}");
    }
}
